"""Control-plane tests: bounded-queue backpressure semantics, the
shared-memory telemetry row codec, streamed-vs-inline rollout
equivalence, and the always-on serve loop
(:mod:`repro.fleet.control`)."""

import asyncio
import math

import pytest

from repro.errors import FleetError
from repro.fleet.control import (
    _FIELD_KINDS,
    ControlConfig,
    ControlPlane,
    ShardedRegistry,
    TelemetryEvent,
    TelemetryQueue,
    WaveTask,
)
from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V2,
    FleetServer,
    RolloutPlan,
)
from repro.fleet.telemetry import DeviceTelemetry


def run(coro):
    return asyncio.run(coro)


def event(i: int) -> TelemetryEvent:
    return TelemetryEvent(i, "treatment", {"device_id": i})


class TestTelemetryQueueBackpressure:
    def test_validation(self):
        with pytest.raises(FleetError):
            TelemetryQueue(0)
        with pytest.raises(FleetError):
            TelemetryQueue(4, policy="drop_newest")
        with pytest.raises(FleetError):
            ControlConfig(policy="nope")
        with pytest.raises(FleetError):
            ControlConfig(queue_capacity=0)

    def test_shed_oldest_drop_counter_exact(self):
        async def scenario():
            q = TelemetryQueue(3, policy="shed_oldest")
            for i in range(10):
                await q.put(event(i))
            # Capacity 3, 10 puts, no consumer: exactly 7 shed, and the
            # survivors are the newest three in order.
            assert q.dropped == 7
            assert len(q) == 3
            assert q.high_watermark == 3
            survivors = [(await q.get()).device_id for _ in range(3)]
            assert survivors == [7, 8, 9]
            assert q.total_in == 10 and q.total_out == 3

        run(scenario())

    def test_shed_never_drops_end_of_stream_sentinels(self):
        async def scenario():
            q = TelemetryQueue(2, policy="shed_oldest")
            await q.put(event(0))
            await q.put(None)  # producer ended
            await q.put(event(1))  # sheds event 0, not the sentinel
            await q.put(event(2))  # sheds event 1
            assert q.dropped == 2
            assert await q.get() is None
            assert (await q.get()).device_id == 2

        run(scenario())

    def test_block_policy_never_drops_and_producer_resumes(self):
        async def scenario():
            q = TelemetryQueue(2, policy="block")
            await q.put(event(0))
            await q.put(event(1))
            assert q.full()

            done = asyncio.Event()

            async def producer():
                await q.put(event(2))  # must wait: queue at capacity
                done.set()

            task = asyncio.ensure_future(producer())
            await asyncio.sleep(0.01)
            assert not done.is_set()  # producer is actually blocked
            assert q.blocked_puts == 1
            # Drain one slot; the blocked producer must resume.
            assert (await q.get()).device_id == 0
            await asyncio.wait_for(done.wait(), timeout=2.0)
            await task
            assert q.dropped == 0
            got = [(await q.get()).device_id for _ in range(2)]
            assert got == [1, 2]

        run(scenario())

    @pytest.mark.parametrize("policy", ["block", "shed_oldest"])
    def test_full_queue_never_deadlocks_under_load(self, policy):
        """Many producers against a tiny queue with a slow consumer:
        everything terminates (guarded by wait_for), counters add up."""

        async def scenario():
            q = TelemetryQueue(2, policy=policy)
            n_producers, per_producer = 8, 25

            async def producer(base):
                for i in range(per_producer):
                    await q.put(event(base + i))

            async def consumer():
                received = 0
                expected = n_producers * per_producer
                while received + q.dropped < expected:
                    if policy == "shed_oldest" and len(q) == 0 \
                            and q.total_in == expected:
                        break
                    await q.get()
                    received += 1
                return received

            producers = [asyncio.ensure_future(producer(k * 1000))
                         for k in range(n_producers)]
            consume = asyncio.ensure_future(consumer())
            await asyncio.wait_for(asyncio.gather(*producers), timeout=10.0)
            # Producers done; drain whatever is left.
            received = await asyncio.wait_for(consume, timeout=10.0)
            total = n_producers * per_producer
            assert q.total_in == total
            assert received + q.dropped + len(q) == total
            if policy == "block":
                assert q.dropped == 0

        run(scenario())


class TestShardedRegistry:
    def test_sharding_and_rollup_merge(self):
        reg = ShardedRegistry(n_shards=4, window_s=100.0)
        for i in range(12):
            reg.record(DeviceTelemetry.from_row({
                "device_id": i, "completed": True, "runs_completed": 3,
                "reboots": 0, "total_time_s": 50.0 * i,
                "total_energy_mj": 1.0, "radio_energy_mj": 0.1,
                "violations_before": i, "violations_after": 0,
                "runs_before": 3, "runs_after": 0,
                "degradation_shed": 0, "degradation_restored": 0,
                "chunks_lost": 0, "rollbacks": 0,
                "update_outcome": "installed", "active_version": 2,
            }))
        assert reg.devices == 12
        assert reg.shard_sizes() == [3, 3, 3, 3]
        assert reg.shard_of(7) == 3
        assert reg.get(7).active_version == 2
        assert reg.version_counts() == {2: 12}
        merged = reg.merged_rollup()
        assert merged.count == 12
        # 12 samples at t = 0..550 over 100 s windows -> 6 windows.
        assert len(merged.windows()) == 6

    def test_rejects_bad_shard_count(self):
        with pytest.raises(FleetError):
            ShardedRegistry(n_shards=0)


class TestWaveTaskCodec:
    def test_every_telemetry_field_has_a_codec(self):
        """Adding a DeviceTelemetry field without deciding how it rides
        the shared-memory row must fail this test, not corrupt rows."""
        assert set(_FIELD_KINDS) == \
            set(DeviceTelemetry.__dataclass_fields__)

    @pytest.mark.parametrize("outcome,version", [
        ("installed", 2), ("pending", None), ("failed", None), ("none", 1),
    ])
    def test_row_round_trips_bit_exactly(self, outcome, version):
        row = {
            "device_id": 12345, "completed": True, "runs_completed": 3,
            "reboots": 17, "total_time_s": 12345.6789,
            "total_energy_mj": 0.123456, "radio_energy_mj": 3.25,
            "violations_before": 7, "violations_after": 0,
            "runs_before": 2, "runs_after": 1,
            "degradation_shed": 1, "degradation_restored": 1,
            "chunks_lost": 4, "rollbacks": 0,
            "update_outcome": outcome, "active_version": version,
            "predictive_sheds": 2, "shed_lead_s": 0.015625,
        }
        encoded = WaveTask.encode_row(row)
        assert len(encoded) == WaveTask.shm_row_size
        assert all(isinstance(v, float) for v in encoded)
        decoded = WaveTask.decode_row(tuple(encoded))
        assert decoded == row
        # Types too, not just ==: bool must stay bool, None stay None.
        assert isinstance(decoded["completed"], bool)
        assert isinstance(decoded["reboots"], int)
        if version is None:
            assert decoded["active_version"] is None

    def test_fingerprint_distinguishes_arm_and_plan(self):
        plan = RolloutPlan(runs=2)
        t1 = WaveTask("spec", 1, b"wire", 2, plan)
        t2 = WaveTask("spec", 1, None, 2, plan)
        t3 = WaveTask("spec", 1, b"wire", 2, RolloutPlan(runs=3))
        fps = {t1.fingerprint(), t2.fingerprint(), t3.fingerprint()}
        assert len(fps) == 3
        assert t1.fingerprint() == WaveTask("spec", 1, b"wire", 2,
                                            plan).fingerprint()


@pytest.fixture(scope="module")
def small_plan():
    return RolloutPlan(runs=2)


class TestStreamedRollout:
    def test_streamed_equals_inline_byte_for_byte(self, small_plan):
        server = FleetServer()
        streamed = server.rollout(FLEET_SPEC_V2, 16, plan=small_plan,
                                  jobs=4)
        inline = server.rollout(FLEET_SPEC_V2, 16, plan=small_plan, jobs=1)
        assert streamed.to_dict() == inline.to_dict()
        assert streamed.ok

    def test_regressing_update_halts_and_ledger_records_it(self, small_plan):
        server = FleetServer()
        plane = ControlPlane(server, plan=small_plan, jobs=1)
        report = plane.run_rollout(FLEET_SPEC_REGRESSING, 12)
        assert report.halted and report.halted_wave == 0
        assert plane.ledger[0].decision == "halt"
        assert plane.ledger[0].devices == len(report.waves[0].device_ids)
        assert plane.ledger[0].rollback_devices == sum(
            1 for t in report.waves[0].telemetry if t.installed)

    def test_ledger_and_registry_follow_a_clean_rollout(self, small_plan):
        server = FleetServer()
        events = []
        plane = ControlPlane(server, plan=small_plan, jobs=1,
                             on_event=events.append)
        report = plane.run_rollout(FLEET_SPEC_V2, 10)
        assert report.ok
        assert [e.decision for e in plane.ledger] == \
            ["promote", "promote", "complete"]
        assert sum(e.devices for e in plane.ledger) == 10
        # Every treatment report was folded into the sharded registry.
        assert plane.registry.devices == 10
        assert plane.registry.events == 10
        kinds = [e["event"] for e in events]
        assert kinds.count("wave_start") == 3
        assert kinds.count("wave_decision") == 3
        # One telemetry event per treatment device (paired-control runs
        # are internal evidence, not fleet-visible reports).
        assert kinds.count("telemetry") == 10
        # Windowed rollups accumulated evidence for the gate decisions.
        assert plane.ledger[-1].windows
        assert plane.ledger[-1].queue["dropped"] == 0

    def test_shed_policy_surfaces_drop_counts_in_summary(self, small_plan):
        server = FleetServer()
        plane = ControlPlane(
            server, plan=small_plan, jobs=1,
            config=ControlConfig(queue_capacity=1, policy="shed_oldest"))
        report = plane.run_rollout(FLEET_SPEC_V2, 8)
        dropped = sum(w.summary.telemetry_dropped for w in report.waves)
        ledger_dropped = sum(e.queue.get("dropped", 0)
                             for e in plane.ledger)
        assert dropped == ledger_dropped
        # Whatever was shed is missing from aggregation, honestly.
        received = sum(w.summary.devices for w in report.waves)
        attempted = sum(len(w.device_ids) for w in report.waves)
        treatment_dropped = sum(
            len(w.device_ids) - len(w.telemetry) for w in report.waves)
        assert received == attempted - treatment_dropped

    def test_result_cache_round_trip(self, small_plan, tmp_path):
        server = FleetServer()
        first = server.rollout(FLEET_SPEC_V2, 8, plan=small_plan, jobs=1,
                               cache=str(tmp_path / "cache"))
        second = server.rollout(FLEET_SPEC_V2, 8, plan=small_plan, jobs=1,
                                cache=str(tmp_path / "cache"))
        assert first.to_dict() == second.to_dict()

    def test_lockstep_plan_still_runs_through_the_plane(self):
        plan = RolloutPlan(runs=2, lockstep=True, seed_mode="per_cohort")
        server = FleetServer()
        report = server.rollout(FLEET_SPEC_V2, 8, plan=plan)
        assert report.ok
        assert report.summary is not None


class TestServeLoop:
    def test_serve_rolls_out_then_monitors(self, small_plan):
        server = FleetServer()
        plane = ControlPlane(server, plan=small_plan, jobs=1)
        report = plane.serve(6, new_spec=FLEET_SPEC_V2, cycles=2)
        assert report.rollout is not None and report.rollout.ok
        assert len(report.cycles) == 2
        for cycle in report.cycles:
            assert cycle["summary"]["devices"] == 6
            assert cycle["queue"]["dropped"] == 0
            assert cycle["windows"]
            assert sum(cycle["shards"]) == 6
        # Monitoring keeps folding into the same registry.
        assert plane.registry.events == 6 + 6 + 6  # rollout + 2 cycles

    def test_monitor_only_serve(self, small_plan):
        server = FleetServer()
        plane = ControlPlane(server, plan=small_plan, jobs=1)
        report = plane.serve(4, cycles=1)
        assert report.rollout is None
        assert len(report.cycles) == 1
        # No update was offered: every device reports "none".
        assert report.cycles[0]["summary"]["outcomes"] == {"none": 4}
        assert report.describe()

    def test_serve_validates_cycles(self, small_plan):
        plane = ControlPlane(FleetServer(), plan=small_plan)
        with pytest.raises(FleetError):
            plane.serve(2, cycles=0)

    def test_run_sync_inside_running_loop(self, small_plan):
        """Plane entry points work from async contexts (helper-thread
        fallback instead of a nested-loop crash)."""
        server = FleetServer()
        plane = ControlPlane(server, plan=small_plan, jobs=1)

        async def driver():
            return plane.serve(2, cycles=1)

        report = asyncio.run(driver())
        assert len(report.cycles) == 1
