"""Tests for the ARTEMIS runtime: continuous execution, action
application, and the monitor interaction protocol."""

import pytest

from repro.core.actions import ActionType
from repro.core.properties import PropertySet
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.errors import RuntimeConfigError
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


def simple_power(**overrides):
    model = PowerModel(dict(overrides), default_cost=TaskCost(0.1, 1e-3))
    return model


def make_runtime(app, spec, device=None, **kwargs):
    device = device if device is not None else Device(EnergyEnvironment.continuous())
    props = load_properties(spec, app) if isinstance(spec, str) else spec
    runtime = ArtemisRuntime(app, props, device, simple_power(), **kwargs)
    return device, runtime


def three_path_app():
    return (
        AppBuilder("threepath")
        .task("a").task("b").task("c").task("d").task("e").task("f")
        .path(1, ["a", "b"])
        .path(2, ["c", "d"])
        .path(3, ["e", "f"])
        .build()
    )


class TestBasicExecution:
    def test_executes_all_paths_in_order(self):
        device, runtime = make_runtime(three_path_app(), PropertySet())
        result = device.run(runtime)
        assert result.completed
        order = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert order == ["a", "b", "c", "d", "e", "f"]

    def test_task_bodies_and_channels(self, two_task_app):
        device, runtime = make_runtime(two_task_app, PropertySet())
        device.run(runtime)
        assert device.nvm.cell(channel_cell_name("sent")).get() == [21.5]

    def test_time_and_energy_accounted(self):
        device, runtime = make_runtime(three_path_app(), PropertySet())
        result = device.run(runtime)
        assert result.app_time_s == pytest.approx(0.6)  # 6 tasks x 0.1s
        assert result.runtime_overhead_s > 0
        assert result.monitor_overhead_s >= 0

    def test_property_on_unknown_task_rejected(self):
        from repro.core.properties import MaxTries

        app = three_path_app()
        props = PropertySet()
        props.add(MaxTries(task="ghost", on_fail=ActionType.SKIP_PATH, limit=1))
        with pytest.raises(RuntimeConfigError):
            make_runtime(app, props)

    def test_loop_runs_restart_from_path_one(self):
        device, runtime = make_runtime(three_path_app(), PropertySet())
        result = device.run(runtime, runs=2)
        assert result.runs_completed == 2
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a", "b", "c", "d", "e", "f"] * 2


class TestCollectAction:
    def test_restart_path_until_collected(self):
        app = (
            AppBuilder("collectapp")
            .task("sense").task("send")
            .path(1, ["sense", "send"])
            .build()
        )
        spec = "send { collect: 3 dpTask: sense onFail: restartPath; }"
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed
        assert device.trace.count("path_restart") == 2
        senses = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "sense"]
        assert len(senses) == 3


class TestSkipAndRestartTask:
    def test_skip_task_moves_on(self):
        app = (
            AppBuilder("skipapp").task("a").task("b").path(1, ["a", "b"]).build()
        )
        # b requires 1 item from a... use maxDuration-like trick instead:
        # energyAtLeast with a huge threshold always fails on harvested
        # devices; on continuous devices energy is infinite, so use
        # collect with skipTask to exercise the skip path.
        spec = "b { collect: 5 dpTask: a onFail: skipTask; }"
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a"]  # b never ran
        assert device.trace.count("task_skip") == 1

    def test_restart_task_retries_same_task(self):
        app = AppBuilder("rt").task("a").task("b").path(1, ["a", "b"]).build()
        # period violated -> restartTask; second start passes (fresh window).
        spec = "b { period: 1h onFail: restartTask; }"
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed


class TestCompletePath:
    def fever_app(self):
        return (
            AppBuilder("fever")
            .task("measure", body=lambda ctx: ctx.emit("temp", 39.5),
                  monitored_vars=["temp"])
            .task("notify")
            .task("other1").task("other2")
            .path(1, ["measure", "notify"])
            .path(2, ["other1", "other2"])
            .build()
        )

    def test_complete_path_runs_rest_unmonitored_then_ends_run(self):
        app = self.fever_app()
        spec = ("measure { dpData: temp Range: [36, 38] onFail: completePath; }\n"
                "notify { collect: 99 dpTask: other1 onFail: restartPath; }")
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        # notify executes despite its (unsatisfiable) collect property —
        # monitoring is suspended; paths 2 is not executed this run.
        assert ends == ["measure", "notify"]

    def test_next_run_resumes_at_following_path(self):
        app = self.fever_app()
        spec = "measure { dpData: temp Range: [36, 38] onFail: completePath; }"
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime, runs=2)
        assert result.runs_completed == 2
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        # Run 1 ends after path 1 (completePath); run 2 resumes at path 2.
        assert ends == ["measure", "notify", "other1", "other2"]


class TestMaxTriesWithSkipPath:
    def test_skip_path_jumps_to_next_path(self):
        app = three_path_app()
        # c requires data from a task that never produces enough: the
        # restartPath loop would spin forever; cap it with maxTries.
        spec = ("c { collect: 99 dpTask: a onFail: restartTask; "
                "maxTries: 4 onFail: skipPath; }")
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert "c" not in ends and "d" not in ends
        assert ends == ["a", "b", "e", "f"]
        assert device.trace.count("path_skip") == 1

    def test_explicit_path_action_restarts_named_path(self):
        app = (
            AppBuilder("named")
            .task("a").task("b").task("send")
            .path(1, ["a", "send"])
            .path(2, ["b", "send"])
            .build()
        )
        spec = "send { collect: 2 dpTask: b onFail: restartPath Path: 2; }"
        device, runtime = make_runtime(app, spec)
        result = device.run(runtime)
        assert result.completed
        restarts = device.trace.of_kind("path_restart")
        assert all(e.detail["path"] == 2 for e in restarts)
        assert len(restarts) == 1


class TestMonitorBackendEquivalence:
    def test_generated_and_interpreted_traces_match(self, health_app):
        from repro.workloads.health import BENCHMARK_SPEC, health_power_model

        traces = []
        for backend in ("generated", "interpreted"):
            device = Device(EnergyEnvironment.continuous())
            props = load_properties(BENCHMARK_SPEC, health_app)
            runtime = ArtemisRuntime(health_app, props, device,
                                     health_power_model(),
                                     monitor_backend=backend)
            device.run(runtime)
            traces.append([(e.kind, e.detail.get("task")) for e in device.trace])
        assert traces[0] == traces[1]


class TestEnergyProbe:
    def test_energy_property_skips_task_when_low(self):
        from repro.energy.capacitor import Capacitor

        app = AppBuilder("en").task("a").task("b").path(1, ["a", "b"]).build()
        # Capacitor with ~14 mJ usable; b demands 50 mJ stored: impossible,
        # so b is always skipped, which lets the app complete.
        cap = Capacitor(5e-3, v_initial=3.0)
        env = EnergyEnvironment.for_charging_delay(30.0, capacitor=cap)
        device = Device(env)
        spec = "b { energyAtLeast: 0.05 onFail: skipTask; }"
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, simple_power())
        result = device.run(runtime, max_time_s=3600)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a"]
