"""Tests for the parallel sweep engine and its result cache.

Covers the engine's three contracts: parallel tables are byte-identical
to serial ones, failures name the offending grid point, and cached rows
can never outlive the code or configuration that produced them.
"""

import json

import pytest

from repro.errors import ReproError
from repro.sim.experiments import Sweep, SweepPointError
from repro.sim.pool import (
    ParallelSweep,
    ResultCache,
    run_sweep,
    sweep_fingerprint,
)
from repro.workloads.health import build_artemis, make_intermittent_device


def _build(point):
    device = make_intermittent_device(point["delay_s"])
    return device, build_artemis(device)


def make_sweep(delays=(30.0, 60.0), seeds=(0,), scale=1.0):
    """A small health-workload sweep; ``scale`` perturbs a metric closure
    so two sweeps can be made to fingerprint differently."""

    def build(point):
        device = make_intermittent_device(point["delay_s"] + point["seed"])
        return device, build_artemis(device)

    return Sweep(
        factors={"delay_s": list(delays), "seed": list(seeds)},
        build=build,
        metrics={
            "completed": lambda dev, res: res.completed,
            "time_s": lambda dev, res: round(res.total_time_s * scale, 6),
            "reboots": lambda dev, res: res.reboots,
        },
        max_time_s=4 * 3600.0,
    )


def table_bytes(rows):
    return json.dumps(rows, sort_keys=True).encode()


class TestDeterminism:
    def test_parallel_matches_serial_byte_identical_across_seeds(self):
        """Sweep.run(parallel=4) returns the very same table as serial
        execution, for three different replication seeds."""
        for seed in (0, 1, 2):
            sweep = make_sweep(delays=(30.0, 60.0, 90.0), seeds=(seed,))
            serial = sweep.run()
            parallel = sweep.run(parallel=4)
            assert table_bytes(parallel) == table_bytes(serial), (
                f"seed {seed}: parallel table differs"
            )

    def test_row_order_is_grid_order(self):
        sweep = make_sweep(delays=(90.0, 30.0, 60.0))
        rows = sweep.run(parallel=4)
        assert [r["delay_s"] for r in rows] == [90.0, 30.0, 60.0]

    def test_parallel_one_equals_plain_run(self):
        sweep = make_sweep()
        assert sweep.run(parallel=1) == sweep.run()

    def test_parallel_sweep_wrapper(self):
        sweep = make_sweep()
        runner = ParallelSweep(sweep, jobs=2)
        assert runner.run() == sweep.run()

    def test_wrapper_rejects_zero_jobs(self):
        with pytest.raises(ReproError):
            ParallelSweep(make_sweep(), jobs=0)


class TestErrorAttribution:
    def test_build_failure_names_the_point(self):
        def build(point):
            if point["x"] == 3:
                raise ValueError("boom at three")
            return _build({"delay_s": 30.0})

        sweep = Sweep(factors={"x": [1, 2, 3]}, build=build,
                      metrics={"ok": lambda d, r: r.completed},
                      max_time_s=60.0)
        with pytest.raises(SweepPointError) as err:
            sweep.run()
        assert err.value.stage == "build"
        assert err.value.point == {"x": 3}
        assert "x=3" in str(err.value)
        assert "boom at three" in str(err.value)

    def test_metric_failure_names_the_metric_and_point(self):
        sweep = Sweep(
            factors={"delay_s": [30.0]},
            build=_build,
            metrics={"bad": lambda d, r: 1 / 0},
            max_time_s=60.0,
        )
        with pytest.raises(SweepPointError) as err:
            sweep.run()
        assert err.value.stage == "metric"
        assert "bad" in str(err.value)
        assert "delay_s=30.0" in str(err.value)

    def test_parallel_failure_reports_first_grid_point(self):
        def build(point):
            raise RuntimeError(f"dead {point['x']}")

        sweep = Sweep(factors={"x": [5, 6, 7]}, build=build,
                      metrics={"ok": lambda d, r: True}, max_time_s=60.0)
        with pytest.raises(SweepPointError) as err:
            sweep.run(parallel=2)
        assert err.value.point == {"x": 5}


class TestResultCache:
    def test_cold_then_warm(self, tmp_path):
        sweep = make_sweep()
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(sweep, cache=cache)
        assert cache.hits == 0 and cache.misses == len(first)
        second = run_sweep(sweep, cache=cache)
        assert second == first
        assert cache.hits == len(first)
        assert cache.hit_rate == 0.5  # half the lookups were the cold run

    def test_cache_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sweep = make_sweep()
        rows = sweep.run(cache=True)
        assert (tmp_path / ".repro_cache").is_dir()
        assert sweep.run(cache=True) == rows

    def test_non_roundtrippable_rows_are_not_cached(self, tmp_path):
        sweep = Sweep(
            factors={"delay_s": [30.0]},
            build=_build,
            metrics={"obj": lambda d, r: object()},  # not JSON-able
            max_time_s=60.0,
        )
        cache = ResultCache(tmp_path / "cache")
        run_sweep(sweep, cache=cache)
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_rejects_bogus_cache_argument(self):
        with pytest.raises(ReproError):
            make_sweep().run(cache=12345)


class TestCacheInvalidation:
    def test_fingerprint_changes_with_metric_closure(self):
        assert (sweep_fingerprint(make_sweep(scale=1.0))
                != sweep_fingerprint(make_sweep(scale=2.0)))

    def test_fingerprint_changes_with_run_budget(self):
        a, b = make_sweep(), make_sweep()
        b.max_time_s = 123.0
        assert sweep_fingerprint(a) != sweep_fingerprint(b)

    def test_fingerprint_stable_for_equivalent_sweeps(self):
        assert (sweep_fingerprint(make_sweep())
                == sweep_fingerprint(make_sweep()))

    def test_poisoned_entry_is_ignored_after_code_change(self, tmp_path):
        """A stale (even maliciously wrong) cached row cannot survive a
        change to the sweep's code: the key includes the code
        fingerprint, so the changed sweep never reads the old entry."""
        cache_dir = tmp_path / "cache"
        sweep_v1 = make_sweep(scale=1.0)
        cache = ResultCache(cache_dir)
        truth_v1 = run_sweep(sweep_v1, cache=cache)

        # Poison every v1 entry in place with an absurd row.
        poisoned = {"completed": False, "time_s": -1.0, "reboots": 999,
                    "delay_s": 0.0, "seed": 0}
        poisoned_count = 0
        for path in cache_dir.rglob("*.json"):
            path.write_text(json.dumps({"format": 1, "row": poisoned}))
            poisoned_count += 1
        assert poisoned_count == len(truth_v1)

        # Same sweep, same fingerprint: the poison IS served — that is
        # what content-addressing means (the store is trusted).
        replay = run_sweep(sweep_v1, cache=ResultCache(cache_dir))
        assert all(row == poisoned for row in replay)

        # Changed code (a different metric closure constant): every key
        # changes, the poisoned rows are unreachable, and the sweep
        # recomputes the truth.
        sweep_v2 = make_sweep(scale=2.0)
        fresh = run_sweep(sweep_v2, cache=ResultCache(cache_dir))
        assert all(row != poisoned for row in fresh)
        assert fresh == sweep_v2.run()

    def test_torn_cache_entry_is_a_miss(self, tmp_path):
        sweep = make_sweep()
        cache_dir = tmp_path / "cache"
        run_sweep(sweep, cache=ResultCache(cache_dir))
        for path in cache_dir.rglob("*.json"):
            path.write_text('{"format": 1, "row"')  # truncated JSON
        cache = ResultCache(cache_dir)
        rows = run_sweep(sweep, cache=cache)
        assert rows == sweep.run()
        assert cache.hits == 0

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(make_sweep(), cache=cache)
        assert cache.clear() > 0
        assert not list((tmp_path / "cache").rglob("*.json"))
