"""Tests for the property → state machine generator (Figure 7 templates)."""

import pytest

from repro.core.actions import ActionType
from repro.core.events import MonitorEvent, end_event, start_event
from repro.core.generator import generate_machine, generate_machines
from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
)
from repro.errors import GenerationError
from repro.statemachine.interpreter import MachineInstance


def run(machine, events):
    """Feed events; return flat list of (action, path) verdicts."""
    inst = MachineInstance(machine)
    out = []
    for event in events:
        out.extend((v.action, v.path) for v in inst.on_event(event))
    return out


class TestMaxTriesTemplate:
    def prop(self, limit=10):
        return MaxTries(task="accel", on_fail=ActionType.SKIP_PATH, limit=limit)

    def test_allows_limit_attempts(self):
        events = [start_event("accel", float(i)) for i in range(10)]
        assert run(generate_machine(self.prop(10)), events) == []

    def test_fails_on_attempt_past_limit(self):
        events = [start_event("accel", float(i)) for i in range(11)]
        assert run(generate_machine(self.prop(10)), events) == [("skipPath", None)]

    def test_completion_resets_counter(self):
        machine = generate_machine(self.prop(3))
        events = (
            [start_event("accel", 0.0), start_event("accel", 1.0),
             end_event("accel", 2.0)]
            + [start_event("accel", float(3 + i)) for i in range(3)]
        )
        assert run(machine, events) == []

    def test_figure7_shape(self):
        machine = generate_machine(self.prop())
        assert machine.states == ["NotStarted", "Started"]
        assert machine.initial == "NotStarted"
        assert [v.name for v in machine.variables] == ["i"]


class TestMaxDurationTemplate:
    def prop(self, limit=3.0):
        return MaxDuration(task="A", on_fail=ActionType.SKIP_TASK, limit_s=limit)

    def test_in_time_completion_ok(self):
        events = [start_event("A", 0.0), end_event("A", 2.9)]
        assert run(generate_machine(self.prop()), events) == []

    def test_late_end_fails(self):
        events = [start_event("A", 0.0), end_event("A", 3.5)]
        assert run(generate_machine(self.prop()), events) == [("skipTask", None)]

    def test_any_late_event_fails(self):
        # An unrelated event past the window reveals the overrun.
        events = [start_event("A", 0.0), start_event("B", 4.0)]
        assert run(generate_machine(self.prop()), events) == [("skipTask", None)]

    def test_restart_keeps_original_start(self):
        """§4.1.3: re-stamped StartTask events are disregarded; the
        original start time decides the deadline."""
        machine = generate_machine(self.prop(3.0))
        inst = MachineInstance(machine)
        inst.on_event(start_event("A", 0.0))
        inst.on_event(start_event("A", 1.0))  # restart within window
        assert inst.get("start") == 0.0
        verdicts = inst.on_event(end_event("A", 3.5))
        assert [v.action for v in verdicts] == ["skipTask"]

    def test_within_window_restart_no_failure(self):
        events = [start_event("A", 0.0), start_event("A", 1.0),
                  end_event("A", 2.5)]
        assert run(generate_machine(self.prop()), events) == []


class TestCollectTemplate:
    def prop(self, count=5, reset=False):
        return Collect(task="A", on_fail=ActionType.RESTART_PATH,
                       dep_task="B", count=count, reset_on_fail=reset)

    def test_enough_items_pass(self):
        events = [end_event("B", float(i)) for i in range(5)]
        events.append(start_event("A", 10.0))
        assert run(generate_machine(self.prop()), events) == []

    def test_too_few_items_fail(self):
        events = [end_event("B", 0.0), start_event("A", 1.0)]
        assert run(generate_machine(self.prop()), events) == [("restartPath", None)]

    def test_accumulates_across_failures_by_default(self):
        machine = generate_machine(self.prop(count=3))
        inst = MachineInstance(machine)
        for i in range(2):
            inst.on_event(end_event("B", float(i)))
            inst.on_event(start_event("A", float(i) + 0.5))  # fails, keeps count
        inst.on_event(end_event("B", 2.0))
        assert inst.on_event(start_event("A", 3.0)) == []  # 3 collected

    def test_figure7_literal_reset_on_fail(self):
        machine = generate_machine(self.prop(count=3, reset=True))
        inst = MachineInstance(machine)
        inst.on_event(end_event("B", 0.0))
        inst.on_event(start_event("A", 1.0))  # fails and resets
        assert inst.get("i") == 0

    def test_success_consumes_count(self):
        machine = generate_machine(self.prop(count=2))
        inst = MachineInstance(machine)
        inst.on_event(end_event("B", 0.0))
        inst.on_event(end_event("B", 1.0))
        assert inst.on_event(start_event("A", 2.0)) == []
        # The passing start leaves the count banked: a crash mid-task
        # re-announces StartTask, and the re-attempt must pass again.
        assert inst.get("i") == 2
        inst.on_event(end_event("A", 3.0))
        assert inst.get("i") == 0  # consumed on completion; next round anew

    def test_single_state_machine(self):
        machine = generate_machine(self.prop())
        assert machine.states == ["Counting"]


class TestMITDTemplate:
    def prop(self, max_attempt=None):
        return MITD(
            task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
            limit_s=2.0, max_attempt=max_attempt,
            max_attempt_action=ActionType.SKIP_PATH if max_attempt else None,
        )

    def test_on_time_start_ok(self):
        events = [end_event("B", 0.0), start_event("A", 1.5)]
        assert run(generate_machine(self.prop()), events) == []

    def test_late_start_fails(self):
        events = [end_event("B", 0.0), start_event("A", 3.0)]
        assert run(generate_machine(self.prop()), events) == [("restartPath", None)]

    def test_dependency_refresh_extends_deadline(self):
        events = [end_event("B", 0.0), end_event("B", 10.0),
                  start_event("A", 11.0)]
        assert run(generate_machine(self.prop()), events) == []

    def test_reexecution_attempt_rechecked(self):
        """An on-time start followed by a power-failure re-start after a
        long outage must be caught (the §5.2 scenario)."""
        events = [end_event("B", 0.0), start_event("A", 1.0),  # on time
                  start_event("A", 400.0)]  # re-attempt after outage
        assert run(generate_machine(self.prop()), events) == [("restartPath", None)]

    def test_max_attempt_escalation(self):
        machine = generate_machine(self.prop(max_attempt=3))
        events = [end_event("B", 0.0)]
        # three late attempts, each preceded by a refreshed B completion
        verdicts = []
        inst = MachineInstance(machine)
        for event in events:
            inst.on_event(event)
        t = 10.0
        for _ in range(3):
            verdicts.extend(inst.on_event(start_event("A", t)))
            inst.on_event(end_event("B", t + 1.0))
            t += 10.0
        assert [v.action for v in verdicts] == [
            "restartPath", "restartPath", "skipPath"]

    def test_attempt_counter_not_reset_by_on_time_start(self):
        """Interleaved on-time starts (that never complete) must not
        clear the violation streak."""
        machine = generate_machine(self.prop(max_attempt=2))
        inst = MachineInstance(machine)
        inst.on_event(end_event("B", 0.0))
        v1 = inst.on_event(start_event("A", 5.0))  # late: violation 1
        inst.on_event(end_event("B", 6.0))  # path restarted, B re-ran
        assert inst.on_event(start_event("A", 7.0)) == []  # on time, dies later
        v2 = inst.on_event(start_event("A", 20.0))  # late again: escalate
        assert [v.action for v in v1] == ["restartPath"]
        assert [v.action for v in v2] == ["skipPath"]

    def test_completion_clears_attempts(self):
        machine = generate_machine(self.prop(max_attempt=2))
        inst = MachineInstance(machine)
        inst.on_event(end_event("B", 0.0))
        inst.on_event(start_event("A", 5.0))  # violation 1
        inst.on_event(end_event("B", 6.0))
        inst.on_event(start_event("A", 7.0))  # on time
        inst.on_event(end_event("A", 8.0))  # completes: streak cleared
        inst.on_event(end_event("B", 9.0))
        verdicts = inst.on_event(start_event("A", 20.0))  # violation again
        assert [v.action for v in verdicts] == ["restartPath"]  # not skipPath

    def test_start_before_any_b_completion_ignored(self):
        events = [start_event("A", 0.0)]
        assert run(generate_machine(self.prop()), events) == []


class TestDpDataTemplate:
    def prop(self):
        return DpData(task="calcAvg", on_fail=ActionType.COMPLETE_PATH,
                      var="avgTemp", low=36.0, high=38.0)

    def test_in_range_ok(self):
        events = [end_event("calcAvg", 0.0, {"avgTemp": 36.8})]
        assert run(generate_machine(self.prop()), events) == []

    def test_above_range_fails(self):
        events = [end_event("calcAvg", 0.0, {"avgTemp": 39.2})]
        assert run(generate_machine(self.prop()), events) == [("completePath", None)]

    def test_below_range_fails(self):
        events = [end_event("calcAvg", 0.0, {"avgTemp": 35.0})]
        assert run(generate_machine(self.prop()), events) == [("completePath", None)]

    def test_boundaries_inclusive(self):
        for value in (36.0, 38.0):
            events = [end_event("calcAvg", 0.0, {"avgTemp": value})]
            assert run(generate_machine(self.prop()), events) == []


class TestPeriodTemplate:
    def prop(self, max_attempt=None):
        return Period(
            task="A", on_fail=ActionType.RESTART_PATH, period_s=10.0,
            jitter_s=1.0, max_attempt=max_attempt,
            max_attempt_action=ActionType.SKIP_PATH if max_attempt else None,
        )

    def test_on_time_period_ok(self):
        events = [start_event("A", 0.0), start_event("A", 10.5),
                  start_event("A", 20.9)]
        assert run(generate_machine(self.prop()), events) == []

    def test_late_period_fails(self):
        events = [start_event("A", 0.0), start_event("A", 12.0)]
        assert run(generate_machine(self.prop()), events) == [("restartPath", None)]

    def test_jitter_tolerance(self):
        events = [start_event("A", 0.0), start_event("A", 11.0)]
        assert run(generate_machine(self.prop()), events) == []

    def test_max_attempt_escalation(self):
        events = [start_event("A", 0.0), start_event("A", 20.0),
                  start_event("A", 40.0)]
        assert run(generate_machine(self.prop(max_attempt=2)), events) == [
            ("restartPath", None), ("skipPath", None)]

    def test_on_time_resets_attempts(self):
        events = [start_event("A", 0.0), start_event("A", 20.0),  # violation
                  start_event("A", 30.0),  # on time: reset
                  start_event("A", 50.0)]  # violation again -> restart
        assert run(generate_machine(self.prop(max_attempt=2)), events) == [
            ("restartPath", None), ("restartPath", None)]


class TestEnergyTemplate:
    def test_low_energy_fails(self):
        prop = EnergyAtLeast(task="A", on_fail=ActionType.SKIP_TASK,
                             min_energy_j=0.010)
        machine = generate_machine(prop)
        events = [MonitorEvent("startTask", "A", 0.0, {"energy": 0.005})]
        assert run(machine, events) == [("skipTask", None)]

    def test_sufficient_energy_ok(self):
        prop = EnergyAtLeast(task="A", on_fail=ActionType.SKIP_TASK,
                             min_energy_j=0.010)
        machine = generate_machine(prop)
        events = [MonitorEvent("startTask", "A", 0.0, {"energy": 0.015})]
        assert run(machine, events) == []


class TestPathScoping:
    def test_scoped_property_ignores_other_paths(self):
        prop = Collect(task="send", on_fail=ActionType.RESTART_PATH,
                       dep_task="micSense", count=1, path=3)
        machine = generate_machine(prop)
        inst = MachineInstance(machine)
        # send starting on path 2 with no micSense data: NOT a violation.
        assert inst.on_event(
            MonitorEvent("startTask", "send", 0.0, path=2)) == []
        # send starting on path 3 without data IS one.
        verdicts = inst.on_event(MonitorEvent("startTask", "send", 1.0, path=3))
        assert [(v.action, v.path) for v in verdicts] == [("restartPath", 3)]

    def test_scoped_success_consumes_only_on_own_path(self):
        prop = Collect(task="send", on_fail=ActionType.RESTART_PATH,
                       dep_task="micSense", count=1, path=3)
        inst = MachineInstance(generate_machine(prop))
        inst.on_event(end_event("micSense", 0.0))
        inst.on_event(MonitorEvent("startTask", "send", 1.0, path=2))
        assert inst.get("i") == 1  # untouched by the path-2 start
        assert inst.on_event(MonitorEvent("startTask", "send", 2.0, path=3)) == []
        assert inst.get("i") == 1  # banked until send completes on path 3
        inst.on_event(MonitorEvent("endTask", "send", 3.0, path=2))
        assert inst.get("i") == 1  # a path-2 end does not consume it
        inst.on_event(MonitorEvent("endTask", "send", 4.0, path=3))
        assert inst.get("i") == 0

    def test_fail_carries_declared_path(self):
        prop = MITD(task="send", on_fail=ActionType.RESTART_PATH,
                    dep_task="accel", limit_s=2.0, path=2)
        inst = MachineInstance(generate_machine(prop))
        inst.on_event(end_event("accel", 0.0))
        verdicts = inst.on_event(MonitorEvent("startTask", "send", 9.0, path=2))
        assert [(v.action, v.path) for v in verdicts] == [("restartPath", 2)]


class TestGeneratorGeneral:
    def test_generate_machines_one_per_property(self, health_app):
        from repro.spec.validator import load_properties
        from repro.workloads.health import FIGURE5_SPEC

        props = load_properties(FIGURE5_SPEC, health_app)
        machines = generate_machines(props)
        assert len(machines) == len(props)
        assert len({m.name for m in machines}) == len(machines)

    def test_unknown_property_type_rejected(self):
        class Fake:
            path = None

        with pytest.raises(GenerationError):
            generate_machine(Fake())
