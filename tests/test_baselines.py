"""Tests for the Mayfly and Chain-style baselines."""

import pytest

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import Collection, Expiration, MayflyConfig, MayflyRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.errors import RuntimeConfigError
from repro.sim.device import Device
from repro.taskgraph.builder import AppBuilder


def power():
    return PowerModel({}, default_cost=TaskCost(0.1, 1e-3))


def continuous():
    return Device(EnergyEnvironment.continuous())


def two_path_app():
    return (
        AppBuilder("tp")
        .task("a").task("b").task("c").task("d")
        .path(1, ["a", "b"])
        .path(2, ["c", "d"])
        .build()
    )


class TestMayflyBasic:
    def test_executes_paths_in_order(self):
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), MayflyConfig(), device, power())
        result = device.run(runtime)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a", "b", "c", "d"]

    def test_unknown_rule_task_rejected(self):
        config = MayflyConfig(expirations=[Expiration("ghost", "a", 1.0)])
        with pytest.raises(RuntimeConfigError):
            MayflyRuntime(two_path_app(), config, continuous(), power())

    def test_collect_restarts_until_satisfied(self):
        config = MayflyConfig(collections=[Collection("b", "a", 3)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        result = device.run(runtime)
        assert result.completed
        a_runs = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        assert len(a_runs) == 3
        assert device.trace.count("path_restart") == 2

    def test_expiration_fresh_data_passes(self):
        config = MayflyConfig(expirations=[Expiration("b", "a", 60.0)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        assert device.run(runtime).completed
        assert device.trace.count("path_restart") == 0

    def test_rule_scoped_to_path(self):
        # A rule on task d scoped to path 1 (where d never runs) is inert.
        config = MayflyConfig(collections=[Collection("d", "a", 99, path=1)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        assert device.run(runtime).completed

    def test_counts_reset_between_runs(self):
        config = MayflyConfig(collections=[Collection("b", "a", 2)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        result = device.run(runtime, runs=2)
        assert result.runs_completed == 2
        a_runs = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        assert len(a_runs) == 4  # 2 per run; counts did not leak

    def test_checks_for_counts_rules(self):
        config = MayflyConfig(
            expirations=[Expiration("b", "a", 1.0)],
            collections=[Collection("b", "a", 2), Collection("d", "c", 1)],
        )
        assert config.checks_for("b") == 2
        assert config.checks_for("d") == 1
        assert config.checks_for("a") == 0


class TestMayflyLivelock:
    def test_expired_data_livelocks_without_escape(self):
        """The Figure 12 pathology in miniature: the producer-consumer
        pair can never satisfy a 1-second expiration when a brown-out
        longer than that always hits between them."""
        from repro.energy.capacitor import Capacitor

        app = (
            AppBuilder("ll")
            .task("produce").task("consume")
            .path(1, ["produce", "consume"])
            .build()
        )
        model = PowerModel({
            "produce": TaskCost(0.1, 1e-3),
            "consume": TaskCost(0.1, 10e-3),  # 1 mJ: never fits the rest
        })
        cap = Capacitor(0.36e-3, v_initial=3.0)  # ~1.04 mJ usable
        env = EnergyEnvironment.for_charging_delay(30.0, capacitor=cap)
        device = Device(env)
        config = MayflyConfig(expirations=[Expiration("consume", "produce", 1.0)])
        runtime = MayflyRuntime(app, config, device, model)
        result = device.run(runtime, max_time_s=3600)
        assert not result.completed
        assert device.trace.count("path_restart") >= 10


class TestChainRuntime:
    def test_runs_without_checks(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {}, device, power())
        assert device.run(runtime).completed

    def test_inline_check_restart_path(self):
        app = two_path_app()
        state = {"passes": 0}

        def check(ctx):
            state["passes"] += 1
            return None if state["passes"] >= 3 else "restart_path"

        device = continuous()
        runtime = ChainRuntime(app, {"b": check}, device, power())
        assert device.run(runtime).completed
        assert device.trace.count("path_restart") == 2

    def test_inline_check_skip_path(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: "skip_path"},
                               device, power())
        assert device.run(runtime).completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert "b" not in ends

    def test_check_cost_charged_as_app_time(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: None},
                               device, power())
        device.run(runtime)
        # 4 tasks x 0.1 s plus one inline check's worth of app time.
        assert device.result.busy_time_s["app"] == pytest.approx(
            0.4 + ChainRuntime.CHECK_S)
        assert device.result.busy_time_s["monitor"] == 0.0

    def test_invalid_check_result_rejected(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: "explode"},
                               device, power())
        with pytest.raises(RuntimeConfigError):
            device.run(runtime)

    def test_unknown_check_task_rejected(self):
        with pytest.raises(RuntimeConfigError):
            ChainRuntime(two_path_app(), {"ghost": lambda ctx: None},
                         continuous(), power())


class TestBaselineCrashConsistency:
    """The journaled commit and boot-time recovery protect the baselines
    too: a brown-out inside any commit step must be rolled back or
    forward so tasks never double-execute their committed effects."""

    @staticmethod
    def _logging_app():
        return (
            AppBuilder("blog")
            .task("a", body=lambda ctx: ctx.append("log", "a"))
            .task("b", body=lambda ctx: ctx.append("log", "b"))
            .task("c", body=lambda ctx: ctx.append("log", "c"))
            .path(1, ["a", "b"])
            .path(2, ["c"])
            .build()
        )

    def _sweep(self, make_runtime):
        from repro.sim.faults import FailDuringCommit
        from repro.taskgraph.context import channel_cell_name

        # Oracle: failure-free run.
        device = continuous()
        result = device.run(make_runtime(device))
        assert result.completed
        base_log = device.nvm.cell(channel_cell_name("log")).get()

        # Count the commit steps, then crash at each one in turn.
        probe = FailDuringCommit(indices=set())
        assert probe.run(make_runtime(probe), max_time_s=600).completed
        total_steps = probe.steps
        assert total_steps >= 3 * 4  # >= 2n+2 points per task commit

        for step in range(1, total_steps + 1):
            injector = FailDuringCommit({step})
            result = injector.run(make_runtime(injector), max_time_s=600)
            log = injector.nvm.cell(channel_cell_name("log")).get()
            assert result.completed, f"commit step {step} wedged the run"
            assert result.reboots == 1
            assert result.torn_commits + result.journal_replays == 1
            assert log == base_log, (
                f"commit step {step}: {log} != oracle {base_log}")

    def test_mayfly_commit_interior_crashes_recover(self):
        self._sweep(lambda device: MayflyRuntime(
            self._logging_app(), MayflyConfig(), device, power()))

    def test_chain_commit_interior_crashes_recover(self):
        self._sweep(lambda device: ChainRuntime(
            self._logging_app(), {}, device, power()))

    def test_mayfly_counts_never_double_increment(self):
        """The classic torn-commit bug: a crash between the channel
        commit and the count increment used to re-run the task with the
        count already bumped. Staged control state makes that window
        impossible."""
        from repro.sim.faults import FailDuringCommit

        config = MayflyConfig(collections=[Collection("b", "a", 2)])
        app = (
            AppBuilder("cnt")
            .task("a", body=lambda ctx: ctx.append("log", "a"))
            .task("b", body=lambda ctx: ctx.append("log", "b"))
            .path(1, ["a", "b"])
            .build()
        )
        # Crash inside the first task's commit on every possible step.
        for step in range(1, 13):
            injector = FailDuringCommit({step})
            runtime = MayflyRuntime(app, config, injector, power())
            result = injector.run(runtime, max_time_s=600)
            if not result.completed:
                continue  # step index beyond this run's commit steps
            from repro.taskgraph.context import channel_cell_name
            log = injector.nvm.cell(channel_cell_name("log")).get()
            # A double-counted `a` would let `b` run after a single
            # append; rolled-back commits re-run `a` in full. Either
            # way the committed log must match the failure-free oracle.
            assert log == ["a", "a", "b"], f"step {step}: {log}"
