"""Tests for the Mayfly and Chain-style baselines."""

import pytest

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import Collection, Expiration, MayflyConfig, MayflyRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.errors import RuntimeConfigError
from repro.sim.device import Device
from repro.taskgraph.builder import AppBuilder


def power():
    return PowerModel({}, default_cost=TaskCost(0.1, 1e-3))


def continuous():
    return Device(EnergyEnvironment.continuous())


def two_path_app():
    return (
        AppBuilder("tp")
        .task("a").task("b").task("c").task("d")
        .path(1, ["a", "b"])
        .path(2, ["c", "d"])
        .build()
    )


class TestMayflyBasic:
    def test_executes_paths_in_order(self):
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), MayflyConfig(), device, power())
        result = device.run(runtime)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a", "b", "c", "d"]

    def test_unknown_rule_task_rejected(self):
        config = MayflyConfig(expirations=[Expiration("ghost", "a", 1.0)])
        with pytest.raises(RuntimeConfigError):
            MayflyRuntime(two_path_app(), config, continuous(), power())

    def test_collect_restarts_until_satisfied(self):
        config = MayflyConfig(collections=[Collection("b", "a", 3)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        result = device.run(runtime)
        assert result.completed
        a_runs = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        assert len(a_runs) == 3
        assert device.trace.count("path_restart") == 2

    def test_expiration_fresh_data_passes(self):
        config = MayflyConfig(expirations=[Expiration("b", "a", 60.0)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        assert device.run(runtime).completed
        assert device.trace.count("path_restart") == 0

    def test_rule_scoped_to_path(self):
        # A rule on task d scoped to path 1 (where d never runs) is inert.
        config = MayflyConfig(collections=[Collection("d", "a", 99, path=1)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        assert device.run(runtime).completed

    def test_counts_reset_between_runs(self):
        config = MayflyConfig(collections=[Collection("b", "a", 2)])
        device = continuous()
        runtime = MayflyRuntime(two_path_app(), config, device, power())
        result = device.run(runtime, runs=2)
        assert result.runs_completed == 2
        a_runs = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        assert len(a_runs) == 4  # 2 per run; counts did not leak

    def test_checks_for_counts_rules(self):
        config = MayflyConfig(
            expirations=[Expiration("b", "a", 1.0)],
            collections=[Collection("b", "a", 2), Collection("d", "c", 1)],
        )
        assert config.checks_for("b") == 2
        assert config.checks_for("d") == 1
        assert config.checks_for("a") == 0


class TestMayflyLivelock:
    def test_expired_data_livelocks_without_escape(self):
        """The Figure 12 pathology in miniature: the producer-consumer
        pair can never satisfy a 1-second expiration when a brown-out
        longer than that always hits between them."""
        from repro.energy.capacitor import Capacitor

        app = (
            AppBuilder("ll")
            .task("produce").task("consume")
            .path(1, ["produce", "consume"])
            .build()
        )
        model = PowerModel({
            "produce": TaskCost(0.1, 1e-3),
            "consume": TaskCost(0.1, 10e-3),  # 1 mJ: never fits the rest
        })
        cap = Capacitor(0.36e-3, v_initial=3.0)  # ~1.04 mJ usable
        env = EnergyEnvironment.for_charging_delay(30.0, capacitor=cap)
        device = Device(env)
        config = MayflyConfig(expirations=[Expiration("consume", "produce", 1.0)])
        runtime = MayflyRuntime(app, config, device, model)
        result = device.run(runtime, max_time_s=3600)
        assert not result.completed
        assert device.trace.count("path_restart") >= 10


class TestChainRuntime:
    def test_runs_without_checks(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {}, device, power())
        assert device.run(runtime).completed

    def test_inline_check_restart_path(self):
        app = two_path_app()
        state = {"passes": 0}

        def check(ctx):
            state["passes"] += 1
            return None if state["passes"] >= 3 else "restart_path"

        device = continuous()
        runtime = ChainRuntime(app, {"b": check}, device, power())
        assert device.run(runtime).completed
        assert device.trace.count("path_restart") == 2

    def test_inline_check_skip_path(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: "skip_path"},
                               device, power())
        assert device.run(runtime).completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert "b" not in ends

    def test_check_cost_charged_as_app_time(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: None},
                               device, power())
        device.run(runtime)
        # 4 tasks x 0.1 s plus one inline check's worth of app time.
        assert device.result.busy_time_s["app"] == pytest.approx(
            0.4 + ChainRuntime.CHECK_S)
        assert device.result.busy_time_s["monitor"] == 0.0

    def test_invalid_check_result_rejected(self):
        device = continuous()
        runtime = ChainRuntime(two_path_app(), {"a": lambda ctx: "explode"},
                               device, power())
        with pytest.raises(RuntimeConfigError):
            device.run(runtime)

    def test_unknown_check_task_rejected(self):
        with pytest.raises(RuntimeConfigError):
            ChainRuntime(two_path_app(), {"ghost": lambda ctx: None},
                         continuous(), power())
