"""Energy-adaptive monitor degradation: shedding order, hysteresis (no
oscillation at the watermarks), shed persistence, and restoration."""

import math

import pytest

from repro.core.audit import AuditLog
from repro.core.degradation import DegradationController
from repro.core.events import start_event
from repro.core.monitor import ArtemisMonitor
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import MCU_ACTIVE_POWER_W, PowerModel, TaskCost
from repro.errors import RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.sim.device import Device
from repro.sim.result import RunResult
from repro.sim.tracer import Tracer
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder

SPEC = """
a: {
    maxTries: 5 onFail: skipPath priority: 1;
}
b: {
    maxTries: 5 onFail: skipPath priority: 2;
}
c: {
    collect: 1 dpTask: a onFail: restartPath;
}
"""


class FakeSoCDevice:
    """Stand-in device with a directly settable state of charge."""

    def __init__(self, soc):
        self.soc = soc
        self.trace = Tracer()
        self.result = RunResult()

    def stored_energy(self):
        return self.soc

    def now(self):
        return 0.0


def _app():
    return (
        AppBuilder("tri")
        .task("a").task("b").task("c")
        .path(1, ["a", "b", "c"])
        .build()
    )


def _monitor(nvm=None):
    app = _app()
    props = load_properties(SPEC, app)
    return ArtemisMonitor(props, nvm if nvm is not None else NonVolatileMemory())


class TestMonitorShedding:
    def test_priorities_reach_the_machines(self):
        monitor = _monitor()
        priorities = {m: monitor.machine_priority(m)
                      for m in monitor.shedding_order()}
        assert sorted(priorities.values()) == [1, 2]

    def test_collect_is_not_sheddable(self):
        monitor = _monitor()
        collect = [m.name for m in monitor.machines
                   if not monitor.sheddable(m.name)]
        assert len(collect) == 1
        assert not monitor.shed(collect[0])
        assert monitor.shed_machines() == []

    def test_shedding_order_is_lowest_priority_first(self):
        monitor = _monitor()
        order = monitor.shedding_order()
        assert [monitor.machine_priority(m) for m in order] == [1, 2]

    def test_shed_machine_pays_nothing_but_keeps_its_step(self):
        live, shed_monitor = _monitor(), _monitor()
        target = shed_monitor.shedding_order()[0]
        assert shed_monitor.shed(target)
        live_spent, shed_spent = [], []
        event = start_event("a", 1.0, 1)
        live.call(event, spend=live_spent.append,
                  per_machine_cost_s=1e-3, base_cost_s=1e-3)
        shed_monitor.call(event, spend=shed_spent.append,
                          per_machine_cost_s=1e-3, base_cost_s=1e-3)
        # Same step count (the resumable continuation needs a constant
        # shape) but the shed machine's per-event cost dropped to zero.
        assert len(shed_spent) == len(live_spent)
        assert sum(shed_spent) == pytest.approx(sum(live_spent) - 1e-3)

    def test_shed_state_persists_across_monitor_rebuild(self):
        nvm = NonVolatileMemory()
        monitor = _monitor(nvm)
        target = monitor.shedding_order()[0]
        assert monitor.shed(target)
        rebuilt = _monitor(nvm)  # same NVM: reboot
        assert rebuilt.is_shed(target)
        assert rebuilt.shed_machines() == [target]

    def test_restore_resets_the_machine(self):
        monitor = _monitor()
        target = monitor.shedding_order()[0]
        monitor.shed(target)
        assert monitor.restore(target)
        assert not monitor.is_shed(target)
        # Restoring a machine that is not shed reports False.
        assert not monitor.restore(target)


class TestControllerHysteresis:
    def _controller(self, low=1.0, high=2.0, monitor=None):
        monitor = monitor if monitor is not None else _monitor()
        return DegradationController(monitor, low, high), monitor

    def test_watermark_validation(self):
        with pytest.raises(RuntimeConfigError):
            DegradationController(_monitor(), -0.1, 1.0)
        with pytest.raises(RuntimeConfigError):
            DegradationController(_monitor(), 2.0, 2.0)

    def test_sheds_one_per_update_below_low(self):
        controller, monitor = self._controller()
        device = FakeSoCDevice(0.5)
        first = controller.update(device)
        assert first is not None
        assert monitor.machine_priority(first) == 1  # lowest goes first
        second = controller.update(device)
        assert second is not None and second != first
        assert controller.update(device) is None  # nothing sheddable left
        assert device.result.monitors_shed == 2

    def test_band_between_watermarks_changes_nothing(self):
        controller, monitor = self._controller()
        device = FakeSoCDevice(0.5)
        controller.update(device)
        device.soc = 1.5  # inside the hysteresis band
        for _ in range(10):
            assert controller.update(device) is None
        assert len(monitor.shed_machines()) == 1

    def test_restores_highest_priority_first_at_high(self):
        controller, monitor = self._controller()
        device = FakeSoCDevice(0.5)
        controller.update(device)
        controller.update(device)
        device.soc = 2.5
        first = controller.update(device)
        assert monitor.machine_priority(first) == 2  # most valuable back first
        second = controller.update(device)
        assert monitor.machine_priority(second) == 1
        assert controller.update(device) is None  # nothing left to restore
        assert device.result.monitors_restored == 2
        assert controller.shed_count == 0

    def test_no_oscillation_when_soc_hovers_at_a_watermark(self):
        """SoC bouncing just above low / just below high must not cause
        shed/restore flapping — that is what the band is for."""
        controller, monitor = self._controller(low=1.0, high=2.0)
        device = FakeSoCDevice(0.9)
        controller.update(device)  # one legitimate shed below low
        for soc in [1.01, 1.99, 1.01, 1.99, 1.5, 1.01, 1.99] * 3:
            device.soc = soc
            assert controller.update(device) is None
        assert device.result.monitors_shed == 1
        assert device.result.monitors_restored == 0

    def test_soc_exactly_at_watermarks_does_not_oscillate(self):
        """The shed test is strict (``soc < low``) and the restore test
        inclusive (``soc >= high``): landing exactly on either watermark
        — even alternating between the two — never flaps."""
        controller, monitor = self._controller(low=1.0, high=2.0)
        device = FakeSoCDevice(1.0)  # exactly at low: no shed
        assert controller.update(device) is None
        assert monitor.shed_machines() == []
        device.soc = 0.5
        controller.update(device)  # one legitimate shed
        changes = []
        for soc in [1.0, 2.0, 1.0, 2.0, 1.0]:
            device.soc = soc
            changes.append(controller.update(device))
        # Exactly one restore (first touch of high); every later visit
        # to either boundary value is a no-op.
        assert [c is not None for c in changes] == \
            [False, True, False, False, False]
        assert device.result.monitors_shed == 1
        assert device.result.monitors_restored == 1

    def test_equal_priorities_break_ties_by_machine_name(self):
        spec = """
        a: {
            maxTries: 5 onFail: skipPath priority: 1;
        }
        b: {
            maxTries: 5 onFail: skipPath priority: 1;
        }
        """
        app = _app()
        monitor = ArtemisMonitor(load_properties(spec, app),
                                 NonVolatileMemory())
        order = monitor.shedding_order()
        assert order == sorted(order)  # same priority: name order sheds
        controller = DegradationController(monitor, 1.0, 2.0)
        device = FakeSoCDevice(0.5)
        assert controller.update(device) == order[0]
        assert controller.update(device) == order[1]
        device.soc = 3.0
        # Restores are name-ordered too on equal priority: deterministic
        # across runs and hash seeds.
        assert controller.update(device) == order[0]
        assert controller.update(device) == order[1]

    def test_audit_entries_carry_soc(self):
        monitor = _monitor()
        audit = AuditLog(NonVolatileMemory())
        controller = DegradationController(monitor, 1.0, 2.0, audit=audit)
        device = FakeSoCDevice(0.25)
        machine = controller.update(device)
        device.soc = 3.0
        controller.update(device)
        entries = audit.entries()
        assert [e.action for e in entries] == \
            ["degrade:shed", "degrade:restore"]
        assert entries[0].source == machine
        assert entries[0].task == "soc:0.25"
        assert entries[1].task == "soc:3.0"

    def test_continuous_power_is_a_noop(self):
        controller, monitor = self._controller()
        device = FakeSoCDevice(math.inf)
        assert controller.update(device) is None
        assert monitor.shed_machines() == []

    def test_events_traced_with_priority_and_soc(self):
        controller, _ = self._controller()
        device = FakeSoCDevice(0.25)
        machine = controller.update(device)
        device.soc = 3.0
        controller.update(device)
        shed_events = device.trace.of_kind("monitor_shed")
        restore_events = device.trace.of_kind("monitor_restored")
        assert len(shed_events) == len(restore_events) == 1
        assert shed_events[0].detail["machine"] == machine
        assert shed_events[0].detail["priority"] == 1
        assert shed_events[0].detail["soc_j"] == pytest.approx(0.25)
        assert restore_events[0].detail["soc_j"] == pytest.approx(3.0)


class TestRuntimeIntegration:
    def test_runtime_builds_controller_from_watermark_tuple(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties(SPEC, app)
        runtime = ArtemisRuntime(
            app, props, device,
            PowerModel({}, default_cost=TaskCost(1e-3, MCU_ACTIVE_POWER_W)),
            degradation=(0.001, 0.002),
        )
        assert runtime._degradation is not None
        assert runtime._degradation.low_j == pytest.approx(0.001)
        # Continuous power: a full run never sheds anything.
        result = device.run(runtime)
        assert result.completed
        assert result.monitors_shed == 0

    def test_bad_watermark_tuple_rejected(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties(SPEC, app)
        with pytest.raises(RuntimeConfigError):
            ArtemisRuntime(
                app, props, device,
                PowerModel({}, default_cost=TaskCost(1e-3, MCU_ACTIVE_POWER_W)),
                degradation=(0.002, 0.001),
            )
