"""Tests for the ImmortalThreads-style continuation substrate."""

import pytest

from repro.errors import ReproError
from repro.immortal.continuations import ImmortalRoutine, PersistentList


class Boom(Exception):
    """Stand-in for a power failure inside a step."""


class TestImmortalRoutine:
    def test_runs_all_steps(self, nvm):
        log = []
        routine = ImmortalRoutine(nvm, "r")
        routine.run([lambda: log.append(1), lambda: log.append(2)])
        assert log == [1, 2]
        assert not routine.in_progress

    def test_interrupted_run_resumes_at_failed_step(self, nvm):
        log = []
        routine = ImmortalRoutine(nvm, "r")
        fail_once = {"armed": True}

        def flaky():
            if fail_once["armed"]:
                fail_once["armed"] = False
                raise Boom()
            log.append("flaky")

        steps = [lambda: log.append("a"), flaky, lambda: log.append("b")]
        with pytest.raises(Boom):
            routine.run(steps)
        assert routine.in_progress
        assert routine.next_step == 1
        assert routine.resume(steps)
        assert log == ["a", "flaky", "b"]
        assert not routine.in_progress

    def test_completed_steps_not_rerun_on_resume(self, nvm):
        counter = {"a": 0}
        routine = ImmortalRoutine(nvm, "r")

        def step_a():
            counter["a"] += 1

        def bomb():
            raise Boom()

        with pytest.raises(Boom):
            routine.run([step_a, bomb])
        try:
            routine.resume([step_a, lambda: None])
        except Boom:
            pass
        assert counter["a"] == 1

    def test_resume_without_interruption_is_noop(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        routine.run([lambda: None])
        assert routine.resume([lambda: None]) is False

    def test_run_while_in_progress_rejected(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        with pytest.raises(Boom):
            routine.run([lambda: (_ for _ in ()).throw(Boom())])
        with pytest.raises(ReproError):
            routine.run([lambda: None])

    def test_resume_with_wrong_step_count_rejected(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        with pytest.raises(Boom):
            routine.run([lambda: (_ for _ in ()).throw(Boom()), lambda: None])
        with pytest.raises(ReproError):
            routine.resume([lambda: None])

    def test_progress_survives_reconstruction(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        with pytest.raises(Boom):
            routine.run([lambda: None, lambda: (_ for _ in ()).throw(Boom())])
        # A "reboot": rebuild the routine object over the same NVM.
        revived = ImmortalRoutine(nvm, "r")
        assert revived.in_progress
        assert revived.next_step == 1

    def test_multiple_interruptions(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        fails = {"n": 2}
        log = []

        def flaky():
            if fails["n"]:
                fails["n"] -= 1
                raise Boom()
            log.append("done")

        steps = [lambda: log.append("pre"), flaky]
        with pytest.raises(Boom):
            routine.run(steps)
        with pytest.raises(Boom):
            routine.resume(steps)
        routine.resume(steps)
        assert log == ["pre", "done"]

    def test_empty_step_list(self, nvm):
        routine = ImmortalRoutine(nvm, "r")
        routine.run([])
        assert not routine.in_progress


class TestPersistentList:
    def test_append_and_items(self, nvm):
        plist = PersistentList(nvm, "v")
        plist.append(("m", "skipPath", None))
        plist.append(("n", "restartPath", 2))
        assert plist.items() == [("m", "skipPath", None), ("n", "restartPath", 2)]
        assert len(plist) == 2

    def test_clear(self, nvm):
        plist = PersistentList(nvm, "v")
        plist.append(1)
        plist.clear()
        assert plist.items() == []

    def test_survives_reconstruction(self, nvm):
        PersistentList(nvm, "v").append("x")
        assert PersistentList(nvm, "v").items() == ["x"]
