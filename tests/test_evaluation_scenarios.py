"""End-to-end tests reproducing the paper's evaluation scenarios (§5).

These are the assertions behind the benchmark harness: each test pins
the qualitative shape of one figure so a regression in any subsystem
surfaces here first.
"""

import pytest

from repro.taskgraph.context import channel_cell_name
from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_continuous_device,
    make_intermittent_device,
)

FOUR_HOURS = 4 * 3600.0


def run_artemis(delay_s=None, **kwargs):
    device = (make_continuous_device() if delay_s is None
              else make_intermittent_device(delay_s))
    runtime = build_artemis(device, **kwargs)
    result = device.run(runtime, max_time_s=FOUR_HOURS)
    return device, result


def run_mayfly(delay_s=None):
    device = (make_continuous_device() if delay_s is None
              else make_intermittent_device(delay_s))
    runtime = build_mayfly(device)
    result = device.run(runtime, max_time_s=FOUR_HOURS)
    return device, result


class TestFigure12NonTermination:
    """Charging delays past the 5-minute MITD: Mayfly livelocks,
    ARTEMIS completes by skipping the failing path."""

    @pytest.mark.parametrize("delay", [60.0, 120.0, 240.0])
    def test_both_complete_below_mitd(self, delay):
        _, artemis = run_artemis(delay)
        _, mayfly = run_mayfly(delay)
        assert artemis.completed
        assert mayfly.completed

    @pytest.mark.parametrize("delay", [360.0, 480.0, 600.0])
    def test_mayfly_dnf_above_mitd(self, delay):
        _, mayfly = run_mayfly(delay)
        assert not mayfly.completed

    @pytest.mark.parametrize("delay", [360.0, 480.0, 600.0])
    def test_artemis_completes_above_mitd(self, delay):
        device, artemis = run_artemis(delay)
        assert artemis.completed
        assert device.trace.count("path_skip") >= 1

    def test_execution_time_grows_with_delay(self):
        times = [run_artemis(d)[1].total_time_s for d in (60.0, 120.0, 240.0)]
        assert times == sorted(times)

    def test_artemis_still_sends_after_skip(self):
        device, artemis = run_artemis(600.0)
        assert artemis.completed
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) >= 2  # paths 1 and 3 still transmitted


class TestFigure13MaxAttemptTimeline:
    """Exactly three attempts at path 2, then the skip (Figure 13)."""

    def test_three_attempts_then_skip(self):
        device, result = run_artemis(420.0)
        assert result.completed
        actions = [e.detail for e in device.trace.of_kind("monitor_action")
                   if e.detail.get("source", "").startswith("MITD")]
        assert [a["action"] for a in actions] == [
            "restartPath", "restartPath", "skipPath"]

    def test_send_runs_after_skip_on_path3(self):
        device, result = run_artemis(420.0)
        path3_sends = [e for e in device.trace.of_kind("task_end")
                       if e.detail["task"] == "send" and e.detail["path"] == 3]
        assert len(path3_sends) == 1


class TestFigure14_15Overheads:
    """Continuous power: identical task flow, small overheads, ARTEMIS
    slightly above Mayfly (Figures 14 and 15)."""

    def test_identical_task_flow(self):
        adev, ares = run_artemis()
        mdev, mres = run_mayfly()
        a_ends = [e.detail["task"] for e in adev.trace.of_kind("task_end")]
        m_ends = [e.detail["task"] for e in mdev.trace.of_kind("task_end")]
        assert a_ends == m_ends

    def test_total_times_nearly_identical(self):
        _, ares = run_artemis()
        _, mres = run_mayfly()
        assert ares.total_time_s == pytest.approx(mres.total_time_s, rel=0.02)

    def test_app_time_dominates(self):
        _, ares = run_artemis()
        assert ares.overhead_fraction < 0.02

    def test_artemis_overhead_slightly_higher(self):
        _, ares = run_artemis()
        _, mres = run_mayfly()
        a_overhead = ares.runtime_overhead_s + ares.monitor_overhead_s
        m_overhead = mres.runtime_overhead_s + mres.monitor_overhead_s
        assert a_overhead > m_overhead
        assert a_overhead < 5 * m_overhead  # still the same magnitude

    def test_overheads_are_milliseconds_scale(self):
        _, ares = run_artemis()
        assert 1e-3 < ares.runtime_overhead_s < 0.5
        assert 1e-3 < ares.monitor_overhead_s < 0.5

    def test_mayfly_has_no_monitor_component(self):
        _, mres = run_mayfly()
        assert mres.monitor_overhead_s == 0.0


class TestFigure16Energy:
    """Energy to complete one run: continuous ≈ short delays; at long
    delays ARTEMIS is bounded (a small multiple of continuous, driven by
    ~3x path-2 energy) while Mayfly's demand is effectively unbounded."""

    def test_continuous_energies_similar(self):
        _, ares = run_artemis()
        _, mres = run_mayfly()
        assert ares.total_energy_j == pytest.approx(mres.total_energy_j, rel=0.05)

    def test_short_delays_close_to_continuous(self):
        _, cont = run_artemis()
        for delay in (60.0, 120.0):
            _, res = run_artemis(delay)
            assert res.total_energy_j < 1.6 * cont.total_energy_j

    def test_long_delay_artemis_bounded(self):
        _, cont = run_artemis()
        _, res = run_artemis(600.0)
        assert res.completed
        ratio = res.total_energy_j / cont.total_energy_j
        assert 1.2 < ratio < 4.0

    def test_long_delay_path2_energy_tripled(self):
        """The paper's 3x claim, read against the failing path: path 2
        is executed three times before the skip."""
        device, res = run_artemis(600.0)
        accel_runs = [e for e in device.trace.of_kind("task_end")
                      if e.detail["task"] == "accel"]
        assert len(accel_runs) == 3

    def test_long_delay_mayfly_unbounded(self):
        _, cont = run_mayfly()
        _, res = run_mayfly(600.0)
        assert not res.completed
        # Energy keeps growing with the allowed budget; by the cap it
        # already dwarfs the continuous figure.
        assert res.total_energy_j > 4 * cont.total_energy_j


class TestBackendParityEndToEnd:
    def test_generated_equals_interpreted_under_failures(self):
        traces = []
        for backend in ("generated", "interpreted"):
            device = make_intermittent_device(420.0)
            runtime = build_artemis(device, monitor_backend=backend)
            device.run(runtime, max_time_s=FOUR_HOURS)
            traces.append([(e.kind, e.detail.get("task"), round(e.t, 6))
                           for e in device.trace])
        assert traces[0] == traces[1]
