"""Public-API surface checks: exports resolve, documentation exists.

Deliverable-level guards: every name in an ``__all__`` must import, and
every public module, class, and function in the package must carry a
docstring — documentation is part of the artifact, and this test stops
it regressing.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.spec",
    "repro.statemachine",
    "repro.taskgraph",
    "repro.energy",
    "repro.nvm",
    "repro.peripherals",
    "repro.sim",
    "repro.clock",
    "repro.immortal",
    "repro.baselines",
    "repro.checkpoint",
    "repro.workloads",
    "repro.memsize",
]


def all_modules():
    out = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        out.append(module)
        for info in pkgutil.iter_modules(module.__path__):
            out.append(importlib.import_module(f"{name}.{info.name}"))
    # De-duplicate while keeping order.
    seen = set()
    unique = []
    for module in out:
        if module.__name__ not in seen:
            seen.add(module.__name__)
            unique.append(module)
    return unique


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists {name!r}"

    def test_top_level_version(self):
        assert repro.__version__

    def test_key_entry_points_importable(self):
        from repro import (  # noqa: F401
            AppBuilder, ArtemisRuntime, Device, EnergyEnvironment,
            load_properties, MayflyRuntime,
        )
        from repro.cli import main  # noqa: F401


class TestDocumentation:
    @pytest.mark.parametrize("module", all_modules(),
                             ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"module {module.__name__} lacks a docstring")

    @pytest.mark.parametrize("module", all_modules(),
                             ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: undocumented public items {undocumented}")


class TestNamingConventions:
    def test_error_types_end_in_error_or_failure(self):
        import repro.errors as errors

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, BaseException):
                assert name.endswith(("Error", "Failure")), name

    def test_property_kinds_match_spec_keywords(self):
        from repro.core import properties as props
        from repro.spec.validator import _BUILDERS

        kinds = {cls.KIND for cls in (
            props.MaxTries, props.MaxDuration, props.MITD, props.Collect,
            props.DpData, props.Period, props.EnergyAtLeast, props.Temporal)}
        assert kinds == set(_BUILDERS)
