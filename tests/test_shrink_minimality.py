"""Property-based 1-minimality of the counterexample shrinker.

The shrinker's contract is that its output is 1-minimal: deleting any
single crash from the shrunk schedule makes the execution conform
again. A pure stub explorer with a randomized monotone failure model
lets hypothesis probe that contract across hundreds of failure shapes
at zero simulation cost; one integration case then re-checks it
against a real scenario under the injected recovery bug.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify import CounterexampleShrinker, broken_commit_ordering, get_scenario
from repro.verify.explorer import Counterexample

_MAX_PAYMENT = 30


class _StubRunner:
    calls = _MAX_PAYMENT

    def representatives(self, start, stop=None, projected=False):
        end = self.calls if stop is None else min(stop, self.calls)
        return list(range(start, end + 1))

    def label_at(self, index):
        return None

    def category_at(self, index):
        return "runtime"


class _SubsetFailureExplorer:
    """Fails exactly when the schedule contains every culprit index —
    the monotone failure model a crash-induced bug follows (extra
    crashes cannot mask missing ones in this model)."""

    name = "stub"

    def __init__(self, culprits):
        self.culprits = frozenset(culprits)
        self.checks = 0

    def check(self, schedule):
        self.checks += 1
        return ["bug"] if self.culprits <= set(schedule) else []

    def execute(self, schedule):
        return SimpleNamespace(schedule=schedule, runner=_StubRunner(),
                               device=SimpleNamespace(trace=[]))


@st.composite
def _failure_cases(draw):
    indices = st.integers(min_value=1, max_value=_MAX_PAYMENT)
    culprits = draw(st.sets(indices, min_size=1, max_size=3))
    padding = draw(st.sets(indices, max_size=4))
    schedule = tuple(sorted(culprits | padding))
    return sorted(culprits), schedule


class TestStubMinimality:
    @settings(max_examples=200, deadline=None)
    @given(_failure_cases())
    def test_every_single_deletion_conforms(self, case):
        culprits, schedule = case
        explorer = _SubsetFailureExplorer(culprits)
        witness = CounterexampleShrinker(explorer, max_runs=500).shrink(
            Counterexample(schedule=schedule, problems=["bug"]))
        assert not witness.exhausted_budget
        # Still a failure...
        assert explorer.check(witness.schedule)
        # ...and 1-minimal: every single-element deletion conforms.
        for i in range(len(witness.schedule)):
            reduced = witness.schedule[:i] + witness.schedule[i + 1:]
            assert not explorer.check(reduced), (
                f"dropping crash {i} of {witness.schedule} still fails — "
                "not 1-minimal")

    @settings(max_examples=50, deadline=None)
    @given(_failure_cases())
    def test_index_minimization_respects_monotone_model(self, case):
        culprits, schedule = case
        explorer = _SubsetFailureExplorer(culprits)
        witness = CounterexampleShrinker(explorer, max_runs=500).shrink(
            Counterexample(schedule=schedule, problems=["bug"]))
        # Under the subset model the unique 1-minimal failing schedule
        # is the culprit set itself.
        assert list(witness.schedule) == culprits


class TestRealScenarioMinimality:
    def test_shrunk_witness_is_1_minimal_under_injected_bug(self):
        scen = get_scenario("ota", "artemis")
        with broken_commit_ordering():
            explorer = scen.explorer()
            report = explorer.explore(bound=2, budget=400, por=True)
            assert not report.ok
            witness = CounterexampleShrinker(explorer, max_runs=120).shrink(
                report.counterexamples[0])
            assert explorer.check(witness.schedule), "witness must fail"
            for i in range(len(witness.schedule)):
                reduced = (witness.schedule[:i]
                           + witness.schedule[i + 1:])
                if reduced:
                    assert not explorer.check(reduced)
