"""Differential proof that the batched core is byte-equivalent to the
scalar core.

Four layers, mirroring how ``repro.sim.batch`` is built:

* **FSM kernel vs interpreter** — hypothesis draws random property
  sets (the same generators as ``test_differential_monitors.py``),
  desynchronizes the batch's lanes with per-lane warmup prefixes, and
  drives a shared seeded event stream through every lane and a
  per-lane reference :class:`MachineInstance` side by side. Verdicts,
  states and variables must agree after every event, on both the numpy
  and the pure-Python backends.
* **SoA NVM image vs journal recovery** — a property test that
  interrupted :class:`CommitJournal` commits recover identically on a
  memory that round-tripped through :class:`SoAImage`, with
  ``attach_access_log`` signatures as the oracle.
* **Fleet path** — whole staged rollouts through
  ``RolloutPlan(lockstep=True)`` must produce byte-identical reports
  (``to_dict()`` covers every DeviceTelemetry row, FleetSummary, and
  wave delta), and per-device traces/final NVM images out of
  :class:`BatchFleetCore` must equal a scalar ``Device.run`` of the
  same device — including lanes perturbed with crash schedules
  (divergence) and lanes whose perturbation was fully absorbed
  (rejoin).
* **Conformance self-check** — the crash-schedule explorer at bound 2
  on a (workload, runtime) scenario executed through the batched
  driver (``run_with_boundaries`` + one-lane kernel replay) reaches
  the same verdict over the same number of schedules as the scalar
  explorer.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import generate_machines
from repro.core.monitor import tap_machine_ops
from repro.errors import StateMachineError
from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V2,
    FleetServer,
    RolloutPlan,
)
from repro.fleet.telemetry import DeviceTelemetry, aggregate
from repro.nvm.accesslog import AccessLog
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory
from repro.sim.batch import (
    HAVE_NUMPY,
    BatchFleetCore,
    BatchMachineSet,
    SoAImage,
    run_with_boundaries,
    weighted_summary,
)
from repro.statemachine.interpreter import MachineInstance
from repro.statemachine.model import (
    BinOp,
    Const,
    EventPattern,
    StateMachine,
    Transition,
    Var,
    Variable,
)
from repro.verify.schedule import CrashScheduleRunner
from repro.verify.workloads import get_scenario
from tests.test_differential_monitors import any_property, make_stream

BACKENDS = ["numpy", "python"] if HAVE_NUMPY else ["python"]

_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _unique_machines(props):
    machines = generate_machines(props)
    names = [m.name for m in machines]
    return machines if len(set(names)) == len(names) else None


def _verdict_keys(verdicts):
    return [(v.machine, v.action, v.path) for v in verdicts]


# ---------------------------------------------------------------------------
# FSM kernel vs reference interpreter
# ---------------------------------------------------------------------------


class TestKernelVsInterpreter:
    N_LANES = 4

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(props=st.lists(any_property(), min_size=1, max_size=4),
           seed=_seeds)
    @settings(max_examples=40, deadline=None)
    def test_lanes_track_reference_instances(self, backend, props, seed):
        """Desynchronized lanes + shared event stream: every lane must
        evolve exactly like a reference interpreter seeded with the
        same store."""
        machines = _unique_machines(props)
        if machines is None:
            return
        batch = BatchMachineSet(machines, n_lanes=self.N_LANES,
                                backend=backend)
        warmup = make_stream(seed, self.N_LANES - 1)
        refs = {m.name: [MachineInstance(m) for _ in range(self.N_LANES)]
                for m in machines}
        # Lane i replays the first i warmup events scalar-side, then its
        # store is loaded into the batch — lanes start in genuinely
        # different states.
        for m in machines:
            for lane in range(self.N_LANES):
                for event in warmup[:lane]:
                    refs[m.name][lane].on_event(event)
                batch.load_lane(m.name, lane, refs[m.name][lane].snapshot())
        for i, event in enumerate(make_stream(seed + 1, 12)):
            for m in machines:
                out = batch.step_machine(m.name, event)
                for lane in range(self.N_LANES):
                    want = refs[m.name][lane].on_event(event)
                    got = out.get(lane, [])
                    assert _verdict_keys(got) == _verdict_keys(want), (
                        f"{m.name} lane {lane} verdicts diverge at "
                        f"event {i}")
                    assert (batch.lane_store(m.name, lane)
                            == refs[m.name][lane].snapshot()), (
                        f"{m.name} lane {lane} store diverges at event {i}")

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(props=st.lists(any_property(), min_size=1, max_size=3),
           seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_dispatch_step_matches_monitor_order(self, backend, props, seed):
        """``step`` consults the shared subscription tables: for each
        event it must step exactly the subscribed machines, in
        declaration order."""
        machines = _unique_machines(props)
        if machines is None:
            return
        batch = BatchMachineSet(machines, n_lanes=2, backend=backend)
        refs = [MachineInstance(m) for m in machines]
        for event in make_stream(seed, 10):
            relevant = batch.dispatch.get(event.task, batch.wildcard_set)
            want = []
            for idx, inst in enumerate(refs):
                if idx in relevant:
                    want.extend(inst.on_event(event))
            out = batch.step(event)
            for lane in (0, 1):
                assert _verdict_keys(out.get(lane, [])) == \
                    _verdict_keys(want)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(props=st.lists(any_property(), min_size=1, max_size=3),
           seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_reset_parity(self, backend, props, seed):
        machines = _unique_machines(props)
        if machines is None:
            return
        batch = BatchMachineSet(machines, n_lanes=3, backend=backend)
        refs = {m.name: MachineInstance(m) for m in machines}
        for event in make_stream(seed, 8):
            for m in machines:
                batch.step_machine(m.name, event)
                refs[m.name].on_event(event)
        for m in machines:
            batch.reset_machine(m.name)
            refs[m.name].reset()
            for lane in range(3):
                assert (batch.lane_store(m.name, lane)
                        == refs[m.name].snapshot())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_division_by_zero_parity(self, backend):
        """A zero divisor on an active lane raises the interpreter's
        exact error; an *inactive* lane's zero divisor must not."""
        machine = StateMachine(
            name="div", states=("s", "t"), initial="s",
            variables=(Variable("d", "int", 0),),
            transitions=(
                Transition("s", "t", EventPattern("anyEvent", None),
                           guard=BinOp("<", BinOp("/", Const(4), Var("d")),
                                       Const(10)),
                           body=()),
            ),
        )
        from repro.core.events import MonitorEvent
        event = MonitorEvent("startTask", "x", 1.0, {})
        ref = MachineInstance(machine)
        with pytest.raises(StateMachineError) as scalar_err:
            ref.on_event(event)

        batch = BatchMachineSet([machine], n_lanes=1, backend=backend)
        with pytest.raises(StateMachineError) as batch_err:
            batch.step_machine("div", event)
        assert str(batch_err.value) == str(scalar_err.value)

        # Lane with nonzero divisor: no raise, same transition.
        ok = BatchMachineSet([machine], n_lanes=1, backend=backend)
        ok.load_lane("div", 0, {"state": "s", "var.d": 2})
        ok.step_machine("div", event)
        want = MachineInstance(machine, {"state": "s", "var.d": 2})
        want.on_event(event)
        assert ok.lane_store("div", 0) == want.snapshot()

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(props=st.lists(any_property(), min_size=1, max_size=3),
           seed=_seeds)
    @settings(max_examples=20, deadline=None)
    def test_amortized_emission_rollup(self, backend, props, seed):
        """The per-batch ``emitted`` counters must equal the per-lane
        verdict counts, whether or not verdicts are materialized."""
        machines = _unique_machines(props)
        if machines is None:
            return
        collecting = BatchMachineSet(machines, n_lanes=3, backend=backend)
        silent = BatchMachineSet(machines, n_lanes=3, backend=backend)
        counted = {}
        for event in make_stream(seed, 10):
            for m in machines:
                out = collecting.step_machine(m.name, event)
                silent.step_machine(m.name, event, collect=False)
                for verdicts in out.values():
                    for v in verdicts:
                        key = (v.machine, v.action, v.path)
                        counted[key] = counted.get(key, 0) + 1
        assert collecting.emitted == counted
        assert silent.emitted == counted


# ---------------------------------------------------------------------------
# SoA NVM image × journal commit/recovery
# ---------------------------------------------------------------------------

_cell_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.tuples(st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=9)),
)


class TestSoAJournalRoundTrip:
    @given(cells=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]), _cell_values,
        min_size=1, max_size=4),
        staged=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]), _cell_values,
            min_size=1, max_size=4),
        phase=st.sampled_from(["pending", "committed", "partially_applied",
                               "corrupt"]),
        seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_recovery_identical_through_image(self, cells, staged, phase,
                                              seed):
        """Interrupt a journal commit, snapshot the NVM as a SoAImage,
        restore it, and recover both memories side by side: same
        recovery outcome, same access-log signatures, same final
        durable state."""
        def build():
            nvm = NonVolatileMemory()
            for name, value in cells.items():
                nvm.alloc(name, initial=value, size_bytes=16)
            journal = CommitJournal(nvm)
            journal.begin()
            for name, value in staged.items():
                if name not in cells:
                    nvm.alloc(name, initial=None, size_bytes=16)
                journal.append(name, value)
            if phase != "pending":
                journal.seal()
            if phase == "partially_applied":
                # Roll one entry forward by hand: the applied index is
                # durable, so recovery must resume after it.
                first_cell, first_value = journal.entries()[0]
                nvm.cell(first_cell).set(first_value)
                journal._applied.set(1)
            if phase == "corrupt":
                tampered = journal.entries() + (("a", "tampered"),)
                journal._entries.set(tampered)
            return nvm, journal

        scalar_nvm, _ = build()
        imaged_src, _ = build()
        image = SoAImage.from_nvm(imaged_src)
        restored = image.restore()
        assert restored.state_fingerprint() == scalar_nvm.state_fingerprint()

        logs = []
        outcomes = []
        for nvm in (scalar_nvm, restored):
            log = AccessLog()
            nvm.attach_access_log(log)
            journal = CommitJournal(nvm)
            outcomes.append(journal.recover())
            nvm.detach_access_log()
            logs.append(log)
        assert outcomes[0] == outcomes[1]
        assert logs[0].describe() == logs[1].describe()
        assert (scalar_nvm.state_fingerprint()
                == restored.state_fingerprint())
        assert dict(scalar_nvm.raw_items()) == dict(restored.raw_items())

    @given(cells=st.dictionaries(st.sampled_from(["x", "y", "z"]),
                                 _cell_values, min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_image_preserves_corruption(self, cells):
        """A silently corrupted cell must stay *detectably* corrupt
        through the image round trip (checksums are carried, not
        recomputed)."""
        nvm = NonVolatileMemory()
        for name, value in cells.items():
            nvm.alloc(name, initial=value, size_bytes=16)
        victim = sorted(cells)[0]
        nvm.corrupt(victim)
        restored = SoAImage.from_nvm(nvm).restore()
        assert nvm.verify(victim) == restored.verify(victim)
        assert not restored.verify(victim) or nvm.verify(victim)
        assert dict(nvm.raw_items()) == dict(restored.raw_items())


# ---------------------------------------------------------------------------
# Fleet path: scalar vs lockstep rollouts
# ---------------------------------------------------------------------------


def _plan(**kw):
    base = dict(waves=(0.5, 1.0), runs=2, max_time_s=4 * 3600.0,
                max_reboots=200)
    base.update(kw)
    return RolloutPlan(**base)


@pytest.fixture(scope="module")
def server():
    return FleetServer()


class TestFleetDifferential:
    def test_per_device_rollout_byte_identical(self, server):
        plan = _plan()
        scalar = server.rollout(FLEET_SPEC_V2, 8, plan=plan)
        lock = server.rollout(FLEET_SPEC_V2, 8,
                              plan=replace(plan, lockstep=True))
        assert scalar.to_dict() == lock.to_dict()

    def test_per_cohort_rollout_byte_identical(self, server):
        plan = _plan(seed_mode="per_cohort")
        scalar = server.rollout(FLEET_SPEC_V2, 16, plan=plan)
        lock = server.rollout(FLEET_SPEC_V2, 16,
                              plan=replace(plan, lockstep=True))
        assert scalar.to_dict() == lock.to_dict()

    def test_regression_halt_identical(self, server):
        plan = _plan(seed_mode="per_cohort")
        scalar = server.rollout(FLEET_SPEC_REGRESSING, 12, plan=plan)
        lock = server.rollout(FLEET_SPEC_REGRESSING, 12,
                              plan=replace(plan, lockstep=True))
        assert scalar.halted and lock.halted
        assert scalar.to_dict() == lock.to_dict()

    def test_traces_and_final_nvm_byte_identical(self, server):
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        batch = BatchFleetCore(server, wire, 2, plan).run(ids)
        for device_id in ids:
            device, runtime = server.build_device(device_id, wire, 2, plan)
            device.run(runtime, runs=plan.runs, max_time_s=plan.max_time_s,
                       max_reboots=plan.max_reboots)
            assert batch.trace_events_for(device_id) == device.trace.events
            image = batch.nvm_image_for(device_id)
            assert image.fingerprint() == device.nvm.state_fingerprint()
            assert (dict(image.restore().raw_items())
                    == dict(device.nvm.raw_items()))

    def test_weighted_summary_matches_exact_aggregate(self, server):
        """The amortized rollup equals the expanded aggregate up to
        float-summation order (exact here: cohort rows are identical,
        so weighted and repeated addition agree)."""
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        batch = BatchFleetCore(server, wire, 2, plan).run(list(range(12)))
        exact = batch.summary()
        rolled = batch.weighted_summary()
        assert rolled.devices == exact.devices
        assert rolled.outcomes == exact.outcomes
        assert rolled.total_violations == exact.total_violations
        assert rolled.total_reboots == exact.total_reboots
        assert rolled.mean_rate_before == pytest.approx(
            exact.mean_rate_before, rel=1e-12)
        assert rolled.total_energy_mj == pytest.approx(
            exact.total_energy_mj, rel=1e-12)

    def test_soa_telemetry_columns_match_rows(self, server):
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        batch = BatchFleetCore(server, wire, 2, plan).run(ids)
        reports = batch.expand()
        for lane, report in enumerate(reports):
            assert batch.arrays.get("completed", lane) == report.completed
            assert batch.arrays.get("reboots", lane) == report.reboots
            assert batch.arrays.get("total_time_s", lane) == pytest.approx(
                report.total_time_s)
            assert (batch.arrays.get("violations_after", lane)
                    == report.violations_after)


class TestDivergenceAndRejoin:
    def test_perturbed_lane_matches_scalar_run(self, server):
        """A lane with an injected crash schedule must produce the
        exact telemetry/trace/NVM of a scalar run under the same
        schedule — the divergence path is the scalar path."""
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        schedule = (5,)
        batch = BatchFleetCore(server, wire, 2, plan).run(
            ids, perturb={1: schedule})

        device, runtime = server.build_device(1, wire, 2, plan)
        CrashScheduleRunner(schedule, record=False).bind(device)
        result = device.run(runtime, runs=plan.runs,
                            max_time_s=plan.max_time_s,
                            max_reboots=plan.max_reboots)
        want = DeviceTelemetry.from_device(1, device, result, runtime)

        lane = batch.lanes[1]
        assert DeviceTelemetry.from_row(dict(lane.row, device_id=1)) == want
        assert lane.trace_events == device.trace.events
        assert (lane.nvm_image.fingerprint()
                == device.nvm.state_fingerprint())
        # The injected crash costs time the representative never spent,
        # and the persistent clock pins time into the NVM fingerprint —
        # so this lane cannot have rejoined.
        assert lane.rejoined is False
        # Unperturbed cohort-mates are untouched by the divergence.
        expanded = batch.expand()
        assert expanded[1] == want
        scalar5 = server.build_device(5, wire, 2, plan)
        r5 = scalar5[0].run(scalar5[1], runs=plan.runs,
                            max_time_s=plan.max_time_s,
                            max_reboots=plan.max_reboots)
        assert expanded[5] == DeviceTelemetry.from_device(
            5, scalar5[0], r5, scalar5[1])

    def test_absorbed_perturbation_rejoins_at_first_boundary(self, server):
        """A perturbation the device fully absorbs (an attached
        scheduler that never fires) re-converges with the ledger at the
        first run boundary; the composed suffix must be byte-identical
        to running the lane scalar to completion."""
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        batch = BatchFleetCore(server, wire, 2, plan).run(
            ids, perturb={2: ()})
        lane = batch.lanes[2]
        assert lane.rejoined is True
        assert lane.rejoin_boundary == 1

        device, runtime = server.build_device(2, wire, 2, plan)
        CrashScheduleRunner((), record=False).bind(device)
        result = device.run(runtime, runs=plan.runs,
                            max_time_s=plan.max_time_s,
                            max_reboots=plan.max_reboots)
        want = DeviceTelemetry.from_device(2, device, result, runtime)
        assert DeviceTelemetry.from_row(dict(lane.row, device_id=2)) == want
        assert lane.trace_events == device.trace.events
        assert (lane.nvm_image.fingerprint()
                == device.nvm.state_fingerprint())

    def test_summary_with_divergent_lanes_matches_scalar(self, server):
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        batch = BatchFleetCore(server, wire, 2, plan).run(
            ids, perturb={1: (5,), 2: ()})
        reports = []
        for device_id in ids:
            device, runtime = server.build_device(device_id, wire, 2, plan)
            if device_id == 1:
                CrashScheduleRunner((5,), record=False).bind(device)
            elif device_id == 2:
                CrashScheduleRunner((), record=False).bind(device)
            result = device.run(runtime, runs=plan.runs,
                                max_time_s=plan.max_time_s,
                                max_reboots=plan.max_reboots)
            reports.append(DeviceTelemetry.from_device(
                device_id, device, result, runtime))
        assert batch.summary() == aggregate(reports)
        assert batch.expand() == reports


# ---------------------------------------------------------------------------
# Conformance self-check at bound 2 through the batched driver
# ---------------------------------------------------------------------------


class TestConformanceBatched:
    def test_bound2_same_verdict_and_schedule_count(self):
        scenario = get_scenario("health", "artemis")
        scalar = scenario.explorer().explore(bound=2, budget=60,
                                             stop_on_first=False)

        replayed = {"machines": 0, "fallbacks": 0}

        def batched_build():
            device, runtime = scenario.build()
            scalar_run = device.run

            def run(rt, runs=1, max_time_s=None, max_reboots=None):
                with tap_machine_ops() as ops:
                    result = run_with_boundaries(
                        device, rt, runs=runs, max_time_s=max_time_s,
                        max_reboots=max_reboots)
                monitor = BatchFleetCore._leaf_monitor(rt)
                if monitor is not None and monitor.machines:
                    fsm = BatchMachineSet(monitor.machines, n_lanes=1)
                    for op, name, ev in ops:
                        if name not in fsm._by_name:
                            continue
                        if op == "reset":
                            fsm.reset_machine(name)
                        else:
                            fsm.step_machine(name, ev, collect=False)
                    for machine, inst in zip(monitor.machines,
                                             monitor.instances):
                        replayed["machines"] += 1
                        want = {"state": inst.state}
                        for var in machine.variables:
                            want[f"var.{var.name}"] = inst.get(var.name)
                        if fsm.lane_store(machine.name, 0) != want:
                            replayed["fallbacks"] += 1
                            fsm.load_lane(machine.name, 0, want)
                return result

            assert scalar_run is not None
            device.run = run
            return device, runtime

        from repro.verify.explorer import CrashScheduleExplorer
        batched = CrashScheduleExplorer(
            build=batched_build,
            policy=scenario.policy,
            extract_extra=scenario.extract_extra,
            run_kwargs=scenario.run_kwargs,
            time_sensitive=scenario.time_sensitive,
            name=scenario.name + "-batched",
        ).explore(bound=2, budget=60, stop_on_first=False)

        assert batched.ok == scalar.ok
        assert batched.schedules_checked == scalar.schedules_checked
        assert batched.runs_executed == scalar.runs_executed
        assert (len(batched.counterexamples)
                == len(scalar.counterexamples))
        assert replayed["machines"] > 0


# ---------------------------------------------------------------------------
# Batch-aware result-cache keys
# ---------------------------------------------------------------------------


class TestBatchCacheKeys:
    @staticmethod
    def _sweep(layout):
        from repro.sim.experiments import Sweep
        return Sweep(
            factors={"device_id": [0]},
            build=lambda p: (None, None),
            metrics={"completed": lambda device, result: 0},
            batch_layout=layout,
        )

    def test_layout_changes_sweep_fingerprint(self):
        from repro.sim.pool import sweep_fingerprint
        scalar = sweep_fingerprint(self._sweep(None))
        soa_a = sweep_fingerprint(self._sweep("soa/v1;backend=numpy;x"))
        soa_b = sweep_fingerprint(self._sweep("soa/v1;backend=python;x"))
        assert len({scalar, soa_a, soa_b}) == 3
        assert soa_a == sweep_fingerprint(
            self._sweep("soa/v1;backend=numpy;x"))

    def test_layout_change_invalidates_cached_rows(self, tmp_path):
        """A row produced under one SoA layout must never be served for
        another layout (or for the scalar path): dtype/backend changes
        change how rows were materialized."""
        from repro.sim.pool import ResultCache, sweep_fingerprint
        cache = ResultCache(tmp_path / "repro_cache")
        point = {"device_id": 7}
        row = {"device_id": 7, "completed": 1}
        fp_numpy = sweep_fingerprint(self._sweep("soa/v1;backend=numpy;x"))
        cache.put(cache.key_for(fp_numpy, point), row)
        assert cache.get(cache.key_for(fp_numpy, point)) == row
        for other in (None, "soa/v1;backend=python;x",
                      "soa/v2;backend=numpy;x"):
            fp = sweep_fingerprint(self._sweep(other))
            assert cache.get(cache.key_for(fp, point)) is None, other

    def test_batch_core_cache_roundtrip(self, server, tmp_path):
        """A warm cache replays cohort representatives byte-identically;
        perturbed cohorts always bypass it."""
        plan = _plan(seed_mode="per_cohort")
        wire = server.encode_update(FLEET_SPEC_V2, 2,
                                    use_delta=plan.use_delta)
        ids = list(range(8))
        cache_dir = tmp_path / "repro_cache"
        cold = BatchFleetCore(server, wire, 2, plan).run(
            ids, cache=cache_dir)
        warm = BatchFleetCore(server, wire, 2, plan).run(
            ids, cache=cache_dir)
        assert not any(c.from_cache for c in cold.cohorts)
        assert all(c.from_cache for c in warm.cohorts)
        assert warm.rows() == cold.rows()
        assert warm.expand() == cold.expand()
        # A perturbed cohort can't be served from (or poison) the cache.
        perturbed = BatchFleetCore(server, wire, 2, plan).run(
            ids, cache=cache_dir, perturb={1: (5,)})
        victim_key = BatchFleetCore(server, wire, 2, plan).cohort_key(1)
        for cohort in perturbed.cohorts:
            assert cohort.from_cache == (cohort.key != victim_key)
        assert perturbed.expand()[0] == cold.expand()[0]


# ---------------------------------------------------------------------------
# Compact rollup helper
# ---------------------------------------------------------------------------


def test_weighted_summary_counts_scale_linearly():
    row = {name: 0 for name in DeviceTelemetry.__dataclass_fields__}
    row.update(device_id=0, completed=True, runs_completed=2, reboots=3,
               total_time_s=10.0, total_energy_mj=5.0, radio_energy_mj=1.0,
               violations_before=2, violations_after=4, runs_before=1,
               runs_after=1, degradation_shed=1, degradation_restored=1,
               chunks_lost=2, rollbacks=0, update_outcome="installed",
               active_version=2, predictive_sheds=0, shed_lead_s=0.0)
    single = weighted_summary([(row, 1)])
    many = weighted_summary([(row, 50)])
    assert many.devices == 50
    assert many.total_violations == 50 * single.total_violations
    assert many.total_reboots == 50 * single.total_reboots
    assert many.mean_rate_before == pytest.approx(single.mean_rate_before)
    assert many.regression_delta == pytest.approx(single.regression_delta)
