"""Tests for the benchmark-regression harness (benchmarks/regression.py).

The harness is a script, not a package module, so it is loaded by file
path. Measurements are injected through ``main``'s ``collect`` hook —
these tests never run the (slow, machine-dependent) real suite.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_REGRESSION_PY = (Path(__file__).resolve().parent.parent
                  / "benchmarks" / "regression.py")


@pytest.fixture(scope="module")
def regression():
    spec = importlib.util.spec_from_file_location("bench_regression",
                                                  _REGRESSION_PY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GOOD = {
    "engine_generated_events_per_s": 50_000.0,
    "engine_interpreted_events_per_s": 40_000.0,
    "dispatch_us_per_event": 20.0,
    "cache_speedup": 25.0,
    "cache_hit_rate": 1.0,
    "streamed_devices_per_s": 20.0,
    "parallel_speedup": 2.0,
    "parallel_vs_serial": 0.9,
    "sweep_serial_s": 1.0,
    "sweep_fork_s": 1.2,
    "sweep_parallel_s": 0.5,
    "sweep_cache_warm_s": 0.04,
}


class TestCompare:
    def test_identical_metrics_pass(self, regression):
        ok, _ = regression.compare(GOOD, dict(GOOD), tolerance=0.15)
        assert ok

    def test_injected_20pct_regression_fails(self, regression):
        current = dict(GOOD)
        current["engine_generated_events_per_s"] *= 0.80  # 20% slower
        ok, lines = regression.compare(GOOD, current, tolerance=0.15)
        assert not ok
        failing = [text for status, text in lines if status == "FAIL"]
        assert any("engine_generated_events_per_s" in t for t in failing)

    def test_lower_is_better_direction(self, regression):
        current = dict(GOOD)
        current["dispatch_us_per_event"] *= 1.25  # 25% more per-event cost
        ok, _ = regression.compare(GOOD, current, tolerance=0.15)
        assert not ok

    def test_within_tolerance_passes(self, regression):
        current = dict(GOOD)
        current["engine_generated_events_per_s"] *= 0.90  # 10% < 15%
        ok, _ = regression.compare(GOOD, current, tolerance=0.15)
        assert ok

    def test_improvement_never_fails(self, regression):
        current = {k: v * 10 for k, v in GOOD.items()}
        current["dispatch_us_per_event"] = GOOD["dispatch_us_per_event"] / 10
        ok, _ = regression.compare(GOOD, current, tolerance=0.15)
        assert ok

    def test_informational_metrics_cannot_fail(self, regression):
        current = dict(GOOD)
        current["parallel_vs_serial"] = 0.01   # terrible, but info-only
        current["sweep_serial_s"] = 100.0
        ok, lines = regression.compare(GOOD, current, tolerance=0.15)
        assert ok
        assert any(status == "info" and "parallel_vs_serial" in text
                   for status, text in lines)

    def test_parallel_speedup_is_enforced(self, regression):
        """The persistent-over-fork pool ratio is a gated metric: it is
        core-count independent, so losing it means the pool regressed."""
        current = dict(GOOD)
        current["parallel_speedup"] = 1.0  # fork tax came back
        ok, lines = regression.compare(GOOD, current, tolerance=0.15)
        assert not ok
        assert any(status == "FAIL" and "parallel_speedup" in text
                   for status, text in lines)


class TestMainAndBaselines:
    def test_write_then_compare_roundtrip(self, regression, tmp_path, capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        regression.write_baseline(dict(GOOD), path=baseline)
        assert regression.load_baseline(baseline) == GOOD
        code = regression.main(["--baseline", str(baseline)],
                               collect=lambda: dict(GOOD))
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_main_exits_nonzero_on_regression(self, regression, tmp_path,
                                              capsys):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        regression.write_baseline(dict(GOOD), path=baseline)
        regressed = dict(GOOD)
        regressed["engine_generated_events_per_s"] *= 0.75
        code = regression.main(["--baseline", str(baseline)],
                               collect=lambda: regressed)
        assert code == 1
        assert "REGRESSION DETECTED" in capsys.readouterr().out

    def test_main_exits_2_without_baseline(self, regression, tmp_path,
                                           monkeypatch):
        monkeypatch.setattr(regression, "BENCH_DIR", tmp_path)
        code = regression.main([], collect=lambda: dict(GOOD))
        assert code == 2

    def test_latest_baseline_picks_newest_date(self, regression, tmp_path,
                                               monkeypatch):
        monkeypatch.setattr(regression, "BENCH_DIR", tmp_path)
        for name in ("BENCH_2026-01-01.json", "BENCH_2026-03-05.json",
                     "BENCH_2026-02-28.json"):
            (tmp_path / name).write_text(json.dumps({"metrics": GOOD}))
        assert regression.latest_baseline().name == "BENCH_2026-03-05.json"

    def test_wider_tolerance_accepts_the_same_delta(self, regression,
                                                    tmp_path):
        baseline = tmp_path / "BENCH_2026-01-01.json"
        regression.write_baseline(dict(GOOD), path=baseline)
        regressed = dict(GOOD)
        regressed["engine_generated_events_per_s"] *= 0.80
        assert regression.main(["--baseline", str(baseline)],
                               collect=lambda: regressed) == 1
        assert regression.main(["--baseline", str(baseline),
                                "--tolerance", "0.30"],
                               collect=lambda: regressed) == 0

    def test_committed_baseline_exists_and_parses(self, regression):
        """The repo carries at least one dated baseline for CI to
        compare against."""
        newest = regression.latest_baseline()
        assert newest is not None, "no benchmarks/BENCH_*.json committed"
        metrics = regression.load_baseline(newest)
        for name, direction in regression.METRIC_DIRECTIONS.items():
            assert name in metrics, f"baseline missing {name}"
