"""Tests for state-machine static analysis, including the guarantee
that every generated property template is lint-clean."""

import pytest

from repro.core.actions import ActionType
from repro.core.generator import generate_machines
from repro.spec.validator import load_properties
from repro.statemachine.analysis import (
    dead_transitions,
    lint,
    nondeterministic_pairs,
    unreachable_states,
    variable_usage,
)
from repro.statemachine.model import (
    ANY_EVENT,
    Assign,
    BinOp,
    Const,
    EventPattern,
    StateMachine,
    Transition,
    Var,
    Variable,
)
from repro.workloads.health import BENCHMARK_SPEC, FIGURE5_SPEC


class TestUnreachable:
    def test_detects_orphan_state(self):
        machine = StateMachine(
            "m", ["A", "B", "Orphan"], "A",
            transitions=[Transition("A", "B", EventPattern(ANY_EVENT)),
                         Transition("Orphan", "A", EventPattern(ANY_EVENT))],
        )
        assert unreachable_states(machine) == ["Orphan"]

    def test_all_reachable(self):
        machine = StateMachine(
            "m", ["A", "B"], "A",
            transitions=[Transition("A", "B", EventPattern(ANY_EVENT)),
                         Transition("B", "A", EventPattern(ANY_EVENT))],
        )
        assert unreachable_states(machine) == []


class TestDeadTransitions:
    def test_constant_false_guard(self):
        machine = StateMachine(
            "m", ["A"], "A",
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    guard=Const(False))],
        )
        assert len(dead_transitions(machine)) == 1

    def test_folded_arithmetic_false(self):
        machine = StateMachine(
            "m", ["A"], "A",
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    guard=BinOp(">", Const(1), Const(2)))],
        )
        assert len(dead_transitions(machine)) == 1

    def test_variable_guard_not_dead(self):
        machine = StateMachine(
            "m", ["A"], "A",
            variables=[Variable("x", "int", 0)],
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    guard=BinOp(">", Var("x"), Const(2)))],
        )
        assert dead_transitions(machine) == []


class TestNondeterminism:
    def test_overlapping_guards_found(self):
        machine = StateMachine(
            "m", ["A"], "A",
            variables=[Variable("x", "int", 0)],
            transitions=[
                Transition("A", "A", EventPattern("startTask", "t"),
                           guard=BinOp(">", Var("x"), Const(10))),
                Transition("A", "A", EventPattern("startTask", "t"),
                           guard=BinOp(">", Var("x"), Const(5))),
            ],
        )
        assert len(nondeterministic_pairs(machine)) == 1

    def test_exclusive_guards_clean(self):
        machine = StateMachine(
            "m", ["A"], "A",
            variables=[Variable("x", "int", 0)],
            transitions=[
                Transition("A", "A", EventPattern("startTask", "t"),
                           guard=BinOp(">", Var("x"), Const(5))),
                Transition("A", "A", EventPattern("startTask", "t"),
                           guard=BinOp("<=", Var("x"), Const(5))),
            ],
        )
        assert nondeterministic_pairs(machine) == []

    def test_disjoint_triggers_never_overlap(self):
        machine = StateMachine(
            "m", ["A"], "A",
            transitions=[
                Transition("A", "A", EventPattern("startTask", "t1")),
                Transition("A", "A", EventPattern("startTask", "t2")),
            ],
        )
        assert nondeterministic_pairs(machine) == []

    def test_anyevent_overlaps_specific(self):
        machine = StateMachine(
            "m", ["A"], "A",
            transitions=[
                Transition("A", "A", EventPattern(ANY_EVENT)),
                Transition("A", "A", EventPattern("startTask", "t")),
            ],
        )
        assert len(nondeterministic_pairs(machine)) == 1


class TestVariableUsage:
    def test_write_only_variable(self):
        machine = StateMachine(
            "m", ["A"], "A",
            variables=[Variable("ghost", "int", 0)],
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    body=(Assign("ghost", Const(1)),))],
        )
        usage = variable_usage(machine)
        assert usage.written_never_read == ["ghost"]

    def test_read_only_variable(self):
        machine = StateMachine(
            "m", ["A"], "A",
            variables=[Variable("x", "int", 0)],
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    guard=BinOp(">", Var("x"), Const(0)))],
        )
        usage = variable_usage(machine)
        assert usage.read_never_written == ["x"]


class TestGeneratedTemplatesAreClean:
    """Every machine the generator produces for the paper's benchmark
    specs must pass all analyses — the guards of Figure 7 are supposed
    to be mutually exclusive, all states reachable, all variables live.
    """

    @pytest.mark.parametrize("source", [BENCHMARK_SPEC, FIGURE5_SPEC],
                             ids=["benchmark", "figure5"])
    def test_lint_clean(self, source, health_app):
        props = load_properties(source, health_app)
        for machine in generate_machines(props):
            report = lint(machine)
            assert report.clean, str(report)

    def test_report_renders(self):
        machine = StateMachine(
            "m", ["A", "B"], "A",
            transitions=[Transition("A", "A", EventPattern(ANY_EVENT),
                                    guard=Const(False))],
        )
        report = lint(machine)
        assert not report.clean
        text = str(report)
        assert "unreachable state 'B'" in text
        assert "dead transition" in text
