"""Deterministic-seed soak: streamed rollouts under injected chaos
(worker crashes, delayed out-of-order telemetry) must reproduce the
batch path's reports and verdicts byte-for-byte.

Fleet size scales with the ``SOAK_DEVICES`` env var (default 32 keeps
tier-1 fast; CI runs 100 blocking and 500 non-blocking streamed-scale).
"""

import multiprocessing
import os

import pytest

from repro.fleet.control import ChaosWaveTask, ControlPlane
from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V2,
    FleetServer,
    RolloutPlan,
)

SOAK_DEVICES = int(os.environ.get("SOAK_DEVICES", "32"))
SOAK_JOBS = int(os.environ.get("SOAK_JOBS", "4"))

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-crash injection needs the fork start method")


def chaos_factory(chaos_dir, crash_devices, delay_devices):
    """Task factory injecting one-shot worker crashes and held-back
    (late, out-of-order) telemetry for the nominated devices."""

    def make(base_spec, base_version, wire, version, plan):
        return ChaosWaveTask(
            base_spec, base_version, wire, version, plan,
            chaos_dir=chaos_dir,
            crash_devices=crash_devices,
            delay_devices=delay_devices,
        )

    return make


def crash_set(n_devices):
    # Roughly every 37th device takes its worker down mid-wave.
    return tuple(range(1, n_devices, 37))


def delay_map(n_devices):
    # Roughly every 11th device reports late (seeded, deterministic).
    return {i: 5.0 + (i % 3) for i in range(0, n_devices, 11)}


@pytest.fixture(scope="module")
def plan():
    return RolloutPlan(runs=2)


@pytest.fixture(scope="module")
def batch_reference(plan):
    """The chaos-free inline rollouts every soak variant must match."""
    server = FleetServer()
    return {
        "benign": server.rollout(FLEET_SPEC_V2, SOAK_DEVICES, plan=plan,
                                 jobs=1),
        "regressing": server.rollout(FLEET_SPEC_REGRESSING, SOAK_DEVICES,
                                     plan=plan, jobs=1),
    }


def ledger_decisions(report):
    out = []
    for index, wave in enumerate(report.waves):
        if wave.halted:
            out.append("halt")
        elif index + 1 == len(report.waves) and not report.halted:
            out.append("complete")
        else:
            out.append("promote")
    return out


@fork_only
class TestStreamedSoakUnderChaos:
    def test_benign_rollout_converges_despite_crashes_and_delays(
            self, plan, batch_reference, tmp_path):
        server = FleetServer()
        plane = ControlPlane(
            server, plan=plan, jobs=SOAK_JOBS,
            task_factory=chaos_factory(str(tmp_path),
                                       crash_set(SOAK_DEVICES),
                                       delay_map(SOAK_DEVICES)))
        streamed = plane.run_rollout(FLEET_SPEC_V2, SOAK_DEVICES)
        reference = batch_reference["benign"]
        assert streamed.to_dict() == reference.to_dict()
        assert [e.decision for e in plane.ledger] == \
            ledger_decisions(reference)
        # Chaos actually happened: every nominated device crashed a
        # worker once per arm in at least the first wave it appeared.
        markers = list(tmp_path.iterdir())
        assert markers, "crash injection never fired"
        assert plane.ledger[-1].queue["dropped"] == 0  # block = lossless

    def test_regressing_rollout_halts_identically(self, plan,
                                                  batch_reference,
                                                  tmp_path):
        server = FleetServer()
        plane = ControlPlane(
            server, plan=plan, jobs=SOAK_JOBS,
            task_factory=chaos_factory(str(tmp_path),
                                       crash_set(SOAK_DEVICES),
                                       delay_map(SOAK_DEVICES)))
        streamed = plane.run_rollout(FLEET_SPEC_REGRESSING, SOAK_DEVICES)
        reference = batch_reference["regressing"]
        assert streamed.to_dict() == reference.to_dict()
        assert streamed.halted and streamed.halted_wave == \
            reference.halted_wave
        assert [e.decision for e in plane.ledger] == \
            ledger_decisions(reference)
        assert plane.ledger[-1].rollback_devices == sum(
            1 for t in reference.waves[-1].telemetry if t.installed)


class TestInlineChaosDeterminism:
    def test_delayed_telemetry_arrives_late_and_out_of_order(
            self, plan, batch_reference, tmp_path):
        """Inline (jobs=1) chaos run: held-back reports are ingested
        after every punctual one, yet the report is still identical."""
        events = []
        server = FleetServer()
        delays = delay_map(SOAK_DEVICES)
        plane = ControlPlane(
            server, plan=plan, jobs=1, on_event=events.append,
            task_factory=chaos_factory(str(tmp_path), (), delays))
        streamed = plane.run_rollout(FLEET_SPEC_V2, SOAK_DEVICES)
        assert streamed.to_dict() == batch_reference["benign"].to_dict()
        # Per wave, every delayed device's telemetry event must arrive
        # after all punctual devices' events (out of id order).
        wave = None
        order = {}
        for event in events:
            if event["event"] == "wave_start":
                wave = event["wave"]
            elif event["event"] == "telemetry":
                order.setdefault(wave, []).append(event["device_id"])
        saw_delayed = 0
        for arrived in order.values():
            punctual = [d for d in arrived if d not in delays]
            late = [d for d in arrived if d in delays]
            if not late:
                continue
            saw_delayed += len(late)
            last_punctual = max(arrived.index(d) for d in punctual)
            assert all(arrived.index(d) > last_punctual for d in late)
        assert saw_delayed == sum(
            1 for wave_report in streamed.waves
            for t in wave_report.telemetry if t.device_id in delays)

    def test_inline_crash_injection_is_retried(self, plan, batch_reference,
                                               tmp_path):
        server = FleetServer()
        plane = ControlPlane(
            server, plan=plan, jobs=1,
            task_factory=chaos_factory(str(tmp_path),
                                       crash_set(SOAK_DEVICES), {}))
        streamed = plane.run_rollout(FLEET_SPEC_V2, SOAK_DEVICES)
        assert streamed.to_dict() == batch_reference["benign"].to_dict()
        assert list(tmp_path.iterdir()), "crash injection never fired"
