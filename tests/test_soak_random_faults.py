"""Randomized soak testing: runtime invariants under arbitrary faults.

Property-based complement to the exhaustive crash sweep: hypothesis
draws fault seeds and probabilities, and for every draw the full health
benchmark must terminate with consistent externally visible state.

``make soak`` runs this file across a seed matrix: the ``SOAK_SEED``
environment variable offsets every drawn seed into a disjoint range so
each matrix entry soaks a different slice of the fault space.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retry import RetryPolicy
from repro.core.runtime import ArtemisRuntime
from repro.peripherals import BurstDropout, PeripheralSet
from repro.sim.faults import FailRandomly
from repro.spec.validator import load_properties
from repro.taskgraph.context import channel_cell_name
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_health_app,
    health_power_model,
)

#: Seed-matrix offset for `make soak`; 0 in the default tier-1 run.
SOAK_SEED = int(os.environ.get("SOAK_SEED", "0"))


def run_with_faults(p, seed, runs=1):
    device = FailRandomly(p=p, seed=seed + SOAK_SEED * 100_000)
    app = build_health_app()
    props = load_properties(BENCHMARK_SPEC, app)
    runtime = ArtemisRuntime(app, props, device, health_power_model())
    result = device.run(runtime, runs=runs, max_time_s=3600)
    return device, runtime, result


def run_with_sensor_faults(p, seed, dropout, runs=1):
    """Power failures *and* a flaky PPG sensor, retried with backoff."""
    full_seed = seed + SOAK_SEED * 100_000
    device = FailRandomly(p=p, seed=full_seed)
    app = build_health_app()
    peripherals = PeripheralSet(app.sensors)
    peripherals.attach("ppg", BurstDropout(rate=dropout, seed=full_seed))
    props = load_properties(BENCHMARK_SPEC, app)
    runtime = ArtemisRuntime(
        app, props, device, health_power_model(),
        peripherals=peripherals,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1e-3),
    )
    result = device.run(runtime, runs=runs, max_time_s=3600)
    return device, runtime, result


class TestRandomFaultSoak:
    @given(seed=st.integers(0, 10_000),
           p=st.floats(0.0, 0.15, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_always_terminates_with_consistent_output(self, seed, p):
        device, runtime, result = run_with_faults(p, seed)
        assert result.completed
        # The monitor left no dangling continuation.
        assert not runtime.monitor.in_progress
        # Whatever happened, each completed path transmitted once, and
        # the temperature path either delivered its 10-sample average
        # or was never reached — but never a partial average.
        sent_cell = channel_cell_name("sent")
        sent = (device.nvm.cell(sent_cell).get()
                if sent_cell in device.nvm else []) or []
        assert 1 <= len(sent) <= 3
        temps_cell = channel_cell_name("temps")
        if temps_cell in device.nvm:
            temps = device.nvm.cell(temps_cell).get() or []
            avg_cell = channel_cell_name("avgTemp")
            if avg_cell in device.nvm and device.nvm.cell(avg_cell).get():
                assert len(temps) == 10

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_multi_run_progress_under_faults(self, seed):
        device, runtime, result = run_with_faults(0.08, seed, runs=3)
        assert result.completed
        assert result.runs_completed == 3
        complete_marks = device.trace.count("run_complete")
        assert complete_marks == 3

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_trace_is_well_formed(self, seed):
        """Structural trace invariants: starts and ends pair up per
        task; boots follow failures; timestamps are monotone."""
        device, _, result = run_with_faults(0.12, seed)
        assert result.completed
        last_t = 0.0
        open_task = None
        for event in device.trace:
            assert event.t >= last_t - 1e-9
            last_t = max(last_t, event.t)
            if event.kind == "task_start":
                open_task = event.detail["task"]
            elif event.kind == "task_end":
                assert event.detail["task"] == open_task
        failures = device.trace.count("power_failure")
        boots = device.trace.count("boot")
        assert boots >= failures  # every failure answered by a boot


class TestSensorFaultSoak:
    """Power failures and sensor faults combined, with the retry layer
    and livelock watchdog active."""

    @given(seed=st.integers(0, 10_000),
           p=st.floats(0.0, 0.1, allow_nan=False),
           dropout=st.floats(0.0, 0.3, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_terminates_and_counters_match_trace(self, seed, p, dropout):
        device, runtime, result = run_with_sensor_faults(p, seed, dropout)
        assert result.completed
        assert not runtime.monitor.in_progress
        assert result.sensor_faults == device.trace.count("sensor_fault")
        assert result.task_retries == device.trace.count("task_retry")
        assert result.watchdog_trips == device.trace.count("watchdog_trip")
        # Retry bookkeeping never leaks: after a completed run every
        # per-task attempt counter has been cleared or escalated.
        attempts = device.nvm.cell("rt.retry.attempts").get()
        assert attempts == {}

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_multi_run_progress_under_combined_faults(self, seed):
        device, _, result = run_with_sensor_faults(0.05, seed, 0.2, runs=3)
        assert result.completed
        assert result.runs_completed == 3
        assert device.trace.count("run_complete") == 3
