"""Tests for the §7 deployment alternatives: inlined and remote
monitors."""

import pytest

from repro.core.deployments import (
    InlinedArtemisRuntime,
    RadioLink,
    RemoteMonitorRuntime,
)
from repro.core.runtime import ArtemisRuntime
from repro.spec.validator import load_properties
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_health_app,
    health_power_model,
    make_continuous_device,
    make_intermittent_device,
)


def deploy(cls, device, **kwargs):
    app = build_health_app()
    props = load_properties(BENCHMARK_SPEC, app)
    return cls(app, props, device, health_power_model(), **kwargs)


class TestInlinedDeployment:
    def test_same_task_flow_as_modular(self):
        dev_a = make_continuous_device()
        dev_a.run(deploy(ArtemisRuntime, dev_a))
        dev_b = make_continuous_device()
        dev_b.run(deploy(InlinedArtemisRuntime, dev_b))
        flow = lambda d: [e.detail["task"] for e in d.trace.of_kind("task_end")]
        assert flow(dev_a) == flow(dev_b)

    def test_no_monitor_category_cost(self):
        device = make_continuous_device()
        result = device.run(deploy(InlinedArtemisRuntime, device))
        assert result.monitor_overhead_s == 0.0
        assert result.runtime_overhead_s > 0.0

    def test_lower_total_overhead_than_modular(self):
        dev_a = make_continuous_device()
        modular = dev_a.run(deploy(ArtemisRuntime, dev_a))
        dev_b = make_continuous_device()
        inlined = dev_b.run(deploy(InlinedArtemisRuntime, dev_b))
        assert (inlined.runtime_overhead_s + inlined.monitor_overhead_s
                < modular.runtime_overhead_s + modular.monitor_overhead_s)

    def test_still_prevents_non_termination(self):
        device = make_intermittent_device(420.0)
        result = device.run(deploy(InlinedArtemisRuntime, device),
                            max_time_s=4 * 3600)
        assert result.completed
        assert device.trace.count("path_skip") >= 1

    def test_inlined_memory_larger_code(self):
        from repro.core.generator import generate_machines
        from repro.memsize.model import (
            artemis_monitor_memory,
            artemis_runtime_memory,
            inlined_memory,
        )

        app = build_health_app()
        machines = generate_machines(load_properties(BENCHMARK_SPEC, app))
        inlined = inlined_memory(app, machines)
        modular_text = (artemis_runtime_memory(app).text_bytes
                        + artemis_monitor_memory(app, machines).text_bytes)
        # §6: duplication at call sites costs more code than one module.
        assert inlined.text_bytes > modular_text


class TestRemoteDeployment:
    def test_same_task_flow_as_modular(self):
        dev_a = make_continuous_device()
        dev_a.run(deploy(ArtemisRuntime, dev_a))
        dev_b = make_continuous_device()
        dev_b.run(deploy(RemoteMonitorRuntime, dev_b))
        flow = lambda d: [e.detail["task"] for e in d.trace.of_kind("task_end")]
        assert flow(dev_a) == flow(dev_b)

    def test_radio_energy_dominates_monitoring_cost(self):
        dev_a = make_continuous_device()
        modular = dev_a.run(deploy(ArtemisRuntime, dev_a))
        dev_b = make_continuous_device()
        remote = dev_b.run(deploy(RemoteMonitorRuntime, dev_b))
        # "Wireless communication is way more energy-hungry compared to
        # computation" — the remote's radio spend must exceed the local
        # checking cost by an order, and all of its checking cost is radio.
        assert remote.energy_j["radio"] > 10 * modular.energy_j["monitor"]
        assert remote.energy_j["monitor"] == 0.0

    def test_custom_radio_link(self):
        link = RadioLink(tx_time_s=5e-3, rx_time_s=5e-3, power_w=20e-3)
        assert link.round_trip_s == pytest.approx(10e-3)
        device = make_continuous_device()
        result = device.run(deploy(RemoteMonitorRuntime, device, radio=link))
        assert result.completed

    def test_still_prevents_non_termination(self):
        device = make_intermittent_device(420.0)
        result = device.run(deploy(RemoteMonitorRuntime, device),
                            max_time_s=4 * 3600)
        assert result.completed

    def test_interrupted_radio_exchange_finalised(self):
        """A brown-out mid-exchange must behave like any interrupted
        monitor call: finalised on reboot, no lost verdicts."""
        from repro.energy.capacitor import Capacitor
        from repro.energy.environment import EnergyEnvironment
        from repro.sim.device import Device

        cap = Capacitor(5.2e-3, v_initial=3.0)
        env = EnergyEnvironment.for_charging_delay(30.0, capacitor=cap)
        device = Device(env)
        result = device.run(deploy(RemoteMonitorRuntime, device),
                            max_time_s=4 * 3600)
        assert result.completed
