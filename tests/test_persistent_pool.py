"""Persistent worker-pool tests: correctness, reuse, shared-memory
transport, worker-death recovery, and sweep-strategy parity
(:mod:`repro.sim.pool`)."""

import multiprocessing
import os

import pytest

from repro.sim.experiments import Sweep, SweepPointError
from repro.sim.pool import (
    PersistentPool,
    PoolError,
    PoolItemError,
    get_pool,
    run_sweep,
    shutdown_pools,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="persistent pool needs the fork start method")


# ---------------------------------------------------------------------------
# Module-level (picklable) tasks
# ---------------------------------------------------------------------------


def square(x):
    return x * x


def failing_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x + 1


class CrashOnce:
    """Kills its worker process the first time it sees the magic item;
    the marker file makes the crash one-shot so the re-queued chunk
    succeeds on retry."""

    def __init__(self, marker_dir, crash_item=7):
        self.marker_dir = marker_dir
        self.crash_item = crash_item

    def __call__(self, x):
        if x == self.crash_item:
            marker = os.path.join(self.marker_dir, f"crashed-{x}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                os._exit(17)
            except FileExistsError:
                pass
        return x * 10


class CrashAlways:
    def __call__(self, x):
        if x == 2:
            os._exit(9)
        return x


class ShmTask:
    """Fixed two-field row through the shared-memory table."""

    shm_row_size = 2

    def __call__(self, x):
        return {"a": float(x), "b": float(x) / 2.0}

    @staticmethod
    def encode_row(row):
        return [row["a"], row["b"]]

    @staticmethod
    def decode_row(values):
        return {"a": values[0], "b": values[1]}


# Portable sweep pieces (no closures) for strategy parity tests.
def _sweep_build(point):
    from repro.workloads.health import make_continuous_device
    from repro.workloads.health import build_artemis, build_health_app
    device = make_continuous_device()
    runtime = build_artemis(device, app=build_health_app())
    return device, runtime


def _sweep_metric_time(device, result):
    return result.total_time_s


def _sweep_metric_completed(device, result):
    return result.completed


def make_portable_sweep(n=4):
    return Sweep(
        factors={"idx": list(range(n))},
        build=_sweep_build,
        metrics={"time_s": _sweep_metric_time,
                 "completed": _sweep_metric_completed},
        runs=1,
    )


@pytest.fixture(autouse=True)
def fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


@fork_only
class TestPersistentPoolBasics:
    def test_results_in_item_order(self):
        pool = PersistentPool(jobs=3)
        try:
            assert pool.run(square, list(range(20))) == \
                [x * x for x in range(20)]
        finally:
            pool.close()

    def test_empty_run_and_validation(self):
        pool = PersistentPool(jobs=2)
        try:
            assert pool.run(square, []) == []
        finally:
            pool.close()
        with pytest.raises(PoolError):
            PersistentPool(jobs=0)

    def test_workers_forked_once_across_runs(self):
        pool = PersistentPool(jobs=2)
        try:
            pool.run(square, list(range(8)))
            forks_after_first = pool.forks
            for _ in range(3):
                pool.run(square, list(range(8)))
            assert pool.forks == forks_after_first == 2
            assert pool.alive_workers == 2
        finally:
            pool.close()

    def test_on_result_streams_every_item(self):
        pool = PersistentPool(jobs=2)
        seen = {}
        try:
            pool.run(square, list(range(10)),
                     on_result=lambda slot, value: seen.__setitem__(slot,
                                                                    value))
        finally:
            pool.close()
        assert seen == {i: i * i for i in range(10)}

    def test_error_attribution(self):
        pool = PersistentPool(jobs=2)
        try:
            with pytest.raises(PoolError, match="three"):
                pool.run(failing_on_three, [1, 2, 3, 4])
        finally:
            pool.close()

    def test_return_errors_mode(self):
        pool = PersistentPool(jobs=2)
        try:
            results = pool.run(failing_on_three, [1, 2, 3, 4],
                               return_errors=True)
        finally:
            pool.close()
        assert results[0] == 2 and results[1] == 3 and results[3] == 5
        assert isinstance(results[2], PoolItemError)
        with pytest.raises(PoolError, match="three"):
            raise results[2].to_exception(3)

    def test_closed_pool_rejects_work(self):
        pool = PersistentPool(jobs=2)
        pool.run(square, [1])
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(PoolError):
            pool.run(square, [1])


@fork_only
class TestSharedMemoryTransport:
    def test_rows_return_through_the_table(self):
        pool = PersistentPool(jobs=2)
        streamed = []
        try:
            rows = pool.run(ShmTask(), list(range(12)),
                            on_result=lambda s, v: streamed.append((s, v)))
        finally:
            pool.close()
        assert rows == [{"a": float(x), "b": x / 2.0} for x in range(12)]
        assert dict(streamed) == {i: rows[i] for i in range(12)}


@fork_only
class TestWorkerDeathRecovery:
    def test_crashed_worker_restarts_and_chunk_retries(self, tmp_path):
        pool = PersistentPool(jobs=2)
        try:
            task = CrashOnce(str(tmp_path), crash_item=7)
            rows = pool.run(task, list(range(12)), chunk_size=3,
                            timeout=60.0)
            assert rows == [x * 10 for x in range(12)]
            assert pool.restarts >= 1
            assert pool.alive_workers == 2
            # The pool is still healthy for subsequent runs.
            assert pool.run(square, [5]) == [25]
        finally:
            pool.close()

    def test_poison_chunk_fails_after_retry_budget(self):
        pool = PersistentPool(jobs=2, max_chunk_retries=2)
        try:
            with pytest.raises(PoolError, match="crashed its worker"):
                pool.run(CrashAlways(), list(range(6)), chunk_size=6,
                         timeout=60.0)
        finally:
            pool.close()

    def test_no_restart_policy_raises_when_all_workers_die(self):
        pool = PersistentPool(jobs=1, restart=False)
        try:
            with pytest.raises(PoolError):
                pool.run(CrashAlways(), [2], timeout=60.0)
        finally:
            pool.close()


@fork_only
class TestSharedPoolRegistry:
    def test_get_pool_reuses_and_survives_shutdown(self):
        a = get_pool(2)
        assert get_pool(2) is a
        assert get_pool(3) is not a
        shutdown_pools()
        b = get_pool(2)
        assert b is not a
        assert b.run(square, [3]) == [9]


class TestSweepStrategies:
    def test_portable_sweep_identical_across_strategies(self):
        sweep = make_portable_sweep(4)
        serial = run_sweep(sweep, jobs=1, strategy="serial")
        assert serial and all("time_s" in row for row in serial)
        if "fork" in multiprocessing.get_all_start_methods():
            persistent = run_sweep(sweep, jobs=2, strategy="persistent")
            fork = run_sweep(sweep, jobs=2, strategy="fork")
            auto = run_sweep(sweep, jobs=2)
            assert persistent == serial
            assert fork == serial
            assert auto == serial

    def test_unknown_strategy_rejected(self):
        with pytest.raises(Exception, match="strategy"):
            run_sweep(make_portable_sweep(2), jobs=2, strategy="warp")

    @fork_only
    def test_closure_sweep_falls_back_to_fork(self):
        offset = 5  # captured: makes build unpicklable enough? no —
        # closures over locals make the *lambda* unpicklable.
        sweep = Sweep(
            factors={"idx": [0, 1]},
            build=lambda p: _sweep_build(p),
            metrics={"time_s": lambda d, r: r.total_time_s + offset * 0},
            runs=1,
        )
        rows = run_sweep(sweep, jobs=2)  # auto -> legacy fork path
        assert len(rows) == 2
        with pytest.raises(PoolError, match="not portable"):
            run_sweep(sweep, jobs=2, strategy="persistent")

    def test_sweep_point_error_attribution_preserved(self):
        sweep = Sweep(
            factors={"idx": [0, 1]},
            build=_sweep_build,
            metrics={"boom": _metric_boom},
            runs=1,
        )
        with pytest.raises(SweepPointError) as err:
            run_sweep(sweep, jobs=1, strategy="serial")
        assert err.value.stage == "metric"
        if "fork" in multiprocessing.get_all_start_methods():
            with pytest.raises(SweepPointError) as err:
                run_sweep(sweep, jobs=2, strategy="persistent")
            assert err.value.stage == "metric"


def _metric_boom(device, result):
    raise RuntimeError("boom")
