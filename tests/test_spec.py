"""Tests for the property specification language: lexer, parser, units,
and validator."""

import pytest

from repro.core.actions import ActionType
from repro.core.properties import Collect, DpData, MITD, MaxDuration, MaxTries
from repro.errors import SpecSyntaxError, SpecValidationError
from repro.spec.ast import Clause, PropertyDecl
from repro.spec.lexer import tokenize
from repro.spec.parser import parse_spec
from repro.spec.units import format_duration, parse_duration
from repro.spec.validator import load_properties, validate
from repro.taskgraph.builder import AppBuilder
from repro.workloads.health import BENCHMARK_SPEC, FIGURE5_SPEC, build_health_app


class TestUnits:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100ms", 0.1),
            ("3s", 3.0),
            ("2sec", 2.0),
            ("5min", 300.0),
            ("1h", 3600.0),
            ("2hour", 7200.0),
            ("1.5s", 1.5),
        ],
    )
    def test_parse_duration(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_invalid_duration_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_duration("5parsecs")

    @pytest.mark.parametrize(
        "seconds,expected",
        [(0.1, "100ms"), (3.0, "3s"), (300.0, "5min"), (3600.0, "1h"), (90.0, "90s")],
    )
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_format_parse_roundtrip(self):
        for seconds in (0.05, 0.5, 2.0, 42.0, 300.0, 7200.0):
            assert parse_duration(format_duration(seconds)) == pytest.approx(seconds)


class TestLexer:
    def test_duration_token(self):
        tokens = tokenize("5min")
        assert tokens[0].kind == "duration"

    def test_number_vs_duration(self):
        tokens = tokenize("10 10ms")
        assert [t.kind for t in tokens[:2]] == ["number", "duration"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_comments_skipped(self):
        tokens = tokenize("a // comment\n# another\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unknown_character_rejected(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("task { $bad }")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_block_with_and_without_colon(self):
        model = parse_spec("a: { maxTries: 1 onFail: skipPath; }\n"
                           "b { maxTries: 2 onFail: skipTask; }")
        assert [b.task for b in model.blocks] == ["a", "b"]

    def test_property_values_typed(self):
        model = parse_spec("t { maxTries: 10 onFail: skipPath; "
                           "maxDuration: 100ms onFail: skipTask; }")
        decls = model.blocks[0].properties
        assert decls[0].value == 10
        assert decls[1].value == pytest.approx(0.1)

    def test_clause_ordering_preserved(self):
        model = parse_spec(
            "send { MITD: 5min dpTask: accel onFail: restartPath "
            "maxAttempt: 3 onFail: skipPath Path: 2; }"
        )
        clauses = model.blocks[0].properties[0].clauses
        assert [c.key for c in clauses] == [
            "dpTask", "onFail", "maxAttempt", "onFail", "Path"]

    def test_range_clause(self):
        model = parse_spec("t { dpData: x Range: [36, 38] onFail: completePath; }")
        (decl,) = model.blocks[0].properties
        assert decl.clauses_named("Range")[0].value == (36.0, 38.0)

    def test_negative_range_bounds(self):
        model = parse_spec("t { dpData: x Range: [-5, 5] onFail: skipTask; }")
        assert model.blocks[0].properties[0].clauses_named("Range")[0].value == (-5.0, 5.0)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("t { maxTries: 3 onFail: skipPath }")

    def test_missing_brace_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("t { maxTries: 3 onFail: skipPath;")

    def test_figure5_spec_parses(self):
        model = parse_spec(FIGURE5_SPEC)
        assert {b.task for b in model.blocks} == {"micSense", "send", "calcAvg", "accel"}
        assert model.property_count == 8

    def test_benchmark_spec_parses(self):
        assert parse_spec(BENCHMARK_SPEC).property_count == 5

    def test_property_count_helper(self):
        model = parse_spec("a { maxTries: 1 onFail: skipPath; }")
        assert model.property_count == 1
        assert model.block_for("a") is not None
        assert model.block_for("zzz") is None


class TestValidator:
    def test_full_figure5_binding(self, health_app):
        props = load_properties(FIGURE5_SPEC, health_app)
        kinds = sorted(p.kind for p in props)
        assert kinds == sorted(
            ["maxTries", "MITD", "maxDuration", "collect", "collect",
             "collect", "dpData", "maxTries"])

    def test_mitd_fields(self, health_app):
        props = load_properties(BENCHMARK_SPEC, health_app)
        (mitd,) = [p for p in props if p.kind == "MITD"]
        assert mitd.task == "send"
        assert mitd.dep_task == "accel"
        assert mitd.limit_s == 300.0
        assert mitd.on_fail is ActionType.RESTART_PATH
        assert mitd.max_attempt == 3
        assert mitd.max_attempt_action is ActionType.SKIP_PATH
        assert mitd.path == 2

    def test_unknown_task_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("ghost { maxTries: 1 onFail: skipPath; }", health_app)

    def test_unknown_property_kind_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("accel { teleport: 1 onFail: skipPath; }", health_app)

    def test_unknown_action_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("accel { maxTries: 1 onFail: explode; }", health_app)

    def test_missing_onfail_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("accel { maxTries: 1 Path: 2; }", health_app)

    def test_missing_dptask_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("send { collect: 1 onFail: restartPath Path: 2; }",
                            health_app)

    def test_unknown_dptask_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "send { collect: 1 dpTask: ghost onFail: restartPath Path: 2; }",
                health_app)

    def test_merge_task_requires_path(self, health_app):
        # send is on all three paths: path-scoped properties need Path.
        with pytest.raises(SpecValidationError) as exc:
            load_properties(
                "send { collect: 1 dpTask: accel onFail: restartPath; }",
                health_app)
        assert "path merging" in str(exc.value)

    def test_single_path_task_needs_no_path(self, health_app):
        props = load_properties(
            "calcAvg { collect: 10 dpTask: bodyTemp onFail: restartPath; }",
            health_app)
        assert props.properties[0].path is None

    def test_path_not_containing_task_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "accel { maxTries: 5 onFail: skipPath Path: 3; }", health_app)

    def test_nonexistent_path_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "send { collect: 1 dpTask: accel onFail: restartPath Path: 9; }",
                health_app)

    def test_maxattempt_requires_following_onfail(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "send { MITD: 5min dpTask: accel onFail: restartPath "
                "maxAttempt: 3 Path: 2; }",
                health_app)

    def test_maxattempt_binding_order_independent(self, health_app):
        # maxAttempt/onFail pair placed before the property's own onFail.
        props = load_properties(
            "send { MITD: 5min dpTask: accel maxAttempt: 2 onFail: skipPath "
            "onFail: restartPath Path: 2; }",
            health_app)
        (mitd,) = list(props)
        assert mitd.on_fail is ActionType.RESTART_PATH
        assert mitd.max_attempt_action is ActionType.SKIP_PATH

    def test_dpdata_requires_monitored_var(self, health_app):
        with pytest.raises(SpecValidationError) as exc:
            load_properties(
                "heartRate { dpData: hr Range: [40, 180] onFail: skipTask; }",
                health_app)
        assert "monitored" in str(exc.value)

    def test_dpdata_happy_path(self, health_app):
        props = load_properties(
            "calcAvg { dpData: avgTemp Range: [36, 38] onFail: completePath; }",
            health_app)
        (prop,) = list(props)
        assert isinstance(prop, DpData)
        assert (prop.low, prop.high) == (36.0, 38.0)

    def test_dpdata_empty_range_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "calcAvg { dpData: avgTemp Range: [38, 36] onFail: skipTask; }",
                health_app)

    def test_duplicate_property_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "accel { maxTries: 1 onFail: skipPath Path: 2; "
                "maxTries: 2 onFail: skipPath Path: 2; }",
                health_app)

    def test_unexpected_clause_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "accel { maxTries: 1 onFail: skipPath Range: [1, 2] Path: 2; }",
                health_app)

    def test_period_with_jitter(self, health_app):
        props = load_properties(
            "accel { period: 10s jitter: 500ms onFail: restartTask Path: 2; }",
            health_app)
        (prop,) = list(props)
        assert prop.period_s == 10.0
        assert prop.jitter_s == 0.5

    def test_energy_extension_property(self, health_app):
        props = load_properties(
            "accel { energyAtLeast: 0.012 onFail: skipTask Path: 2; }", health_app)
        (prop,) = list(props)
        assert prop.min_energy_j == pytest.approx(0.012)

    def test_energy_nonpositive_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties(
                "accel { energyAtLeast: 0 onFail: skipTask Path: 2; }", health_app)

    def test_wrong_value_type_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_properties("accel { maxTries: 2.5 onFail: skipPath Path: 2; }",
                            health_app)
        with pytest.raises(SpecValidationError):
            load_properties("accel { maxDuration: fast onFail: skipTask Path: 2; }",
                            health_app)


class TestPropertyModelInvariants:
    def test_machine_names_unique_per_property(self, health_app):
        props = load_properties(FIGURE5_SPEC, health_app)
        names = [p.machine_name() for p in props]
        assert len(names) == len(set(names))

    def test_propertyset_queries(self, health_app):
        props = load_properties(BENCHMARK_SPEC, health_app)
        assert len(props.for_task("send")) == 2
        assert len(props.of_kind("maxTries")) == 2
        assert set(props.tasks()) == {"micSense", "send", "calcAvg", "accel"}

    def test_invalid_limits_rejected(self):
        with pytest.raises(SpecValidationError):
            MaxTries(task="a", on_fail=ActionType.SKIP_PATH, limit=0)
        with pytest.raises(SpecValidationError):
            MaxDuration(task="a", on_fail=ActionType.SKIP_TASK, limit_s=0)
        with pytest.raises(SpecValidationError):
            Collect(task="a", on_fail=ActionType.RESTART_PATH, dep_task="b", count=0)
        with pytest.raises(SpecValidationError):
            MITD(task="a", on_fail=ActionType.RESTART_PATH, dep_task="", limit_s=1.0)
