"""Golden-file tests for the C code generator.

One property of each kind is generated to C and compared byte-for-byte
against a committed reference under ``tests/goldens/``. Any change to
the generator's output — intended or not — shows up as a readable diff
in review instead of slipping through unit assertions that only probe
for substrings.

To accept an intended change, regenerate the references::

    PYTHONPATH=src python -m pytest tests/test_codegen_golden.py --update-goldens

then commit the modified ``.c`` files. See ``docs/performance.md``.
"""

from pathlib import Path

import pytest

from repro.core.actions import ActionType
from repro.core.generator import generate_machine, generate_machines
from repro.core.properties import Collect, DpData, MaxDuration, MaxTries, MITD, Period
from repro.statemachine.codegen_c import (
    generate_c_bundle,
    generate_c_header,
    generate_c_source,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: One representative property per kind; parameters are fixed so the
#: emitted C is fully deterministic.
GOLDEN_PROPERTIES = {
    "maxtries": MaxTries(task="micSense", on_fail=ActionType.SKIP_PATH,
                         limit=10),
    "maxduration": MaxDuration(task="calcAvg", on_fail=ActionType.SKIP_TASK,
                               limit_s=0.1),
    "mitd": MITD(task="send", on_fail=ActionType.RESTART_PATH,
                 dep_task="calcAvg", limit_s=4.0, max_attempt=3,
                 max_attempt_action=ActionType.SKIP_PATH),
    "collect": Collect(task="calcAvg", on_fail=ActionType.RESTART_PATH,
                       dep_task="bodyTemp", count=10),
    "dpdata": DpData(task="calcAvg", on_fail=ActionType.COMPLETE_PATH,
                     var="avgTemp", low=36.0, high=38.0),
    "period": Period(task="bodyTemp", on_fail=ActionType.RESTART_TASK,
                     period_s=10.0, jitter_s=1.0),
}


def _check(request, name: str, generated: str) -> None:
    path = GOLDEN_DIR / f"{name}.c"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(generated)
        return
    assert path.exists(), (
        f"missing golden {path.name}; generate it with "
        f"pytest {__file__} --update-goldens"
    )
    assert generated == path.read_text(), (
        f"C generator output for {name!r} differs from {path.name}; if "
        f"the change is intended, rerun with --update-goldens and "
        f"commit the diff"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_PROPERTIES))
def test_property_source_matches_golden(request, name):
    machine = generate_machine(GOLDEN_PROPERTIES[name])
    _check(request, name, generate_c_source(machine))


def test_bundle_matches_golden(request):
    """The full dispatch bundle over all six properties."""
    machines = generate_machines(
        [GOLDEN_PROPERTIES[k] for k in sorted(GOLDEN_PROPERTIES)]
    )
    _check(request, "bundle", generate_c_bundle(machines))


def test_header_matches_golden(request):
    _check(request, "monitor_header", generate_c_header())


def test_goldens_have_no_stray_files():
    """Every committed golden corresponds to a test above — a renamed
    property would otherwise leave an orphaned reference nobody
    compares against."""
    expected = {f"{n}.c" for n in GOLDEN_PROPERTIES}
    expected |= {"bundle.c", "monitor_header.c"}
    actual = {p.name for p in GOLDEN_DIR.glob("*.c")}
    assert actual == expected
