"""Tests for the command-line toolchain."""

import json

import pytest

from repro.cli import load_app, load_power, main

APP_JSON = {
    "name": "cli_demo",
    "tasks": [{"name": "sense"}, {"name": "avg", "monitored_vars": ["m"]},
              {"name": "send"}],
    "paths": {"1": ["sense", "avg", "send"]},
    "costs": {
        "sense": {"duration_s": 0.05, "power_w": 0.001},
        "avg": {"duration_s": 0.02},
        "send": {"duration_s": 0.5, "power_w": 0.006},
    },
}

SPEC = """
avg { collect: 2 dpTask: sense onFail: restartPath; }
send { MITD: 1min dpTask: avg onFail: restartPath maxAttempt: 2 onFail: skipPath; }
"""

BAD_SPEC = "ghost { maxTries: 1 onFail: skipPath; }"


@pytest.fixture
def files(tmp_path):
    app = tmp_path / "app.json"
    app.write_text(json.dumps(APP_JSON))
    spec = tmp_path / "props.art"
    spec.write_text(SPEC)
    return str(app), str(spec), tmp_path


class TestLoaders:
    def test_load_app(self, files):
        app_path, _, _ = files
        app = load_app(app_path)
        assert app.name == "cli_demo"
        assert app.task_names == ["sense", "avg", "send"]
        assert app.task("avg").monitored_vars == ("m",)

    def test_load_power(self, files):
        app_path, _, _ = files
        power = load_power(app_path)
        assert power.cost_of("send").power_w == 0.006
        assert power.cost_of("avg").power_w > 0  # default MCU power
        assert power.cost_of("unlisted").duration_s == 0.05  # default cost


class TestCheck:
    def test_valid_spec_exits_zero(self, files, capsys):
        app, spec, _ = files
        assert main(["check", spec, "--app", app]) == 0
        out = capsys.readouterr().out
        assert "specification OK: 2 properties" in out

    def test_with_power_checks(self, files, capsys):
        app, spec, _ = files
        assert main(["check", spec, "--app", app, "--with-power"]) == 0

    def test_inconsistent_spec_exits_one(self, files, tmp_path, capsys):
        app, _, _ = files
        bad = tmp_path / "bad.art"
        # maxDuration below send's execution time: DUR-MIN error.
        bad.write_text("send { maxDuration: 1ms onFail: skipTask; }")
        assert main(["check", str(bad), "--app", app, "--with-power"]) == 1
        assert "DUR-MIN" in capsys.readouterr().out

    def test_unknown_task_reports_error(self, files, tmp_path, capsys):
        app, _, _ = files
        bad = tmp_path / "bad.art"
        bad.write_text(BAD_SPEC)
        assert main(["check", str(bad), "--app", app]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, files):
        app, _, _ = files
        assert main(["check", "/nonexistent.art", "--app", app]) == 1


class TestCompile:
    def test_writes_three_artifacts(self, files, capsys):
        app, spec, tmp = files
        out = tmp / "gen"
        assert main(["compile", spec, "--app", app, "-o", str(out)]) == 0
        assert (out / "monitors.sm").exists()
        assert (out / "monitors.py").exists()
        assert (out / "monitors.c").exists()

    def test_sm_artifact_reparses(self, files):
        from repro.statemachine.textual import parse_machines

        app, spec, tmp = files
        out = tmp / "gen"
        main(["compile", spec, "--app", app, "-o", str(out)])
        machines = parse_machines((out / "monitors.sm").read_text())
        assert {m.name for m in machines} == {"collect_avg", "MITD_send"}

    def test_python_artifact_compiles(self, files):
        app, spec, tmp = files
        out = tmp / "gen"
        main(["compile", spec, "--app", app, "-o", str(out)])
        compile((out / "monitors.py").read_text(), "monitors.py", "exec")

    def test_c_artifact_has_interface(self, files):
        app, spec, tmp = files
        out = tmp / "gen"
        main(["compile", spec, "--app", app, "-o", str(out)])
        c_src = (out / "monitors.c").read_text()
        assert "callMonitor" in c_src and "resetMonitor" in c_src


class TestSimulate:
    def test_continuous_run_completes(self, files, capsys):
        app, spec, _ = files
        assert main(["simulate", spec, "--app", app]) == 0
        assert "completed" in capsys.readouterr().out

    def test_intermittent_with_timeline(self, files, capsys):
        app, spec, _ = files
        code = main(["simulate", spec, "--app", app,
                     "--charging-delay", "30", "--timeline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline over" in out

    def test_monitor_actions_reported(self, files, capsys):
        app, spec, _ = files
        main(["simulate", spec, "--app", app])
        out = capsys.readouterr().out
        assert "restartPath" in out  # collect: 2 forces one restart

    def test_non_terminating_run_exits_two(self, files, tmp_path, capsys):
        app, _, _ = files
        spec = tmp_path / "livelock.art"
        # send can never collect from a task that never precedes it.
        spec.write_text(
            "sense { collect: 5 dpTask: send onFail: restartPath; }")
        code = main(["simulate", str(spec), "--app", app,
                     "--max-time", "5"])
        assert code == 2


class TestCompileHeader:
    def test_header_written_and_consistent(self, files):
        from repro.statemachine.codegen_c import generate_c_header

        app, spec, tmp = files
        out = tmp / "gen"
        main(["compile", spec, "--app", app, "-o", str(out)])
        header = (out / "monitor.h").read_text()
        assert header == generate_c_header()
        # every helper the generated C calls is declared in the header
        c_src = (out / "monitors.c").read_text()
        for symbol in ("monitor_task_is", "monitor_report",
                       "MonitorEvent_t", "MonitorResult_t"):
            assert symbol in header
            assert symbol in c_src

    def test_header_actions_cover_action_enum(self, files):
        from repro.core.actions import ActionType
        from repro.statemachine.codegen_c import generate_c_header

        header = generate_c_header()
        for action in ActionType:
            if action is ActionType.NONE:
                continue
            assert f"ACTION_{action.value.upper()}" in header


class TestMayflyFrontendFlag:
    MAYFLY = "edge sense -> avg { collect: 2; }\n"

    def test_check_with_mayfly_frontend(self, files, tmp_path, capsys):
        app, _, _ = files
        spec = tmp_path / "edges.mayfly"
        spec.write_text(self.MAYFLY)
        assert main(["check", str(spec), "--app", app,
                     "--frontend", "mayfly"]) == 0
        assert "1 properties" in capsys.readouterr().out

    def test_simulate_with_mayfly_frontend(self, files, tmp_path, capsys):
        app, _, _ = files
        spec = tmp_path / "edges.mayfly"
        spec.write_text(self.MAYFLY)
        assert main(["simulate", str(spec), "--app", app,
                     "--frontend", "mayfly"]) == 0
        assert "restartPath" in capsys.readouterr().out

    def test_compile_with_mayfly_frontend(self, files, tmp_path):
        app, _, _ = files
        spec = tmp_path / "edges.mayfly"
        spec.write_text(self.MAYFLY)
        out = tmp_path / "gen_mayfly"
        assert main(["compile", str(spec), "--app", app,
                     "--frontend", "mayfly", "-o", str(out)]) == 0
        assert "collect_avg" in (out / "monitors.sm").read_text()

    def test_artemis_spec_through_mayfly_frontend_fails(self, files, capsys):
        app, spec, _ = files
        assert main(["check", spec, "--app", app,
                     "--frontend", "mayfly"]) == 1


class TestAuditFlag:
    def test_audit_log_printed(self, files, capsys):
        app, spec, _ = files
        assert main(["simulate", spec, "--app", app, "--audit", "8"]) == 0
        out = capsys.readouterr().out
        assert "audit log" in out
        assert "restartPath" in out  # collect: 2 fired once


SENSING_APP_JSON = {
    "name": "cli_sensing",
    "tasks": [{"name": "sense", "sense": "adc"},
              {"name": "avg", "monitored_vars": ["m"]},
              {"name": "send"}],
    "paths": {"1": ["sense", "avg", "send"]},
    "costs": {
        "sense": {"duration_s": 0.05, "power_w": 0.001},
        "avg": {"duration_s": 0.02},
        "send": {"duration_s": 0.5, "power_w": 0.006},
    },
    "sensors": {"adc": 21.5},
}


@pytest.fixture
def sensing_files(tmp_path):
    app = tmp_path / "app.json"
    app.write_text(json.dumps(SENSING_APP_JSON))
    spec = tmp_path / "props.art"
    spec.write_text(SPEC)
    return str(app), str(spec), tmp_path


class TestRobustnessFlags:
    def test_sensing_task_commits_reading_to_channel(self, sensing_files):
        app_path, _, _ = sensing_files
        app = load_app(app_path)
        assert app.task("sense").body is not None
        assert app.task("send").body is None  # cost-model-only
        assert app.sensors["adc"](0.0) == 21.5

    def test_sense_field_with_unknown_sensor_rejected(self, tmp_path, capsys):
        desc = dict(SENSING_APP_JSON, tasks=[{"name": "sense", "sense": "nope"}],
                    paths={"1": ["sense"]})
        app = tmp_path / "bad.json"
        app.write_text(json.dumps(desc))
        spec = tmp_path / "props.art"
        spec.write_text("sense { maxTries: 2 onFail: skipPath; }")
        assert main(["simulate", str(spec), "--app", str(app)]) == 1
        assert "unknown sensor 'nope'" in capsys.readouterr().err

    def test_sensor_faults_flag_injects_and_reports(self, sensing_files, capsys):
        app, spec, _ = sensing_files
        assert main(["simulate", spec, "--app", app, "--runs", "5",
                     "--sensor-faults", "adc:timeout:0.4:seed=9"]) == 0
        out = capsys.readouterr().out
        assert "faults=" in out and "retries=" in out
        assert "faults=0" not in out  # seed 9 at 40% definitely fires

    def test_sensor_faults_unknown_sensor_rejected(self, sensing_files, capsys):
        app, spec, _ = sensing_files
        assert main(["simulate", spec, "--app", app,
                     "--sensor-faults", "ghost:timeout:0.5"]) == 1
        assert "unknown sensor" in capsys.readouterr().err

    def test_sensor_faults_malformed_spec_rejected(self, sensing_files, capsys):
        app, spec, _ = sensing_files
        assert main(["simulate", spec, "--app", app,
                     "--sensor-faults", "adc:timeout"]) == 1
        assert "fault spec" in capsys.readouterr().err

    def test_degradation_flag_accepted(self, sensing_files, capsys):
        app, spec, _ = sensing_files
        assert main(["simulate", spec, "--app", app,
                     "--degradation", "0.35:0.85"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_degradation_malformed_rejected(self, sensing_files, capsys):
        app, spec, _ = sensing_files
        assert main(["simulate", spec, "--app", app,
                     "--degradation", "high"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_check_rejects_priority_on_collect(self, sensing_files, capsys):
        app, _, tmp_path = sensing_files
        spec = tmp_path / "bad_priority.art"
        spec.write_text(
            "avg { collect: 2 dpTask: sense onFail: restartPath priority: 1; }")
        assert main(["check", str(spec), "--app", app]) == 1
        assert "priority is not supported" in capsys.readouterr().err

    def test_check_accepts_priority_on_maxtries(self, sensing_files, capsys):
        app, _, tmp_path = sensing_files
        spec = tmp_path / "good_priority.art"
        spec.write_text("send { maxTries: 4 onFail: skipPath priority: 1; }")
        assert main(["check", str(spec), "--app", app]) == 0
        assert "specification OK" in capsys.readouterr().out


class TestVerify:
    def test_single_scenario_passes(self, capsys):
        assert main(["verify", "--workload", "health",
                     "--runtime", "checkpoint", "--bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] health-checkpoint" in out

    def test_counterexample_exits_three_with_witness(self, capsys):
        from repro.verify import broken_commit_ordering
        with broken_commit_ordering():
            code = main(["verify", "--workload", "health",
                         "--runtime", "artemis", "--bound", "1",
                         "--budget", "120", "--shrink-runs", "60"])
        assert code == 3
        out = capsys.readouterr().out
        assert "[FAIL] health-artemis" in out
        assert "crash at payment" in out
        assert "divergence:" in out

    def test_self_test_flag(self, capsys):
        assert main(["verify", "--self-test", "--bound", "1",
                     "--budget", "400"]) == 0
        out = capsys.readouterr().out
        assert "mutation self-test" in out
        assert "crash at payment" in out

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--runtime", "freertos"])
