"""Unit tests for the non-volatile memory substrate."""

import pytest

from repro.errors import NVMError
from repro.nvm.memory import NonVolatileMemory, namespaced
from repro.nvm.store import NVMStore
from repro.nvm.transaction import Transaction


class TestAllocation:
    def test_alloc_returns_cell_with_initial(self, nvm):
        cell = nvm.alloc("x", initial=42, size_bytes=4)
        assert cell.get() == 42

    def test_alloc_default_initial_is_none(self, nvm):
        assert nvm.alloc("x").get() is None

    def test_realloc_same_name_preserves_value(self, nvm):
        cell = nvm.alloc("x", initial=1, size_bytes=4)
        cell.set(99)
        again = nvm.alloc("x", initial=1, size_bytes=4)
        assert again.get() == 99

    def test_realloc_is_same_cell_object(self, nvm):
        assert nvm.alloc("x", 0, 4) is nvm.alloc("x", 0, 4)

    def test_realloc_different_size_rejected(self, nvm):
        nvm.alloc("x", 0, 4)
        with pytest.raises(NVMError):
            nvm.alloc("x", 0, 8)

    def test_zero_size_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.alloc("x", 0, 0)

    def test_capacity_overflow_rejected(self):
        small = NonVolatileMemory(capacity_bytes=16)
        small.alloc("a", 0, 12)
        with pytest.raises(NVMError):
            small.alloc("b", 0, 8)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(NVMError):
            NonVolatileMemory(capacity_bytes=0)

    def test_used_and_free_bytes_track_allocations(self, nvm):
        nvm.alloc("a", 0, 100)
        nvm.alloc("b", 0, 28)
        assert nvm.used_bytes == 128
        assert nvm.free_bytes == nvm.capacity_bytes - 128

    def test_free_releases_bytes(self, nvm):
        nvm.alloc("a", 0, 100)
        nvm.free("a")
        assert nvm.used_bytes == 0
        assert "a" not in nvm

    def test_free_unknown_cell_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.free("ghost")

    def test_cell_lookup_unknown_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.cell("ghost")

    def test_len_and_iter(self, nvm):
        nvm.alloc("a")
        nvm.alloc("b")
        assert len(nvm) == 2
        assert sorted(nvm) == ["a", "b"]


class TestCellSemantics:
    def test_set_get_roundtrip(self, nvm):
        cell = nvm.alloc("x")
        cell.set({"k": [1, 2]})
        assert cell.get() == {"k": [1, 2]}

    def test_value_property(self, nvm):
        cell = nvm.alloc("x")
        cell.value = 7
        assert cell.value == 7

    def test_write_count_increments(self, nvm):
        cell = nvm.alloc("x")
        before = nvm.write_count
        cell.set(1)
        cell.set(2)
        assert nvm.write_count == before + 2

    def test_snapshot_is_deep_copy(self, nvm):
        cell = nvm.alloc("x", initial=[1])
        snap = nvm.snapshot()
        cell.get().append(2)
        assert snap["x"] == [1]

    def test_usage_report_sorted_descending(self, nvm):
        nvm.alloc("small", 0, 2)
        nvm.alloc("big", 0, 64)
        report = nvm.usage_report()
        assert list(report) == ["big", "small"]


class TestNamespaced:
    def test_namespaced_prefixes_names(self, nvm):
        alloc = namespaced(nvm, "mon1")
        alloc("state", "Init", 2)
        assert "mon1.state" in nvm

    def test_two_namespaces_do_not_clash(self, nvm):
        namespaced(nvm, "a")("x", 1, 4)
        namespaced(nvm, "b")("x", 2, 4)
        assert nvm.cell("a.x").get() == 1
        assert nvm.cell("b.x").get() == 2


class TestTransaction:
    def test_stage_not_visible_until_commit(self, nvm):
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        assert cell.get() == 0
        txn.commit()
        assert cell.get() == 5

    def test_read_through_sees_staged_value(self, nvm):
        nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        assert txn.read("x") == 5

    def test_read_through_falls_back_to_nvm(self, nvm):
        nvm.alloc("x", initial=3)
        txn = Transaction(nvm)
        assert txn.read("x") == 3

    def test_rollback_discards_stage(self, nvm):
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        txn.rollback()
        txn.commit()
        assert cell.get() == 0

    def test_stage_unallocated_cell_rejected(self, nvm):
        txn = Transaction(nvm)
        with pytest.raises(NVMError):
            txn.stage("ghost", 1)

    def test_commit_returns_write_count_and_clears(self, nvm):
        nvm.alloc("x", 0)
        nvm.alloc("y", 0)
        txn = Transaction(nvm)
        txn.stage("x", 1)
        txn.stage("y", 2)
        assert txn.pending == 2
        assert txn.commit() == 2
        assert txn.pending == 0

    def test_last_staged_value_wins(self, nvm):
        cell = nvm.alloc("x", 0)
        txn = Transaction(nvm)
        txn.stage("x", 1)
        txn.stage("x", 2)
        txn.commit()
        assert cell.get() == 2

    def test_contains(self, nvm):
        nvm.alloc("x", 0)
        txn = Transaction(nvm)
        assert "x" not in txn
        txn.stage("x", 1)
        assert "x" in txn


class TestNVMStore:
    def test_set_get_roundtrip(self, nvm):
        store = NVMStore(nvm, "m1")
        store["state"] = "Init"
        assert store["state"] == "Init"

    def test_missing_key_raises_keyerror(self, nvm):
        store = NVMStore(nvm, "m1")
        with pytest.raises(KeyError):
            store["nope"]

    def test_contains_and_len(self, nvm):
        store = NVMStore(nvm, "m1")
        assert "state" not in store
        store["state"] = 1
        store["var.i"] = 0
        assert "state" in store
        assert len(store) == 2

    def test_two_stores_isolated(self, nvm):
        a = NVMStore(nvm, "a")
        b = NVMStore(nvm, "b")
        a["state"] = "A"
        b["state"] = "B"
        assert a["state"] == "A"
        assert b["state"] == "B"

    def test_values_survive_reconstruction(self, nvm):
        NVMStore(nvm, "m")["state"] = "Started"
        rebuilt = NVMStore(nvm, "m")
        assert rebuilt["state"] == "Started"

    def test_delete_key(self, nvm):
        store = NVMStore(nvm, "m")
        store["x"] = 1
        del store["x"]
        assert "x" not in store
        with pytest.raises(KeyError):
            del store["x"]

    def test_iter_lists_keys(self, nvm):
        store = NVMStore(nvm, "m")
        store["a"] = 1
        store["b"] = 2
        assert sorted(store) == ["a", "b"]
