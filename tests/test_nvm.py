"""Unit tests for the non-volatile memory substrate."""

import pytest

from repro.errors import NVMError
from repro.nvm.memory import NonVolatileMemory, namespaced
from repro.nvm.store import NVMStore
from repro.nvm.transaction import Transaction


class TestAllocation:
    def test_alloc_returns_cell_with_initial(self, nvm):
        cell = nvm.alloc("x", initial=42, size_bytes=4)
        assert cell.get() == 42

    def test_alloc_default_initial_is_none(self, nvm):
        assert nvm.alloc("x").get() is None

    def test_realloc_same_name_preserves_value(self, nvm):
        cell = nvm.alloc("x", initial=1, size_bytes=4)
        cell.set(99)
        again = nvm.alloc("x", initial=1, size_bytes=4)
        assert again.get() == 99

    def test_realloc_is_same_cell_object(self, nvm):
        assert nvm.alloc("x", 0, 4) is nvm.alloc("x", 0, 4)

    def test_realloc_different_size_rejected(self, nvm):
        nvm.alloc("x", 0, 4)
        with pytest.raises(NVMError):
            nvm.alloc("x", 0, 8)

    def test_zero_size_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.alloc("x", 0, 0)

    def test_capacity_overflow_rejected(self):
        small = NonVolatileMemory(capacity_bytes=16)
        small.alloc("a", 0, 12)
        with pytest.raises(NVMError):
            small.alloc("b", 0, 8)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(NVMError):
            NonVolatileMemory(capacity_bytes=0)

    def test_used_and_free_bytes_track_allocations(self, nvm):
        nvm.alloc("a", 0, 100)
        nvm.alloc("b", 0, 28)
        assert nvm.used_bytes == 128
        assert nvm.free_bytes == nvm.capacity_bytes - 128

    def test_free_releases_bytes(self, nvm):
        nvm.alloc("a", 0, 100)
        nvm.free("a")
        assert nvm.used_bytes == 0
        assert "a" not in nvm

    def test_free_unknown_cell_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.free("ghost")

    def test_cell_lookup_unknown_rejected(self, nvm):
        with pytest.raises(NVMError):
            nvm.cell("ghost")

    def test_len_and_iter(self, nvm):
        nvm.alloc("a")
        nvm.alloc("b")
        assert len(nvm) == 2
        assert sorted(nvm) == ["a", "b"]


class TestCellSemantics:
    def test_set_get_roundtrip(self, nvm):
        cell = nvm.alloc("x")
        cell.set({"k": [1, 2]})
        assert cell.get() == {"k": [1, 2]}

    def test_value_property(self, nvm):
        cell = nvm.alloc("x")
        cell.value = 7
        assert cell.value == 7

    def test_write_count_increments(self, nvm):
        cell = nvm.alloc("x")
        before = nvm.write_count
        cell.set(1)
        cell.set(2)
        assert nvm.write_count == before + 2

    def test_snapshot_is_deep_copy(self, nvm):
        cell = nvm.alloc("x", initial=[1])
        snap = nvm.snapshot()
        cell.get().append(2)
        assert snap["x"] == [1]

    def test_usage_report_sorted_descending(self, nvm):
        nvm.alloc("small", 0, 2)
        nvm.alloc("big", 0, 64)
        report = nvm.usage_report()
        assert list(report) == ["big", "small"]


class TestNamespaced:
    def test_namespaced_prefixes_names(self, nvm):
        alloc = namespaced(nvm, "mon1")
        alloc("state", "Init", 2)
        assert "mon1.state" in nvm

    def test_two_namespaces_do_not_clash(self, nvm):
        namespaced(nvm, "a")("x", 1, 4)
        namespaced(nvm, "b")("x", 2, 4)
        assert nvm.cell("a.x").get() == 1
        assert nvm.cell("b.x").get() == 2


class TestTransaction:
    def test_stage_not_visible_until_commit(self, nvm):
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        assert cell.get() == 0
        txn.commit()
        assert cell.get() == 5

    def test_read_through_sees_staged_value(self, nvm):
        nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        assert txn.read("x") == 5

    def test_read_through_falls_back_to_nvm(self, nvm):
        nvm.alloc("x", initial=3)
        txn = Transaction(nvm)
        assert txn.read("x") == 3

    def test_rollback_discards_stage(self, nvm):
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        txn.rollback()
        txn.commit()
        assert cell.get() == 0

    def test_stage_unallocated_cell_rejected(self, nvm):
        txn = Transaction(nvm)
        with pytest.raises(NVMError):
            txn.stage("ghost", 1)

    def test_commit_returns_write_count_and_clears(self, nvm):
        nvm.alloc("x", 0)
        nvm.alloc("y", 0)
        txn = Transaction(nvm)
        txn.stage("x", 1)
        txn.stage("y", 2)
        assert txn.pending == 2
        assert txn.commit() == 2
        assert txn.pending == 0

    def test_last_staged_value_wins(self, nvm):
        cell = nvm.alloc("x", 0)
        txn = Transaction(nvm)
        txn.stage("x", 1)
        txn.stage("x", 2)
        txn.commit()
        assert cell.get() == 2

    def test_contains(self, nvm):
        nvm.alloc("x", 0)
        txn = Transaction(nvm)
        assert "x" not in txn
        txn.stage("x", 1)
        assert "x" in txn


class TestNVMStore:
    def test_set_get_roundtrip(self, nvm):
        store = NVMStore(nvm, "m1")
        store["state"] = "Init"
        assert store["state"] == "Init"

    def test_missing_key_raises_keyerror(self, nvm):
        store = NVMStore(nvm, "m1")
        with pytest.raises(KeyError):
            store["nope"]

    def test_contains_and_len(self, nvm):
        store = NVMStore(nvm, "m1")
        assert "state" not in store
        store["state"] = 1
        store["var.i"] = 0
        assert "state" in store
        assert len(store) == 2

    def test_two_stores_isolated(self, nvm):
        a = NVMStore(nvm, "a")
        b = NVMStore(nvm, "b")
        a["state"] = "A"
        b["state"] = "B"
        assert a["state"] == "A"
        assert b["state"] == "B"

    def test_values_survive_reconstruction(self, nvm):
        NVMStore(nvm, "m")["state"] = "Started"
        rebuilt = NVMStore(nvm, "m")
        assert rebuilt["state"] == "Started"

    def test_delete_key(self, nvm):
        store = NVMStore(nvm, "m")
        store["x"] = 1
        del store["x"]
        assert "x" not in store
        with pytest.raises(KeyError):
            del store["x"]

    def test_iter_lists_keys(self, nvm):
        store = NVMStore(nvm, "m")
        store["a"] = 1
        store["b"] = 2
        assert sorted(store) == ["a", "b"]


class TestTransactionEdgeCases:
    def test_commit_with_zero_pending_writes_is_a_noop(self, nvm):
        """An empty commit has nothing to linearize: no journal
        activity, no crash points, count 0."""
        txn = Transaction(nvm)
        spends = []
        assert txn.commit(spend=lambda: spends.append(1)) == 0
        assert spends == []
        assert txn.journal.status == "idle"

    def test_staged_value_overrides_nvm_until_rollback(self, nvm):
        cell = nvm.alloc("x", initial=7)
        txn = Transaction(nvm)
        txn.stage("x", 9)
        assert txn.read("x") == 9
        txn.rollback()
        assert txn.read("x") == 7
        assert cell.get() == 7

    def test_commit_pays_one_spend_per_protocol_step(self, nvm):
        """n staged writes -> n appends + 1 seal + n applies + 1 clear."""
        nvm.alloc("x", 0)
        nvm.alloc("y", 0)
        txn = Transaction(nvm)
        txn.stage("x", 1)
        txn.stage("y", 2)
        spends = []
        txn.commit(spend=lambda: spends.append(1))
        assert len(spends) == 2 * 2 + 2

    def test_interrupted_commit_rolls_back_before_seal(self, nvm):
        """A crash before the seal leaves a pending journal; recover()
        discards it and the target cells keep their old values."""
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 42)

        class Boom(Exception):
            pass

        def die_on_first_step():
            raise Boom

        with pytest.raises(Boom):
            txn.commit(spend=die_on_first_step)
        assert txn.journal.status == "pending"
        assert txn.journal.recover() == "rolled_back"
        assert cell.get() == 0
        assert txn.journal.status == "idle"

    def test_interrupted_commit_rolls_forward_after_seal(self, nvm):
        """A crash after the seal replays the journal to completion."""
        cell = nvm.alloc("x", initial=0)
        txn = Transaction(nvm)
        txn.stage("x", 42)
        steps = []

        class Boom(Exception):
            pass

        def die_on_third_step():
            steps.append(1)
            if len(steps) == 3:  # 1 append, 1 seal, die applying
                raise Boom

        with pytest.raises(Boom):
            txn.commit(spend=die_on_third_step)
        assert txn.journal.status == "committed"
        assert cell.get() == 0  # the apply never happened
        assert txn.journal.recover() == "rolled_forward"
        assert cell.get() == 42
        assert txn.journal.status == "idle"

    def test_journal_refuses_new_commit_while_in_flight(self, nvm):
        from repro.nvm.journal import CommitJournal

        journal = CommitJournal(nvm)
        journal.begin()
        nvm.alloc("x", 0)
        other = Transaction(nvm, journal=journal)
        other.stage("x", 1)
        with pytest.raises(NVMError):
            other.commit()

    def test_corrupt_committed_journal_is_discarded_not_replayed(self, nvm):
        from repro.nvm.journal import CommitJournal

        cell = nvm.alloc("x", initial=0)
        journal = CommitJournal(nvm)
        journal.begin()
        journal.append("x", 99)
        journal.seal()
        nvm.corrupt("txnlog.entries")
        assert journal.recover() == "corrupt"
        assert cell.get() == 0  # garbage entries were not applied

    def test_corrupt_status_cell_classified_as_corrupt(self, nvm):
        from repro.nvm.journal import CommitJournal

        journal = CommitJournal(nvm)
        nvm.cell("txnlog.status").set("garbage")
        assert journal.recover() == "corrupt"
        assert journal.status == "idle"


class TestIntegrity:
    def test_checksum_tracks_legitimate_writes(self, nvm):
        cell = nvm.alloc("x", initial=0)
        cell.set(123)
        assert nvm.verify("x")
        assert nvm.verify_all() == []

    def test_corrupt_is_silent_but_detectable(self, nvm):
        cell = nvm.alloc("x", initial=5)
        garbage = nvm.corrupt("x")
        assert cell.get() == garbage  # reads succeed with garbage
        assert garbage != 5
        assert not nvm.verify("x")
        assert nvm.verify_all() == ["x"]

    def test_restore_initial_repairs(self, nvm):
        cell = nvm.alloc("x", initial=5)
        cell.set(9)
        nvm.corrupt("x")
        assert nvm.restore_initial("x") == 5
        assert cell.get() == 5
        assert nvm.verify("x")

    def test_corrupt_preserves_type_for_common_values(self, nvm):
        for name, value in [("b", True), ("i", 7), ("f", 1.5),
                            ("s", "Init"), ("t", (1, 2)), ("l", [3])]:
            nvm.alloc(name, initial=value)
            corrupted = nvm.corrupt(name)
            assert type(corrupted) is type(value)
            assert corrupted != value

    def test_wear_out_raises_after_limit(self, nvm):
        cell = nvm.alloc("x", initial=0)
        nvm.set_write_limit("x", 2)
        cell.set(1)
        cell.set(2)
        assert nvm.is_worn("x")
        with pytest.raises(NVMError):
            cell.set(3)
        assert cell.get() == 2  # still readable

    def test_silent_wear_drops_writes(self, nvm):
        cell = nvm.alloc("x", initial=0)
        nvm.set_write_limit("x", 1, silent=True)
        cell.set(1)
        cell.set(2)  # dropped
        assert cell.get() == 1
        assert nvm.wear_dropped == 1
