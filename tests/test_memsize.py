"""Tests for the Table 2 memory accountant."""

import pytest

from repro.core.generator import generate_machines
from repro.memsize.model import (
    artemis_monitor_memory,
    artemis_runtime_memory,
    mayfly_runtime_memory,
    table2,
)
from repro.spec.validator import load_properties
from repro.workloads.health import BENCHMARK_SPEC, build_health_app, mayfly_config


@pytest.fixture(scope="module")
def reports():
    app = build_health_app()
    machines = generate_machines(load_properties(BENCHMARK_SPEC, app))
    return {r.component: r for r in table2(app, machines, mayfly_config())}


class TestTable2Shape:
    """The orderings Table 2 exhibits must hold for the benchmark."""

    def test_artemis_runtime_text_exceeds_mayfly(self, reports):
        assert (reports["ARTEMIS runtime"].text_bytes
                > reports["Mayfly runtime"].text_bytes)

    def test_monitor_text_is_largest(self, reports):
        assert (reports["ARTEMIS monitor"].text_bytes
                > reports["ARTEMIS runtime"].text_bytes)

    def test_artemis_runtime_fram_below_mayfly(self, reports):
        # Property state moved out of the runtime (paper: 4756 < 6354).
        assert (reports["ARTEMIS runtime"].fram_bytes
                < reports["Mayfly runtime"].fram_bytes)

    def test_monitor_fram_dominates(self, reports):
        assert (reports["ARTEMIS monitor"].fram_bytes
                > reports["Mayfly runtime"].fram_bytes)

    def test_ram_is_negligible(self, reports):
        for report in reports.values():
            assert report.ram_bytes <= 2

    def test_magnitudes_match_paper_order(self, reports):
        # Paper: 1152 / 1512 / 4644 .text; 6354 / 4756 / 15856 FRAM.
        assert 500 < reports["Mayfly runtime"].text_bytes < 3000
        assert 800 < reports["ARTEMIS runtime"].text_bytes < 3500
        assert 2500 < reports["ARTEMIS monitor"].text_bytes < 12000
        assert 3000 < reports["Mayfly runtime"].fram_bytes < 12000
        assert 3000 < reports["ARTEMIS runtime"].fram_bytes < 10000
        assert 8000 < reports["ARTEMIS monitor"].fram_bytes < 30000


class TestAccountantMechanics:
    def test_monitor_size_scales_with_properties(self):
        app = build_health_app()
        small = generate_machines(load_properties(
            "accel { maxTries: 10 onFail: skipPath Path: 2; }", app))
        big = generate_machines(load_properties(BENCHMARK_SPEC, app))
        assert (artemis_monitor_memory(app, big).text_bytes
                > artemis_monitor_memory(app, small).text_bytes)
        assert (artemis_monitor_memory(app, big).fram_bytes
                > artemis_monitor_memory(app, small).fram_bytes)

    def test_runtime_fram_scales_with_tasks(self):
        from repro.taskgraph.builder import AppBuilder

        small_app = AppBuilder("s").task("a").path(1, ["a"]).build()
        assert (artemis_runtime_memory(build_health_app()).fram_bytes
                > artemis_runtime_memory(small_app).fram_bytes)

    def test_mayfly_fram_scales_with_rules(self):
        app = build_health_app()
        from repro.baselines.mayfly import Collection, MayflyConfig

        empty = mayfly_runtime_memory(app, MayflyConfig())
        loaded = mayfly_runtime_memory(app, mayfly_config())
        assert loaded.fram_bytes > empty.fram_bytes

    def test_report_row_formatting(self, reports):
        row = reports["ARTEMIS monitor"].row()
        assert ".text=" in row and "FRAM=" in row
