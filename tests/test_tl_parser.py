"""Past-time temporal-logic frontend: parser, printer, diagnostics.

Three layers:

* **Round-trip** — hypothesis draws random formulas over a small
  alphabet and checks ``parse_formula_text(format_formula(f)) == f``
  exactly (formula equality ignores source positions by construction).
  Bounds are drawn from integer second/minute values because
  ``format_duration``/``parse_duration`` round-trip those exactly.
* **Diagnostics** — one unit test per rejection the frontend makes
  sourced and hinted: future-time operators (D1), ill-formed intervals
  (D2), nonzero lower bounds (D3), unknown tasks (D4), unknown data
  keys (D5), and a bounded ``since`` (D6). Each asserts the error
  carries a position and a hint, which is what the ``check`` CLI
  renders as a caret diagnostic.
* **Spec round-trip** — temporal properties survive
  ``load_properties(print_spec(props), app)`` like every other kind.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecSyntaxError, SpecValidationError
from repro.spec.printer import print_spec
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.tl import (
    AndF,
    DataCmp,
    Ended,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    Since,
    Started,
    formula_key,
    format_formula,
    normalize,
    parse_formula_text,
)

TASKS = ("sample", "send")
KEYS = ("temp", "energy")
OPS = ("<", "<=", ">", ">=", "==", "!=")

_atom = st.one_of(
    st.builds(Lit, value=st.booleans()),
    st.builds(Started, task=st.sampled_from(TASKS)),
    st.builds(Ended, task=st.sampled_from(TASKS)),
    st.builds(DataCmp, key=st.sampled_from(KEYS), op=st.sampled_from(OPS),
              value=st.one_of(
                  st.integers(min_value=-100, max_value=100).map(float),
                  st.sampled_from([0.5, 38.5, -2.25]))),
)

#: Interval bounds in whole seconds/minutes: these survive
#: format_duration -> parse_duration exactly.
_hi = st.one_of(st.integers(min_value=1, max_value=590).map(float),
                st.integers(min_value=1, max_value=9).map(lambda m: m * 60.0))


@st.composite
def _bounds(draw):
    hi = draw(_hi)
    lo = draw(st.sampled_from([0.0, hi]) if hi <= 590 else st.just(0.0))
    return lo, hi


def _unary(child):
    @st.composite
    def bounded(draw, cls):
        lo, hi = draw(_bounds())
        return cls(operand=draw(child), lo=lo, hi=hi)

    return st.one_of(
        st.builds(NotF, operand=child),
        st.builds(Once, operand=child),
        st.builds(Historically, operand=child),
        bounded(Once),
        bounded(Historically),
    )


def formulas():
    """Random surface formulas (pre-normalization language)."""
    return st.recursive(
        _atom,
        lambda child: st.one_of(
            _unary(child),
            st.builds(AndF, left=child, right=child),
            st.builds(OrF, left=child, right=child),
            st.builds(Implies, left=child, right=child),
            st.builds(Since, left=child, right=child),
        ),
        max_leaves=12,
    )


class TestRoundTrip:
    @given(f=formulas())
    @settings(max_examples=300, deadline=None)
    def test_print_then_parse_is_identity(self, f):
        text = format_formula(f)
        assert parse_formula_text(text) == f, text

    @given(f=formulas())
    @settings(max_examples=200, deadline=None)
    def test_normalize_is_idempotent(self, f):
        once = normalize(f)
        assert normalize(once) == once

    @given(f=formulas())
    @settings(max_examples=200, deadline=None)
    def test_normalized_formulas_round_trip_too(self, f):
        g = normalize(f)
        assert parse_formula_text(format_formula(g)) == g

    @given(f=formulas())
    @settings(max_examples=200, deadline=None)
    def test_formula_key_is_stable_across_round_trip(self, f):
        assert formula_key(parse_formula_text(format_formula(f))) \
            == formula_key(f)

    def test_precedence_pins(self):
        f = parse_formula_text("started(sample) -> not ended(send) "
                               "or once started(send) and true")
        # -> is loosest; and binds tighter than or; unary tightest.
        assert isinstance(f, Implies)
        assert isinstance(f.right, OrF)
        assert isinstance(f.right.right, AndF)
        since = parse_formula_text("not ended(send) since ended(sample)")
        assert isinstance(since, Since)
        assert isinstance(since.left, NotF)


def _app():
    return (AppBuilder("demo")
            .task("sample", monitored_vars=("temp",))
            .task("send")
            .path(1, ["sample", "send"])
            .build())


def _load(formula_text, app=None):
    spec = ("send: {\n"
            f"    temporal: {formula_text} onFail: skipPath Path: 1;\n"
            "}\n")
    return load_properties(spec, app if app is not None else _app())


class TestDiagnostics:
    """One test per sourced rejection; every error carries a position
    and a hint (the caret-diagnostic contract of the check CLI)."""

    def test_d1_future_operator_rejected_at_parse_time(self):
        with pytest.raises(SpecSyntaxError) as err:
            _load("eventually ended(sample)")
        assert "future-time operator" in str(err.value)
        assert err.value.line == 2 and err.value.column == 15
        assert "once" in err.value.hint
        assert err.value.width == len("eventually")

    @pytest.mark.parametrize("op,dual", [
        ("always", "historically"), ("globally", "historically"),
        ("finally", "once"), ("until", "since"),
    ])
    def test_d1_covers_every_future_keyword(self, op, dual):
        with pytest.raises(SpecSyntaxError) as err:
            parse_formula_text(f"{op} ended(sample)"
                               if op != "until"
                               else f"true {op} ended(sample)")
        assert dual in err.value.hint

    def test_d2_empty_interval_rejected(self):
        with pytest.raises(SpecSyntaxError) as err:
            _load("once[5s, 2s] ended(sample)")
        assert "empty time interval" in str(err.value)
        assert err.value.hint

    def test_d2_negative_bound_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_formula_text("once[-1, 2] ended(sample)")

    def test_d3_nonzero_lower_bound_rejected_by_validator(self):
        with pytest.raises(SpecValidationError) as err:
            _load("once[2s, 5s] ended(sample)")
        assert "not monitorable with constant state" in str(err.value)
        assert err.value.line == 2
        assert "once[0,5s]" in err.value.hint

    def test_d3_historically_nonzero_lower_bound_rejected(self):
        with pytest.raises(SpecValidationError) as err:
            _load("historically[1s, 5s] ended(sample)")
        assert "historically[0,5s]" in err.value.hint

    def test_d4_unknown_task_rejected(self):
        with pytest.raises(SpecValidationError) as err:
            _load("once ended(nosuch)")
        assert "unknown task" in str(err.value)
        assert "sample" in err.value.hint  # the hint lists real tasks

    def test_d5_unknown_data_key_rejected(self):
        with pytest.raises(SpecValidationError) as err:
            _load("data(nokey) > 3")
        assert "unknown key" in str(err.value)
        assert "temp" in err.value.hint

    def test_d5_energy_is_always_a_known_key(self):
        props = _load("data(energy) > 0.5")
        assert len(props) == 1

    def test_d6_bounded_since_rejected_at_parse_time(self):
        with pytest.raises(SpecSyntaxError) as err:
            parse_formula_text("true since[0, 5s] ended(sample)")
        assert "does not take a time bound" in str(err.value)
        assert err.value.hint


class TestSpecRoundTrip:
    SPEC = """
send: {
    temporal: started(send) -> once[0, 5min] ended(sample) onFail: restartPath Path: 1;
    temporal: not ended(send) since ended(sample) at: end label: quiet onFail: skipPath Path: 1;
    maxTries: 3 onFail: skipPath Path: 1;
}
"""

    def test_print_then_load_round_trips(self):
        app = _app()
        props = load_properties(self.SPEC, app)
        reloaded = load_properties(print_spec(props), app)
        assert [p.machine_name() for p in props] \
            == [p.machine_name() for p in reloaded]
        assert [formula_key(p.formula) for p in props
                if p.kind == "temporal"] \
            == [formula_key(p.formula) for p in reloaded
                if p.kind == "temporal"]

    def test_at_and_label_clauses_survive(self):
        app = _app()
        props = load_properties(self.SPEC, app)
        text = print_spec(props)
        assert "at: end" in text and "label: quiet" in text
