"""Monitor bundles: wire round-trips, delta encoding, and corruption.

The hypothesis tests reuse the random property generators from
``test_differential_monitors.py``: a bundle built from *any* generated
monitor set must survive the binary wire format byte-exactly, delta
encoding against any base must reconstruct the exact target, and any
bit flipped in the payload must be rejected by the CRC before a single
slot cell is written — a corrupted update can never half-install.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import generate_machines
from repro.errors import FleetError
from repro.fleet import (
    BundleDelta,
    MonitorBundle,
    apply_delta,
    build_bundle,
    compat_diff,
    decode_wire,
)
from repro.statemachine.codegen_python import generate_python_source
from repro.statemachine.textual import print_machine
from repro.verify.workloads import OTA_SPEC_V1, OTA_SPEC_V2, _ota_app, _ota_artemis
from tests.test_differential_monitors import any_property

_props = st.lists(any_property(), min_size=1, max_size=5)
_versions = st.integers(min_value=1, max_value=10_000)


def bundle_from_props(props, version, name="monitor"):
    """A bundle straight from property objects (no spec text needed:
    the machines and fingerprint are what the wire format protects).

    Random property lists can repeat a (kind, task, path) combination,
    which a validated spec never does; keep the last machine per name,
    matching the payload's name-keyed mapping.
    """
    machines = {m.name: m for m in generate_machines(props)}
    textual = tuple(sorted((n, print_machine(m)) for n, m in machines.items()))
    sources = "\n".join(generate_python_source(m)
                        for _, m in sorted(machines.items()))
    return MonitorBundle(
        name=name,
        version=version,
        spec=f"<{len(props)} random properties>",
        machines=textual,
        fingerprint=hashlib.sha256(sources.encode("utf-8")).hexdigest(),
    )


class TestWireRoundTrip:
    @given(props=_props, version=_versions)
    @settings(max_examples=60, deadline=None)
    def test_full_bundle_round_trips(self, props, version):
        bundle = bundle_from_props(props, version)
        decoded = decode_wire(bundle.to_wire())
        assert isinstance(decoded, MonitorBundle)
        assert decoded == bundle
        assert decoded.content_hash == bundle.content_hash

    @given(props=_props, version=_versions)
    @settings(max_examples=30, deadline=None)
    def test_wire_is_deterministic(self, props, version):
        bundle = bundle_from_props(props, version)
        assert bundle.to_wire() == bundle.to_wire()

    def test_spec_built_bundle_round_trips(self):
        app = _ota_app()
        bundle = build_bundle(OTA_SPEC_V1, app, version=1)
        assert decode_wire(bundle.to_wire()) == bundle


class TestDeltaEncoding:
    @given(base_props=_props, target_props=_props,
           versions=st.tuples(_versions, _versions))
    @settings(max_examples=60, deadline=None)
    def test_delta_reconstructs_exact_target(self, base_props, target_props,
                                             versions):
        base = bundle_from_props(base_props, versions[0])
        target = bundle_from_props(target_props, versions[1])
        delta = base.delta_to(target)
        decoded = decode_wire(delta.to_wire())
        assert isinstance(decoded, BundleDelta)
        assert apply_delta(base, decoded) == target

    @given(props=_props, versions=st.tuples(_versions, _versions))
    @settings(max_examples=30, deadline=None)
    def test_identical_machines_are_omitted_from_the_wire(self, props,
                                                          versions):
        base = bundle_from_props(props, versions[0])
        target = bundle_from_props(props, versions[1])
        delta = base.delta_to(target)
        assert delta.changed == ()
        assert delta.removed == ()
        # Still a faithful encoding of the (re-versioned) target.
        assert apply_delta(base, delta) == target

    def test_delta_against_wrong_base_is_rejected(self):
        app = _ota_app()
        v1 = build_bundle(OTA_SPEC_V1, app, version=1)
        v2 = build_bundle(OTA_SPEC_V2, app, version=2)
        delta = v1.delta_to(v2)
        with pytest.raises(FleetError):
            apply_delta(v2, delta)  # v2 is not the encoded base

    def test_compat_diff_classifies_the_ota_update(self):
        app = _ota_app()
        v1 = build_bundle(OTA_SPEC_V1, app, version=1)
        v2 = build_bundle(OTA_SPEC_V2, app, version=2)
        diff = compat_diff(v1, v2)
        assert diff.changed == ("maxTries_sense_p1",)
        assert diff.added == ("collect_send_p1",)
        assert diff.removed == ()


class TestCorruption:
    @given(props=_props, version=_versions,
           byte_frac=st.floats(min_value=0.0, max_value=1.0,
                               exclude_max=True),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_payload_bit_flip_rejected_by_crc(self, props, version,
                                              byte_frac, bit):
        wire = bytearray(bundle_from_props(props, version).to_wire())
        header_size = 16
        index = header_size + int(byte_frac * (len(wire) - header_size))
        wire[index] ^= 1 << bit
        with pytest.raises(FleetError):
            decode_wire(bytes(wire))

    def test_truncated_wire_rejected(self):
        wire = build_bundle(OTA_SPEC_V1, _ota_app(), version=1).to_wire()
        with pytest.raises(FleetError):
            decode_wire(wire[:10])
        with pytest.raises(FleetError):
            decode_wire(wire[:-3])

    def test_foreign_magic_rejected(self):
        wire = bytearray(build_bundle(OTA_SPEC_V1, _ota_app(),
                                      version=1).to_wire())
        wire[0:4] = b"ELF\x7f"
        with pytest.raises(FleetError):
            decode_wire(bytes(wire))

    def test_corrupt_update_never_half_installs(self):
        """End to end: a device offered a bit-flipped update rejects it
        whole — the transfer is dropped, the slots never touched, and
        the v1 monitor set keeps running to completion."""
        device, runtime = _ota_artemis()
        wire = bytearray(
            build_bundle(OTA_SPEC_V2, _ota_app(), version=2).to_wire())
        wire[40] ^= 0x10
        runtime.push(bytes(wire), 2)
        result = device.run(runtime, runs=2, max_time_s=7200.0)
        assert result.completed
        assert device.trace.count("ota_reject") == 1
        assert device.trace.count("ota_activate") == 0
        assert runtime.installer.active_version == 1
        assert runtime.installer.standby_bundle() is None
        assert not runtime.installer.migration_pending
