"""Partial-order reduction: soundness, reach, and determinism.

Three claims are pinned here:

* **Projection soundness** — :class:`FingerprintPolicy` evaluates
  journal recovery symbolically; its pre-crash projection must equal
  the fingerprint actually measured after recovery runs, for every
  journal phase.
* **Verdict preservation** — POR and the unpruned search return
  identical verdicts (differential tests at bounds 1-3), while POR
  reaches bound 4 on the fleet scenarios within the default budget.
* **Determinism** — exploration order and the resulting report are
  byte-stable across interpreter hash seeds (subprocess regression).
"""

import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory
from repro.verify import (
    CrashScheduleExplorer,
    FingerprintPolicy,
    broken_commit_ordering,
    get_scenario,
)


class TestProjectionSoundness:
    def _journal(self, phase):
        nvm = NonVolatileMemory()
        nvm.alloc("a", 1)
        nvm.alloc("b", {"v": 2})
        journal = CommitJournal(nvm)
        if phase >= 1:
            journal.begin()
        if phase >= 2:
            journal.append("a", 10)
            journal.append("b", {"v": 20})
        if phase >= 3:
            journal.seal()
        return nvm, journal

    @pytest.mark.parametrize("phase", [0, 1, 2, 3])
    def test_projection_equals_post_recovery_fingerprint(self, phase):
        nvm, journal = self._journal(phase)
        policy = FingerprintPolicy()
        projected = policy.fingerprint(nvm)
        journal.recover()
        assert policy.fingerprint(nvm) == projected, (
            f"phase {phase}: symbolic recovery diverged from the real one")

    def test_pending_and_committed_project_differently(self):
        nvm_p, _ = self._journal(2)
        nvm_c, _ = self._journal(3)
        policy = FingerprintPolicy()
        # Rolled back vs rolled forward end in different durable states.
        assert policy.fingerprint(nvm_p) != policy.fingerprint(nvm_c)

    def test_time_cells_are_masked(self):
        policy = FingerprintPolicy()
        nvm = NonVolatileMemory()
        nvm.alloc("rt.end_ts", 1.0)
        before = policy.fingerprint(nvm)
        nvm.cell("rt.end_ts").set(99.0)
        assert policy.fingerprint(nvm) == before


class TestVerdictPreservation:
    @pytest.mark.parametrize("workload,runtime,bound", [
        ("health", "checkpoint", 3),
        ("synthetic", "chain", 2),
    ])
    def test_differential_vs_unpruned(self, workload, runtime, bound):
        scen = get_scenario(workload, runtime)
        plain = scen.explorer().explore(bound=bound, budget=4000,
                                        stop_on_first=False)
        por = scen.explorer().explore(bound=bound, budget=4000,
                                      stop_on_first=False, por=True)
        assert not plain.truncated and not por.truncated
        assert por.ok == plain.ok
        assert ([c.schedule for c in por.counterexamples]
                == [c.schedule for c in plain.counterexamples])
        assert por.schedules_checked <= plain.schedules_checked

    def test_ota_bound4_exhaustive_within_default_budget(self):
        report = get_scenario("ota", "artemis").explorer().explore(
            bound=4, budget=400, stop_on_first=False, por=True)
        assert report.ok, report.summary()
        assert not report.truncated
        assert report.bound == 4 and report.por
        assert report.pruned_subtrees > 0

    def test_por_still_catches_injected_bug(self):
        scen = get_scenario("ota", "artemis")
        with broken_commit_ordering():
            report = scen.explorer().explore(bound=2, budget=400, por=True)
        assert not report.ok
        assert len(report.counterexamples[0].schedule) >= 1

    def test_por_rejects_time_sensitive_scenarios(self):
        scen = get_scenario("health", "checkpoint")
        explorer = CrashScheduleExplorer(
            scen.build, run_kwargs=scen.run_kwargs,
            time_sensitive=True, name="timed")
        with pytest.raises(ReproError, match="time_sensitive"):
            explorer.explore(por=True)

    def test_summary_reports_pruning(self):
        report = get_scenario("health", "checkpoint").explorer().explore(
            bound=2, budget=400, stop_on_first=False, por=True)
        assert "POR pruned" in report.summary()


_DETERMINISM_SCRIPT = """\
from repro.verify import get_scenario
scen = get_scenario("synthetic", "chain")
report = scen.explorer().explore(bound=2, budget={budget},
                                 stop_on_first=False,
                                 strategy={strategy!r}, por=True)
print((report.schedules_checked, report.runs_executed,
       report.pruned_subtrees, report.truncated,
       report.depth1_crash_points,
       [c.schedule for c in report.counterexamples]))
"""


class TestDeterminism:
    def _run(self, hash_seed, strategy, budget):
        script = _DETERMINISM_SCRIPT.format(strategy=strategy, budget=budget)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(hash_seed)},
            check=True,
        )
        return result.stdout

    @pytest.mark.parametrize("strategy", ["bfs", "dfs"])
    def test_report_stable_across_hash_seeds(self, strategy):
        # A truncating budget makes exploration *order* observable in
        # the report: if child ordering leaked dict/set iteration, the
        # schedules checked before the cutoff would differ.
        first = self._run(0, strategy, budget=25)
        second = self._run(424242, strategy, budget=25)
        assert first == second

    def test_same_process_repeatability(self):
        scen = get_scenario("health", "checkpoint")
        a = scen.explorer().explore(bound=2, budget=100,
                                    stop_on_first=False, por=True)
        b = scen.explorer().explore(bound=2, budget=100,
                                    stop_on_first=False, por=True)
        assert (a.schedules_checked, a.pruned_subtrees) == \
            (b.schedules_checked, b.pruned_subtrees)
        assert a.summary() == b.summary()
