"""Tests for the WAR/idempotence memory-model oracles.

Unit tests drive :class:`MemoryModelChecker` over hand-built access
logs so every oracle rule is pinned individually; integration tests
prove the property the checker exists for — a verdict from a *single*
intermittent run, with no continuous-power twin — including the
mutation self-test (an injected write-privatization bug must be caught)
and the interleaved-commit regression found by the ota-delta scenario.
"""

import pytest

from repro.errors import ReproError
from repro.nvm.accesslog import AccessLog
from repro.nvm.transaction import Transaction
from repro.verify import (
    MemoryModelChecker,
    broken_write_privatization,
    get_scenario,
    run_memory_model,
    run_war_self_test,
)


def _log(events):
    """Build an AccessLog from (method, *args) tuples."""
    log = AccessLog()
    for name, *args in events:
        getattr(log, name)(*args)
    return log


def _crash_then_recover(log, outcome="rolled_back"):
    log.mark_reboot()
    log.on_marker("recover", "txnlog", outcome)


class TestWarOracle:
    def _war_log(self, outcome="rolled_back"):
        log = _log([
            ("on_read", "acc"),
            ("on_write", "acc", 7),
        ])
        _crash_then_recover(log, outcome)
        log.on_stage("acc", 7)
        return log

    def test_read_then_write_then_crash_is_manifest(self):
        report = MemoryModelChecker().check(self._war_log())
        assert not report.ok
        (finding,) = report.manifest_findings
        assert (finding.kind, finding.cell) == ("war", "acc")

    def test_rolled_forward_recovery_suppresses_manifest(self):
        # The commit linearized: the region does not re-execute, so the
        # hazard cannot manifest.
        report = MemoryModelChecker().check(
            self._war_log(outcome="rolled_forward"))
        assert report.ok

    def test_write_first_is_not_war(self):
        log = _log([
            ("on_write", "acc", 7),
            ("on_read", "acc"),
        ])
        _crash_then_recover(log)
        assert MemoryModelChecker().check(log).ok

    def test_progress_cells_exempt(self):
        checker = MemoryModelChecker(progress_cells=("acc",))
        assert checker.check(self._war_log()).ok

    def test_journal_cells_exempt(self):
        log = _log([
            ("on_read", "txnlog.status"),
            ("on_write", "txnlog.status", "pending"),
            ("on_marker", "begin", "txnlog"),
        ])
        _crash_then_recover(log)
        assert MemoryModelChecker().check(log).ok

    def test_uninterrupted_region_is_latent_only(self):
        log = _log([
            ("on_read", "acc"),
            ("on_write", "acc", 7),
        ])
        assert MemoryModelChecker().check(log).findings == []
        latent = MemoryModelChecker(latent=True).check(log)
        assert latent.ok, "latent findings never fail the verdict"
        (finding,) = latent.latent_findings
        assert (finding.kind, finding.cell) == ("war", "acc")


class TestIdempotenceOracle:
    def test_diverging_reexecution_is_flagged(self):
        log = _log([
            ("on_stage", "chan.a", 1),
        ])
        _crash_then_recover(log)
        log.on_stage("chan.a", 2)  # same cell, different value
        report = MemoryModelChecker().check(log)
        (finding,) = report.manifest_findings
        assert finding.kind == "idempotence"

    def test_identical_reexecution_passes(self):
        log = _log([("on_stage", "chan.a", 1), ("on_stage", "chan.b", 2)])
        _crash_then_recover(log)
        log.on_stage("chan.a", 1)
        log.on_stage("chan.b", 2)
        assert MemoryModelChecker().check(log).ok

    def test_shorter_committed_reexecution_is_flagged(self):
        log = _log([("on_stage", "chan.a", 1), ("on_stage", "chan.b", 2)])
        _crash_then_recover(log)
        log.on_stage("chan.a", 1)
        log.on_marker("clear", "txnlog")  # committed with fewer stages
        report = MemoryModelChecker().check(log)
        (finding,) = report.manifest_findings
        assert (finding.kind, finding.cell) == ("idempotence", "chan.b")

    def test_interrupted_reexecution_is_inconclusive(self):
        log = _log([("on_stage", "chan.a", 1), ("on_stage", "chan.b", 2)])
        _crash_then_recover(log)
        log.on_stage("chan.a", 1)
        _crash_then_recover(log)
        log.on_stage("chan.a", 1)
        log.on_stage("chan.b", 2)
        report = MemoryModelChecker().check(log)
        assert report.ok
        assert report.inconclusive

    def test_interleaved_unrelated_commit_is_skipped(self):
        # Regression (found by the ota-delta scenario at bound 4): a
        # commit queued before the crash — the OTA activation staging
        # slots.* — linearizes at the boot path boundary *ahead of* the
        # interrupted task's re-execution. The oracle must match the
        # re-execution by staged-cell overlap, not take the first
        # staging region blindly.
        log = _log([("on_stage", "chan.a", 1)])
        _crash_then_recover(log)
        log.on_stage("slots.active", 9)
        log.on_marker("clear", "slots_txn")
        log.on_stage("chan.a", 1)
        assert MemoryModelChecker().check(log).ok

    def test_disjoint_reexecution_footprint_is_flagged(self):
        # No staging region overlaps the attempt: the fallback compares
        # against the first one, so a re-execution that writes entirely
        # different cells still fails.
        log = _log([("on_stage", "chan.a", 1)])
        _crash_then_recover(log)
        log.on_stage("chan.z", 5)
        report = MemoryModelChecker().check(log)
        (finding,) = report.manifest_findings
        assert finding.kind == "idempotence"

    def test_nothing_staged_is_vacuously_idempotent(self):
        log = _log([("on_write", "cursor", 3)])
        _crash_then_recover(log)
        report = MemoryModelChecker().check(log)
        assert report.ok and not report.inconclusive


class TestSingleRunVerdicts:
    def test_clean_scenario_passes_from_one_crashing_run(self):
        scen = get_scenario("synthetic", "artemis")
        report = run_memory_model(scen.build, schedule=(5,),
                                  run_kwargs=scen.run_kwargs)
        assert report.ok, report.describe()
        assert report.crashes == 1
        assert report.checked_regions > 0

    def test_latent_survey_on_crash_free_run(self):
        scen = get_scenario("ota", "artemis")
        report = run_memory_model(scen.build, schedule=(),
                                  run_kwargs=scen.run_kwargs, latent=True)
        assert report.ok, report.describe()
        assert report.crashes == 0


class TestWarMutationSelfTest:
    def test_injected_privatization_bug_caught_without_twin(self):
        schedule, report = run_war_self_test()
        assert len(schedule) == 1, "a single crash must suffice"
        assert not report.ok
        kinds = {f.kind for f in report.manifest_findings}
        assert "war" in kinds
        cells = {f.cell for f in report.manifest_findings}
        assert any(not c.startswith("txnlog.") for c in cells)

    def test_flag_restored(self):
        assert Transaction.TEST_WRITE_THROUGH_STAGE is False

    def test_mutation_invisible_crash_free(self):
        scen = get_scenario("ota", "artemis")
        with broken_write_privatization():
            report = run_memory_model(scen.build, schedule=(),
                                      run_kwargs=scen.run_kwargs)
        assert report.ok, "write-through is unobservable without a crash"

    def test_self_test_raises_when_blind(self):
        with pytest.raises(ReproError):
            run_war_self_test(max_crash_index=0)


class TestOtaDeltaRegression:
    def test_crash_inside_send_commit_with_queued_swap(self):
        # The exact schedule that exposed the mis-attribution: payment
        # 49 interrupts the send-task commit while an OTA activation is
        # queued; the activation linearizes first on reboot.
        scen = get_scenario("ota-delta", "artemis")
        report = run_memory_model(scen.build, schedule=(49,),
                                  run_kwargs=scen.run_kwargs)
        assert report.ok, report.describe()
