"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.energy.environment import EnergyEnvironment
from repro.nvm.memory import NonVolatileMemory
from repro.sim.device import Device
from repro.taskgraph.builder import AppBuilder


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.c from the current C code "
             "generator instead of comparing against them",
    )


@pytest.fixture
def nvm() -> NonVolatileMemory:
    return NonVolatileMemory()


@pytest.fixture
def continuous_device() -> Device:
    return Device(EnergyEnvironment.continuous())


@pytest.fixture
def two_task_app():
    """Minimal app: sense -> send on one path."""
    return (
        AppBuilder("mini")
        .task("sense", body=lambda ctx: ctx.write("x", ctx.sample("adc")))
        .task("send", body=lambda ctx: ctx.append("sent", ctx.read("x")))
        .path(1, ["sense", "send"])
        .sensor("adc", lambda t: 21.5)
        .build()
    )


@pytest.fixture
def health_app():
    from repro.workloads.health import build_health_app

    return build_health_app()
