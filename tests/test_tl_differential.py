"""Differential testing of the temporal-logic compilation pipeline.

The compiled shared-subformula DAG must agree with the naive reference
semantics everywhere:

* **DAG vs reference monitor** — hypothesis draws random compilable
  formulas, ``build_monitor_plan`` compiles them (shared sub-monitors,
  extern wiring, dependency order), and a seeded event stream drives
  the machine pipeline next to :class:`~repro.tl.ReferenceMonitor`
  (a full-history evaluator of the *surface* semantics, so the
  normalizer is under test too). At every trigger point the root must
  fire exactly when the reference says the formula is false.
* **Sharing is unobservable** — the ``share_subformulas=False`` plan
  (one private sub-monitor set per property) fires identically.
* **Backend byte-identity** — interpreted, generated-Python, and the
  lockstep batch kernel agree on verdicts, states, and every variable
  after every event (C is pinned by the golden files).
* **Scale** — a 200-property spec compiles to measurably fewer
  machines than properties and reports the ratio through the CLI.
* **Shared pricing** — ``derive_priorities`` attributes each shared
  sub-monitor's cost exactly once, to its cheapest owning root.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze, derive_priorities
from repro.core.actions import ActionType
from repro.core.events import MonitorEvent
from repro.core.generator import build_monitor_plan
from repro.core.properties import Temporal
from repro.energy.power import PowerModel, TaskCost
from repro.sim.batch import HAVE_NUMPY, BatchMachineSet
from repro.statemachine.codegen_python import compile_machine
from repro.statemachine.interpreter import MachineInstance
from repro.taskgraph.builder import AppBuilder
from repro.tl import (
    AndF,
    DataCmp,
    Ended,
    Historically,
    Implies,
    Lit,
    NotF,
    Once,
    OrF,
    ReferenceMonitor,
    Since,
    Started,
)

TASKS = ("A", "B", "C")
KEYS = ("temp", "energy")

_atom = st.one_of(
    st.builds(Lit, value=st.booleans()),
    st.builds(Started, task=st.sampled_from(TASKS)),
    st.builds(Ended, task=st.sampled_from(TASKS)),
    st.builds(DataCmp, key=st.sampled_from(KEYS),
              op=st.sampled_from(("<", "<=", ">", ">=", "==", "!=")),
              value=st.integers(min_value=-3, max_value=3).map(float)),
)

#: Upper window bounds comparable to the stream's ~4s event spacing,
#: so bounded-once verdicts flip both ways.
_window = st.sampled_from([2.0, 5.0, 12.0, 40.0])


def compilable_formulas():
    """Random formulas the validator would accept (zero lower bounds)."""
    return st.recursive(
        _atom,
        lambda child: st.one_of(
            st.builds(NotF, operand=child),
            st.builds(Once, operand=child),
            st.builds(Once, operand=child, lo=st.just(0.0), hi=_window),
            st.builds(Historically, operand=child),
            st.builds(Historically, operand=child,
                      lo=st.just(0.0), hi=_window),
            st.builds(AndF, left=child, right=child),
            st.builds(OrF, left=child, right=child),
            st.builds(Implies, left=child, right=child),
            st.builds(Since, left=child, right=child),
        ),
        max_leaves=10,
    )


@st.composite
def temporal_property(draw):
    """A compilable Temporal property with random trigger/scope."""
    return Temporal(
        task=draw(st.sampled_from(TASKS)),
        on_fail=draw(st.sampled_from(list(ActionType))),
        path=draw(st.one_of(st.none(),
                            st.integers(min_value=0, max_value=2))),
        formula=draw(compilable_formulas()),
        at=draw(st.sampled_from(("start", "end", "always"))),
    )


def _dedup(props):
    seen, unique = set(), []
    for prop in props:
        name = prop.machine_name()
        if name not in seen:
            seen.add(name)
            unique.append(prop)
    return unique


def make_stream(seed, length):
    """Seeded random events; ``temp`` is sometimes absent so the
    ``hasData`` leg of data predicates is exercised."""
    rng = random.Random(seed)
    t, events = 0.0, []
    for _ in range(length):
        t += rng.uniform(0.5, 4.0)
        data = {"energy": float(rng.randrange(-3, 4))}
        if rng.random() < 0.7:
            data["temp"] = float(rng.randrange(-3, 4))
        events.append(MonitorEvent(
            rng.choice(["startTask", "endTask"]), rng.choice(TASKS),
            t, data, path=rng.randrange(3)))
    return events


def _instances(plan, factory):
    """Instantiate every machine with extern wired to its peers."""
    by_name = {}

    def extern(machine_name, var_name):
        return by_name[machine_name].get(var_name)

    out = []
    for machine in plan.machines:
        inst = factory(machine, extern)
        by_name[machine.name] = inst
        out.append((machine, inst))
    return out


def _triggered(prop, event):
    if prop.path is not None and event.path != prop.path:
        return False
    if prop.at == "always":
        return True
    kind = "startTask" if prop.at == "start" else "endTask"
    return event.kind == kind and event.task == prop.task


def run_compiled(props, events, share=True, factory=None):
    """Fire decisions per property per event through the machine
    pipeline (machines stepped in plan order, as the monitor does)."""
    if factory is None:
        factory = lambda m, ext: MachineInstance(m, extern=ext)  # noqa: E731
    plan = build_monitor_plan(props, share_subformulas=share)
    pairs = _instances(plan, factory)
    roots = {p.machine_name(): p for p in props}
    fired = {p.machine_name(): [] for p in props}
    for event in events:
        hits = set()
        for machine, inst in pairs:
            if inst.on_event(event) and machine.name in roots:
                hits.add(machine.name)
        for name in fired:
            fired[name].append(name in hits)
    return fired


def run_reference(props, events):
    """The naive oracle: one full-history evaluator per property."""
    refs = {p.machine_name(): ReferenceMonitor(p.formula) for p in props}
    fired = {p.machine_name(): [] for p in props}
    for event in events:
        for prop in props:
            value = refs[prop.machine_name()].update(event)
            fired[prop.machine_name()].append(
                _triggered(prop, event) and not value)
    return fired


class TestCompiledDagMatchesReference:
    @given(props=st.lists(temporal_property(), min_size=1, max_size=5),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=0, max_value=40))
    @settings(max_examples=150, deadline=None)
    def test_shared_dag_fires_exactly_like_the_reference(
            self, props, seed, length):
        props = _dedup(props)
        events = make_stream(seed, length)
        assert run_compiled(props, events) == run_reference(props, events)

    @given(props=st.lists(temporal_property(), min_size=2, max_size=5),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sharing_is_unobservable(self, props, seed):
        props = _dedup(props)
        events = make_stream(seed, 30)
        assert run_compiled(props, events, share=True) \
            == run_compiled(props, events, share=False)

    @given(props=st.lists(temporal_property(), min_size=1, max_size=4),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_generated_python_matches_interpreter(self, props, seed):
        props = _dedup(props)
        events = make_stream(seed, 30)
        generated = run_compiled(
            props, events,
            factory=lambda m, ext: compile_machine(m)(extern=ext))
        assert generated == run_compiled(props, events)


class TestBatchLockstep:
    def _backends(self):
        return ("numpy", "python") if HAVE_NUMPY else ("python",)

    @given(props=st.lists(temporal_property(), min_size=1, max_size=4),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_batch_kernel_matches_interpreter_on_every_lane(
            self, props, seed):
        props = _dedup(props)
        plan = build_monitor_plan(props)
        events = make_stream(seed, 25)
        for backend in self._backends():
            batch = BatchMachineSet(plan.machines, n_lanes=2,
                                    backend=backend)
            pairs = _instances(
                plan, lambda m, ext: MachineInstance(m, extern=ext))
            for i, event in enumerate(events):
                scalar = []
                for machine, inst in pairs:
                    scalar.extend((v.machine, v.action, v.path)
                                  for v in inst.on_event(event))
                lanes = batch.step(event)
                for lane in range(2):
                    got = [(v.machine, v.action, v.path)
                           for v in lanes.get(lane, [])]
                    assert got == scalar, (
                        f"lane {lane} diverged at event {i} on {backend}")
                for machine, inst in pairs:
                    for lane in range(2):
                        lane_vars = batch.lane_store(machine.name, lane)
                        assert lane_vars["state"] == inst.state
                        for var in machine.variables:
                            assert lane_vars[f"var.{var.name}"] \
                                == inst.get(var.name)


def _crowd_spec(n):
    """``n`` overlapping temporal properties over three tasks: a small
    pool of stateful subformulas recurs across every property."""
    windows = ("0, 5s", "0, 30s", "0, 2min")
    lines = {task: [] for task in TASKS}
    for i in range(n):
        anchor, dep = TASKS[i % 3], TASKS[(i + 1) % 3]
        variant = i % 4
        if variant == 0:
            f = f"started({anchor}) -> once ended({dep})"
        elif variant == 1:
            f = f"once[{windows[i % 3]}] ended({dep})"
        elif variant == 2:
            f = f"not ended({anchor}) since ended({dep})"
        else:
            f = (f"once ended({dep}) and "
                 f"(not ended({anchor}) since ended({dep}))")
        lines[anchor].append(
            f"    temporal: {f} at: {'start' if i % 2 else 'end'} "
            f"label: p{i} onFail: skipPath Path: 1;")
    blocks = [f"{task}: {{\n" + "\n".join(props) + "\n}"
              for task, props in lines.items() if props]
    return "\n\n".join(blocks) + "\n"


def _crowd_app():
    builder = AppBuilder("crowd")
    for t in TASKS:
        builder.task(t)
    return builder.path(1, list(TASKS)).build()


class TestSharingAtScale:
    def test_200_properties_compile_to_a_fraction_of_200_monitors(self):
        from repro.spec.validator import load_properties

        props = load_properties(_crowd_spec(200), _crowd_app())
        assert len(props) == 200
        plan = build_monitor_plan(props)
        subs = plan.shared_monitors - 200
        # The stateful-subformula pool is tiny by construction: three
        # once-ended facts, three bounded variants, three since facts.
        assert subs <= 12
        assert plan.shared_monitors < plan.naive_monitors
        assert plan.naive_monitors >= 200 + 150  # most props are stateful
        ratio = plan.shared_monitors / plan.naive_monitors
        assert ratio < 0.65

    def test_crowd_still_matches_reference(self):
        from repro.spec.validator import load_properties

        props = list(load_properties(_crowd_spec(24), _crowd_app()))
        events = make_stream(7, 40)
        assert run_compiled(props, events) == run_reference(props, events)

    def test_compile_cli_reports_the_sharing_ratio(self, tmp_path, capsys):
        import json

        from repro.cli import main

        app = {"name": "crowd",
               "tasks": [{"name": t} for t in TASKS],
               "paths": {"1": list(TASKS)},
               "costs": {t: {"duration_s": 0.05} for t in TASKS}}
        app_path = tmp_path / "app.json"
        app_path.write_text(json.dumps(app))
        spec_path = tmp_path / "crowd.spec"
        spec_path.write_text(_crowd_spec(200))
        rc = main(["compile", str(spec_path), "--app", str(app_path),
                   "-o", str(tmp_path / "gen")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sharing ratio" in out
        rc = main(["compile", str(spec_path), "--app", str(app_path),
                   "-o", str(tmp_path / "gen2"), "--no-share-subformulas"])
        assert rc == 0
        out2 = capsys.readouterr().out
        assert "sharing ratio" not in out2


class TestSharedPricing:
    POWER = PowerModel({t: TaskCost(0.1, 0.002) for t in TASKS},
                       monitor_call_base_s=0.7e-3,
                       monitor_per_property_s=0.4e-3)

    def _props(self):
        # O owns the heavy shared sub; N is a stateless root with the
        # same trigger, subscriptions, and coverage — identical own
        # cost, so only the sub attribution can separate them.
        owner = Temporal(task="A", on_fail=ActionType.SKIP_PATH, path=1,
                         formula=Once(Ended("B")), label="owner")
        peer = Temporal(task="A", on_fail=ActionType.SKIP_PATH, path=1,
                        formula=Once(Ended("B")), at="end", label="peer")
        neutral = Temporal(task="A", on_fail=ActionType.SKIP_PATH, path=1,
                           formula=OrF(NotF(Started("A")), Started("A")),
                           label="neutral")
        return [owner, peer, neutral]

    def test_sub_monitors_are_bounded_but_not_sheddable(self):
        props = self._props()
        report = analyze(_crowd_app(), props, self.POWER)
        subs = [m for m in report.monitors if m.kind == "tl-sub"]
        assert len(subs) == 1
        assert not subs[0].sheddable
        assert subs[0].run_energy_j > 0
        assert set(report.sub_owners[subs[0].machine]) == {
            p.machine_name() for p in props[:2]}

    def test_shared_sub_cost_is_attributed_exactly_once(self):
        props = self._props()
        report = analyze(_crowd_app(), props, self.POWER)
        ranks = derive_priorities(report)
        by_name = {m.machine: m for m in report.monitors}
        owners = sorted(
            report.sub_owners[next(m.machine for m in report.monitors
                                   if m.kind == "tl-sub")],
            key=lambda n: (by_name[n].run_energy_j, n))
        charged, uncharged = owners[0], owners[1]
        # The charged owner is strictly more expensive than its
        # identical-cost sibling, so it sheds first; the sibling and
        # the neutral root keep their unattributed cost.
        assert ranks[charged] < ranks[uncharged]
        # No entry for the sub itself: it sheds with its owners, never
        # on its own.
        assert all(by_name[name].kind != "tl-sub" for name in ranks)

    def test_priorities_flow_into_machines(self):
        from repro.analysis import with_derived_priorities

        props = self._props()
        derived = with_derived_priorities(
            props_to_set(props), _crowd_app(), self.POWER)
        ranks = {p.machine_name(): p.priority for p in derived}
        report = analyze(_crowd_app(), props, self.POWER)
        assert ranks == derive_priorities(report)


def props_to_set(props):
    from repro.core.properties import PropertySet

    out = PropertySet()
    for p in props:
        out.add(p)
    return out
