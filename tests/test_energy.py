"""Unit tests for the energy substrate: capacitor, harvesters,
environment, and power model."""

import math

import pytest

from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.energy.harvester import (
    ConstantHarvester,
    PeriodicOutageHarvester,
    RFHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.energy.power import MSP430FR5994_POWER, PowerModel, TaskCost
from repro.errors import EnergyError, SimulationError


class TestCapacitor:
    def make(self, **kw):
        defaults = dict(capacitance=1e-3, v_max=3.3, v_on=3.0, v_off=1.8)
        defaults.update(kw)
        return Capacitor(**defaults)

    def test_energy_formula(self):
        cap = self.make(v_initial=3.0)
        assert cap.energy == pytest.approx(0.5 * 1e-3 * 9.0)

    def test_voltage_roundtrip(self):
        cap = self.make(v_initial=2.5)
        assert cap.voltage == pytest.approx(2.5)

    def test_usable_energy_above_cutoff(self):
        cap = self.make(v_initial=3.0)
        expected = 0.5e-3 * (3.0**2 - 1.8**2)
        assert cap.usable_energy == pytest.approx(expected)

    def test_usable_energy_per_cycle(self):
        cap = self.make()
        assert cap.usable_energy_per_cycle == pytest.approx(0.5e-3 * (9.0 - 3.24))

    def test_discharge_within_budget_succeeds(self):
        cap = self.make(v_initial=3.0)
        assert cap.discharge(cap.usable_energy / 2)
        assert not cap.is_dead

    def test_discharge_past_cutoff_drains_and_fails(self):
        cap = self.make(v_initial=3.0)
        assert not cap.discharge(cap.usable_energy + 1.0)
        assert cap.voltage == pytest.approx(1.8)
        assert cap.usable_energy == pytest.approx(0.0)

    def test_charge_clamps_at_vmax(self):
        cap = self.make(v_initial=3.0)
        stored = cap.charge(1000.0)
        assert cap.voltage == pytest.approx(3.3)
        assert stored < 1000.0

    def test_charge_returns_stored_delta(self):
        cap = self.make(v_initial=1.8)
        assert cap.charge(1e-4) == pytest.approx(1e-4)

    def test_can_boot_threshold(self):
        cap = self.make(v_initial=2.9)
        assert not cap.can_boot
        cap.charge(cap.energy_to_boot())
        assert cap.can_boot

    def test_energy_to_boot_zero_when_full(self):
        assert self.make(v_initial=3.2).energy_to_boot() == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(EnergyError):
            self.make().charge(-1.0)

    def test_negative_discharge_rejected(self):
        with pytest.raises(EnergyError):
            self.make().discharge(-1.0)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(EnergyError):
            Capacitor(1e-3, v_max=3.0, v_on=3.3, v_off=1.8)
        with pytest.raises(EnergyError):
            Capacitor(1e-3, v_max=3.3, v_on=1.0, v_off=1.8)
        with pytest.raises(EnergyError):
            Capacitor(-1e-3)


class TestHarvesters:
    def test_constant_power(self):
        h = ConstantHarvester(2e-3)
        assert h.power_at(0) == 2e-3
        assert h.power_at(1e6) == 2e-3

    def test_constant_energy_closed_form(self):
        h = ConstantHarvester(2e-3)
        assert h.energy_between(10, 20) == pytest.approx(2e-2)

    def test_negative_interval_rejected(self):
        with pytest.raises(EnergyError):
            ConstantHarvester(1.0).energy_between(5, 4)

    def test_rf_power_decreases_with_distance(self):
        near = RFHarvester(distance_m=0.5)
        far = RFHarvester(distance_m=2.0)
        assert near.power_at(0) > far.power_at(0)

    def test_rf_power_scales_with_tx(self):
        assert RFHarvester(tx_power_w=6.0).power_at(0) == pytest.approx(
            2 * RFHarvester(tx_power_w=3.0).power_at(0)
        )

    def test_periodic_outage_phases(self):
        h = PeriodicOutageHarvester(1e-3, on_s=10, off_s=5)
        assert h.power_at(3) == 1e-3
        assert h.power_at(12) == 0.0
        assert h.power_at(16) == 1e-3  # wrapped into the next cycle

    def test_trace_piecewise_hold(self):
        h = TraceHarvester([(0, 1e-3), (10, 2e-3), (20, 0.0)])
        assert h.power_at(5) == 1e-3
        assert h.power_at(10) == 2e-3
        assert h.power_at(15) == 2e-3
        assert h.power_at(25) == 0.0

    def test_trace_before_first_sample_holds_first(self):
        h = TraceHarvester([(10, 5e-3)])
        assert h.power_at(0) == 5e-3

    def test_trace_loop_wraps(self):
        h = TraceHarvester([(0, 1e-3), (10, 2e-3), (20, 1e-3)], loop=True)
        assert h.power_at(25) == h.power_at(5)

    def test_trace_unsorted_rejected(self):
        with pytest.raises(EnergyError):
            TraceHarvester([(10, 1.0), (0, 1.0)])

    def test_trace_empty_rejected(self):
        with pytest.raises(EnergyError):
            TraceHarvester([])

    def test_solar_zero_at_night(self):
        h = SolarHarvester(10e-3, day_length_s=100, daylight_fraction=0.5)
        assert h.power_at(75) == 0.0

    def test_solar_peak_at_midday(self):
        h = SolarHarvester(10e-3, day_length_s=100, daylight_fraction=0.5)
        assert h.power_at(25) == pytest.approx(10e-3)

    def test_generic_energy_integration(self):
        h = SolarHarvester(1e-3, day_length_s=100, daylight_fraction=1.0)
        # Integral of a half sine over its full period: 2/pi * peak * T
        total = h.energy_between(0, 100, step=0.01)
        assert total == pytest.approx(2 / math.pi * 1e-3 * 100, rel=1e-3)


class TestEnvironment:
    def test_continuous_has_infinite_energy(self):
        env = EnergyEnvironment.continuous()
        assert env.usable_energy() == math.inf
        assert env.consume(1e9)
        assert env.charging_time_from(0) == 0.0

    def test_harvested_requires_capacitor(self):
        with pytest.raises(EnergyError):
            EnergyEnvironment(harvester=ConstantHarvester(1e-3))

    def test_for_charging_delay_exact(self):
        env = EnergyEnvironment.for_charging_delay(300.0)
        env.capacitor.discharge(env.capacitor.usable_energy + 1)  # drain
        assert env.charging_time_from(0.0) == pytest.approx(300.0)

    def test_for_charging_delay_invalid(self):
        with pytest.raises(EnergyError):
            EnergyEnvironment.for_charging_delay(0)

    def test_recharge_to_boot_advances_capacitor(self):
        env = EnergyEnvironment.for_charging_delay(60.0)
        env.capacitor.discharge(env.capacitor.usable_energy + 1)
        wait = env.recharge_to_boot(0.0)
        assert wait == pytest.approx(60.0)
        assert env.capacitor.can_boot

    def test_consume_tracks_totals(self):
        env = EnergyEnvironment.for_charging_delay(60.0)
        env.consume(1e-3)
        assert env.total_consumed_j == pytest.approx(1e-3)

    def test_harvest_accumulates(self):
        env = EnergyEnvironment(
            harvester=ConstantHarvester(1e-3),
            capacitor=Capacitor(1e-2, v_initial=1.9),
        )
        gained = env.harvest(0.0, 10.0)
        assert gained == pytest.approx(1e-2)

    def test_zero_power_harvester_never_boots(self):
        env = EnergyEnvironment(
            harvester=ConstantHarvester(0.0),
            capacitor=Capacitor(1e-3, v_initial=1.8),
        )
        with pytest.raises(SimulationError):
            env.charging_time_from(0.0)

    def test_non_constant_charging_time_stepwise(self):
        cap = Capacitor(1e-3, v_initial=1.8)
        env = EnergyEnvironment(
            harvester=PeriodicOutageHarvester(1e-2, on_s=1, off_s=1), capacitor=cap
        )
        wait = env.charging_time_from(0.0)
        needed = cap.energy_to_boot()
        # Average power is 5 mW; allow the 1 s step quantisation.
        assert wait == pytest.approx(needed / 5e-3, abs=2.0)

    def test_default_capacitor_fits_benchmark(self):
        cap = default_capacitor()
        # accel (12 mJ) must fit one charge; accel + send must not.
        assert cap.usable_energy_per_cycle > 12e-3
        assert cap.usable_energy_per_cycle < 12e-3 + 7.5e-3


class TestPowerModel:
    def test_task_cost_energy(self):
        cost = TaskCost(2.0, 3e-3, fixed_energy_j=1e-3)
        assert cost.energy_j == pytest.approx(7e-3)

    def test_negative_cost_rejected(self):
        with pytest.raises(EnergyError):
            TaskCost(-1.0, 1.0)

    def test_cost_lookup(self):
        model = PowerModel({"a": TaskCost(1.0, 1e-3)})
        assert model.cost_of("a").duration_s == 1.0

    def test_unknown_task_rejected_without_default(self):
        model = PowerModel({})
        with pytest.raises(EnergyError):
            model.cost_of("ghost")

    def test_default_cost_fallback(self):
        model = PowerModel({}, default_cost=TaskCost(0.5, 1e-3))
        assert model.cost_of("anything").duration_s == 0.5
        assert "anything" in model

    def test_monitor_call_cost_scales_with_properties(self):
        model = MSP430FR5994_POWER
        base = model.monitor_call_cost_s(0)
        assert model.monitor_call_cost_s(3) == pytest.approx(
            base + 3 * model.monitor_per_property_s
        )

    def test_monitor_cost_negative_count_rejected(self):
        with pytest.raises(EnergyError):
            MSP430FR5994_POWER.monitor_call_cost_s(-1)

    def test_with_costs_overrides(self):
        model = MSP430FR5994_POWER.with_costs(accel=TaskCost(9.0, 1e-3))
        assert model.cost_of("accel").duration_s == 9.0
        assert MSP430FR5994_POWER.cost_of("accel").duration_s == 2.0

    def test_benchmark_accel_is_most_expensive(self):
        model = MSP430FR5994_POWER
        accel = model.cost_of("accel").energy_j
        for name in model.task_names():
            if name != "accel":
                assert model.cost_of(name).energy_j < accel
