"""Peripheral fault subsystem: fault models, the sensor access layer,
and TaskContext routing (including value-sized channel allocation)."""

import math

import pytest

from repro.energy.environment import EnergyEnvironment
from repro.errors import PeripheralError, RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.transaction import Transaction
from repro.peripherals import (
    BurstDropout,
    FaultySensor,
    OutOfRangeGlitch,
    PeripheralSet,
    StuckAtLastValue,
    TransientTimeout,
    parse_fault_spec,
)
from repro.sim.device import Device
from repro.taskgraph.context import (
    TaskContext,
    channel_cell_name,
    serialized_size_bytes,
)


class TestFaultModels:
    def test_window_fault_fires_only_inside_window(self):
        fault = TransientTimeout(windows=[(5.0, 10.0)])
        assert not fault.fires(4.9)
        assert fault.fires(5.0)
        assert fault.fires(9.9)
        assert not fault.fires(10.0)  # half-open window

    def test_rate_fault_is_seed_deterministic(self):
        a = TransientTimeout(rate=0.3, seed=42)
        b = TransientTimeout(rate=0.3, seed=42)
        pattern_a = [a.fires(float(t)) for t in range(200)]
        pattern_b = [b.fires(float(t)) for t in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seeds_give_different_patterns(self):
        a = TransientTimeout(rate=0.3, seed=1)
        b = TransientTimeout(rate=0.3, seed=2)
        assert ([a.fires(float(t)) for t in range(200)]
                != [b.fires(float(t)) for t in range(200)])

    def test_timeout_raises_typed_error(self):
        sensor = FaultySensor("adc", lambda t: 1.0,
                              [TransientTimeout(windows=[(0.0, 1.0)])])
        with pytest.raises(PeripheralError) as err:
            sensor.sample(0.5)
        assert err.value.sensor == "adc"
        assert err.value.fault == "timeout"
        assert err.value.at_time == pytest.approx(0.5)

    def test_stuck_replays_last_good_value(self):
        readings = iter([10.0, 20.0, 30.0])
        sensor = FaultySensor("adc", lambda t: next(readings),
                              [StuckAtLastValue(windows=[(1.0, 2.0)])])
        assert sensor.sample(0.0) == 10.0  # good; remembered
        assert sensor.sample(1.5) == 10.0  # stuck: replays last good
        assert sensor.sample(3.0) == 30.0  # recovered

    def test_stuck_before_any_good_reading_passes_raw_value(self):
        sensor = FaultySensor("adc", lambda t: 7.0,
                              [StuckAtLastValue(windows=[(0.0, 1.0)])])
        assert sensor.sample(0.5) == 7.0

    def test_glitch_pushes_numeric_value_out_of_range(self):
        sensor = FaultySensor("adc", lambda t: 1.0,
                              [OutOfRangeGlitch(windows=[(0.0, 1.0)],
                                                magnitude=1e4, seed=3)])
        value = sensor.sample(0.5)
        assert abs(value) > 1e3
        assert sensor.last_good is None  # glitched reading never trusted

    def test_burst_dropout_fails_consecutive_accesses(self):
        fault = BurstDropout(windows=[(5.0, 5.5)], burst_length=3)
        sensor = FaultySensor("adc", lambda t: 1.0, [fault])
        assert sensor.sample(0.0) == 1.0
        for t in (5.0, 6.0, 7.0):  # window starts the burst; it persists
            with pytest.raises(PeripheralError):
                sensor.sample(t)
        assert sensor.sample(8.0) == 1.0  # burst exhausted

    def test_faults_apply_in_attachment_order(self):
        sensor = FaultySensor("adc", lambda t: 1.0)
        sensor.attach(StuckAtLastValue(windows=[(0.0, 1.0)]))
        sensor.attach(TransientTimeout(windows=[(0.0, 1.0)]))
        with pytest.raises(PeripheralError):  # timeout still raises
            sensor.sample(0.5)


class TestParseFaultSpec:
    def test_full_spec(self):
        sensor, fault = parse_fault_spec("ppg:dropout:0.1:seed=7:burst=5")
        assert sensor == "ppg"
        assert isinstance(fault, BurstDropout)
        assert fault.rate == pytest.approx(0.1)
        assert fault.seed == 7
        assert fault.burst_length == 5

    def test_window_option(self):
        _, fault = parse_fault_spec("adc:timeout:0:window=2.5-7.5")
        assert fault.windows == ((2.5, 7.5),)
        assert fault.fires(3.0) and not fault.fires(8.0)

    def test_glitch_magnitude(self):
        _, fault = parse_fault_spec("adc:glitch:0.5:magnitude=99.0")
        assert isinstance(fault, OutOfRangeGlitch)
        assert fault.magnitude == pytest.approx(99.0)

    @pytest.mark.parametrize("text", [
        "ppg", "ppg:wat:0.1", "ppg:dropout:nope", "ppg:dropout:0.1:seed=x",
        "ppg:dropout:0.1:unknown=1", "ppg:timeout:0:window=5",
    ])
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(RuntimeConfigError):
            parse_fault_spec(text)


class TestPeripheralSet:
    def test_unknown_sensor_rejected(self):
        peripherals = PeripheralSet({"adc": lambda t: 1.0})
        with pytest.raises(RuntimeConfigError):
            peripherals.sense("nope", 0.0)

    def test_sense_charges_sense_category(self):
        device = Device(EnergyEnvironment.continuous())
        peripherals = PeripheralSet({"adc": lambda t: 1.0})
        peripherals.bind(device, sense_s=1e-3, sense_power_w=2e-3)
        peripherals.sense("adc", 0.0)
        assert device.result.energy_j["sense"] == pytest.approx(2e-6)
        assert device.result.busy_time_s["sense"] == pytest.approx(1e-3)

    def test_fault_counted_and_traced_even_when_raising(self):
        device = Device(EnergyEnvironment.continuous())
        peripherals = PeripheralSet({"adc": lambda t: 1.0})
        peripherals.attach("adc", TransientTimeout(windows=[(0.0, 1.0)]))
        peripherals.bind(device)
        with pytest.raises(PeripheralError):
            peripherals.sense("adc", 0.5)
        assert device.result.sensor_faults == 1
        events = device.trace.of_kind("sensor_fault")
        assert len(events) == 1
        assert events[0].detail == {
            "sensor": "adc", "fault": "timeout", "silent": False}

    def test_silent_fault_counted_but_not_raised(self):
        device = Device(EnergyEnvironment.continuous())
        peripherals = PeripheralSet({"adc": lambda t: 4.0})
        peripherals.attach("adc", StuckAtLastValue(windows=[(0.0, 1.0)]))
        peripherals.bind(device)
        assert peripherals.sense("adc", 0.5) == 4.0
        assert device.result.sensor_faults == 1
        assert device.trace.of_kind("sensor_fault")[0].detail["silent"] is True


class TestTaskContextRouting:
    def _ctx(self, nvm, peripherals=None):
        txn = Transaction(nvm)
        return TaskContext("t", nvm, txn,
                           {"adc": lambda t: 42.0}, lambda: 1.0,
                           peripherals=peripherals), txn

    def test_sense_routes_through_peripheral_set(self):
        nvm = NonVolatileMemory()
        peripherals = PeripheralSet({"adc": lambda t: 1.0})
        peripherals.attach("adc", TransientTimeout(rate=1.0))
        ctx, _ = self._ctx(nvm, peripherals)
        with pytest.raises(PeripheralError):
            ctx.sense("adc")

    def test_sense_falls_back_to_raw_sensor(self):
        nvm = NonVolatileMemory()
        ctx, _ = self._ctx(nvm)  # no peripheral set at all
        assert ctx.sense("adc") == 42.0
        # A set that doesn't know the sensor also falls through.
        ctx2, _ = self._ctx(nvm, PeripheralSet({"other": lambda t: 0.0}))
        assert ctx2.sense("adc") == 42.0

    def test_sample_is_an_alias_for_sense(self):
        nvm = NonVolatileMemory()
        peripherals = PeripheralSet({"adc": lambda t: 9.0})
        ctx, _ = self._ctx(nvm, peripherals)
        assert ctx.sample("adc") == 9.0

    def test_unknown_sensor_still_config_error(self):
        nvm = NonVolatileMemory()
        ctx, _ = self._ctx(nvm)
        with pytest.raises(RuntimeConfigError):
            ctx.sense("nope")


class TestValueSizedWrites:
    def test_serialized_size_floors_at_eight_bytes(self):
        assert serialized_size_bytes(0) == 8
        assert serialized_size_bytes(None) == 8
        big = list(range(100))
        assert serialized_size_bytes(big) == len(repr(big).encode())

    def test_write_allocates_at_serialized_size(self):
        nvm = NonVolatileMemory()
        txn = Transaction(nvm)
        ctx = TaskContext("t", nvm, txn, {}, lambda: 0.0)
        payload = {"k": "x" * 100}
        ctx.write("blob", payload)
        txn.commit()
        cell = nvm.cell(channel_cell_name("blob"))
        assert cell.size_bytes == serialized_size_bytes(payload)
        assert cell.size_bytes > 8

    def test_write_grows_existing_cell_for_bigger_values(self):
        nvm = NonVolatileMemory()
        txn = Transaction(nvm)
        ctx = TaskContext("t", nvm, txn, {}, lambda: 0.0)
        ctx.write("log", [])
        txn.commit()
        small = nvm.cell(channel_cell_name("log")).size_bytes
        txn2 = Transaction(nvm)
        ctx2 = TaskContext("t", nvm, txn2, {}, lambda: 0.0)
        ctx2.write("log", list(range(50)))
        txn2.commit()
        grown = nvm.cell(channel_cell_name("log")).size_bytes
        assert grown > small
        assert grown == serialized_size_bytes(list(range(50)))

    def test_shrinking_value_keeps_cell_size(self):
        nvm = NonVolatileMemory()
        txn = Transaction(nvm)
        ctx = TaskContext("t", nvm, txn, {}, lambda: 0.0)
        ctx.write("log", list(range(50)))
        txn.commit()
        size = nvm.cell(channel_cell_name("log")).size_bytes
        txn2 = Transaction(nvm)
        ctx2 = TaskContext("t", nvm, txn2, {}, lambda: 0.0)
        ctx2.write("log", [])
        txn2.commit()
        assert nvm.cell(channel_cell_name("log")).size_bytes == size
