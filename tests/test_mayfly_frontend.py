"""Tests for the Mayfly edge-annotation frontend (§7 language mapping)."""

import pytest

from repro.core.actions import ActionType
from repro.core.properties import Collect, MITD
from repro.errors import SpecSyntaxError, SpecValidationError
from repro.spec.mayfly_frontend import (
    load_mayfly_properties,
    parse_mayfly,
    to_properties,
)

HEALTH_EDGES = """
// Mayfly version of the health benchmark (§5.1.1)
edge accel -> send { expires: 5min; path: 2; }
edge bodyTemp -> calcAvg { collect: 10; }
edge micSense -> send { collect: 1; path: 3; }
"""


class TestParsing:
    def test_parses_all_edges(self):
        rules = parse_mayfly(HEALTH_EDGES)
        assert [(r.src, r.dst) for r in rules] == [
            ("accel", "send"), ("bodyTemp", "calcAvg"), ("micSense", "send")]

    def test_clause_values(self):
        rules = parse_mayfly(HEALTH_EDGES)
        assert rules[0].expires_s == 300.0
        assert rules[0].path == 2
        assert rules[1].collect == 10
        assert rules[1].path is None

    def test_edge_with_both_clauses(self):
        (rule,) = parse_mayfly("edge a -> b { expires: 2s; collect: 3; }")
        assert rule.expires_s == 2.0 and rule.collect == 3

    def test_empty_edge_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_mayfly("edge a -> b { }")

    def test_unknown_clause_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_mayfly("edge a -> b { teleports: 1; }")

    def test_bad_duration_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_mayfly("edge a -> b { expires: fast; }")

    def test_bad_count_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_mayfly("edge a -> b { collect: 0; }")

    def test_garbage_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_mayfly("edge a -> b { collect: 1; } nonsense here")

    def test_comments_allowed(self):
        assert len(parse_mayfly("// just a comment\n"
                                "edge a -> b { collect: 1; }")) == 1


class TestMapping:
    def test_expires_maps_to_mitd_with_restart(self, health_app):
        props = load_mayfly_properties(HEALTH_EDGES, health_app)
        mitds = [p for p in props if isinstance(p, MITD)]
        assert len(mitds) == 1
        assert mitds[0].task == "send"
        assert mitds[0].dep_task == "accel"
        assert mitds[0].limit_s == 300.0
        assert mitds[0].on_fail is ActionType.RESTART_PATH
        assert mitds[0].max_attempt is None  # Mayfly has no escape hatch

    def test_collect_maps(self, health_app):
        props = load_mayfly_properties(HEALTH_EDGES, health_app)
        collects = [p for p in props if isinstance(p, Collect)]
        assert {(c.task, c.dep_task, c.count) for c in collects} == {
            ("calcAvg", "bodyTemp", 10), ("send", "micSense", 1)}

    def test_unknown_task_rejected(self, health_app):
        with pytest.raises(SpecValidationError):
            load_mayfly_properties("edge ghost -> send { collect: 1; path: 2; }",
                                   health_app)

    def test_merge_consumer_requires_path(self, health_app):
        with pytest.raises(SpecValidationError):
            load_mayfly_properties("edge accel -> send { expires: 1min; }",
                                   health_app)


class TestPipelineIntegration:
    def test_mapped_properties_generate_and_run(self, health_app):
        """The Mayfly-frontend properties flow through the standard
        generator and runtime — one intermediate language, two
        specification languages — and reproduce Mayfly's livelock."""
        from repro.core.generator import generate_machines
        from repro.core.runtime import ArtemisRuntime
        from repro.workloads.health import (
            health_power_model,
            make_intermittent_device,
        )

        props = load_mayfly_properties(HEALTH_EDGES, health_app)
        machines = generate_machines(props)
        assert len(machines) == 3

        device = make_intermittent_device(420.0)
        runtime = ArtemisRuntime(health_app, props, device,
                                 health_power_model())
        result = device.run(runtime, max_time_s=2 * 3600)
        # Without maxAttempt (Mayfly semantics), the MITD restart loops
        # forever at a 7-minute charging delay — the Figure 12 behaviour,
        # now reproduced through the ARTEMIS pipeline itself.
        assert not result.completed

    def test_consistency_checker_flags_mapped_spec(self, health_app):
        from repro.spec.consistency import check

        props = load_mayfly_properties(HEALTH_EDGES, health_app)
        report = check(props, health_app)
        assert any(i.code == "LIVELOCK" for i in report.warnings)
