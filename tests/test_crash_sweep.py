"""Exhaustive crash-point sweep, as a conformance-checker instance.

The strongest correctness claim the paper makes (§4.2.3, §7) is that
the runtime+monitor combination tolerates a power failure at *any*
point. This file states that claim through :mod:`repro.verify`: the
application below (Range and maxAttempt modifiers included) is explored
exhaustively at bound 1 — every distinct single-crash durable state —
and each intermittent execution must match the continuous-power oracle
on channels, corrective actions, control state, and quiescence.

The randomized long-tail (arbitrary fault interleavings, deeper crash
counts) lives in ``tests/test_soak_random_faults.py`` under
``make soak``.
"""

import pytest

from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name
from repro.verify import CrashScheduleExplorer


def build_app():
    return (
        AppBuilder("sweep")
        .task("sense", body=lambda ctx: ctx.append("samples", ctx.sample("adc")))
        .task("avg", body=_avg, monitored_vars=["mean"])
        .task("send", body=lambda ctx: ctx.append("sent", ctx.read("mean")))
        .task("beep", body=lambda ctx: ctx.write("beeped", True))
        .path(1, ["sense", "avg", "send"])
        .path(2, ["beep", "send"])
        .sensor("adc", lambda t: 10.0)
        .build()
    )


def _avg(ctx):
    samples = ctx.read("samples", [])
    mean = sum(samples) / len(samples) if samples else 0.0
    ctx.write("mean", mean)
    ctx.emit("mean", mean)


SPEC = """
avg {
    collect: 2 dpTask: sense onFail: restartPath;
    dpData: mean Range: [0, 100] onFail: completePath;
}
send {
    MITD: 1h dpTask: avg onFail: restartPath maxAttempt: 2 onFail: skipPath Path: 1;
}
sense {
    maxTries: 50 onFail: skipPath;
}
"""

POWER = PowerModel({}, default_cost=TaskCost(0.05, 1e-3))


def build():
    device = Device(EnergyEnvironment.continuous())
    app = build_app()
    props = load_properties(SPEC, app)
    runtime = ArtemisRuntime(app, props, device, POWER)
    return device, runtime


@pytest.fixture(scope="module")
def explorer():
    return CrashScheduleExplorer(build, run_kwargs={"max_time_s": 600.0},
                                 name="crash-sweep")


@pytest.fixture(scope="module")
def report(explorer):
    # Exhaustive over every distinct single-crash durable state; the
    # budget is far above the payment count, so truncation is a failure.
    return explorer.explore(bound=1, budget=2000, stop_on_first=False)


def test_baseline_shape(explorer):
    oracle = explorer.oracle
    assert oracle.completed
    assert oracle.channels["sent"] == [10.0, 10.0]  # send ran on both paths
    assert oracle.channels["samples"] == [10.0, 10.0]  # collect: 2
    assert explorer.oracle_run.runner.calls < 700


def test_crash_at_every_point_preserves_outcome(report):
    assert not report.truncated, "budget must cover the whole sweep"
    assert report.schedules_checked == report.depth1_crash_points
    assert report.ok, "\n".join(
        [report.summary()] + [c.describe() for c in report.counterexamples])


def test_commit_steps_are_visible_crash_points(explorer):
    """The journaled commit pays per-step energy: a commit of n staged
    writes exposes n appends + 1 seal + n applies + 1 clear as distinct
    consume() calls, so the sweep above genuinely covers the interior of
    every commit instead of treating commits as atomic."""
    runner = explorer.oracle_run.runner
    commit_points = [i for i in range(1, runner.calls + 1)
                     if runner.category_at(i) == "commit"]
    # Every task commit stages at least the four runtime control cells,
    # so each contributes >= 2*4 + 2 = 10 commit points; the run executes
    # several tasks, so there must be dozens of interior points.
    assert len(commit_points) >= 30
    # Interior commit steps are distinct durable states: the explorer
    # prunes none of them away.
    reps = set(runner.representatives(1))
    assert reps.issuperset(commit_points[1:])


def test_crash_inside_every_commit_recovers_to_oracle(explorer):
    """A brown-out at ANY interior step of a journaled commit must be
    resolved by boot-time recovery — rolled back (the task re-executes)
    or rolled forward (the journal replays) — with the externally
    visible result identical to the failure-free oracle."""
    runner = explorer.oracle_run.runner
    commit_points = [i for i in range(1, runner.calls + 1)
                     if runner.category_at(i) == "commit"]
    failures = []
    for crash_at in commit_points:
        run = explorer.execute((crash_at,))
        problems = explorer.check((crash_at,))
        recoveries = (run.device.result.torn_commits
                      + run.device.result.journal_replays)
        if problems or recoveries != 1:
            failures.append((crash_at, recoveries, problems))
    assert not failures, (
        f"{len(failures)}/{len(commit_points)} commit-interior crash "
        f"points broke recovery; first failures: {failures[:5]}")


def test_torn_commit_observable_in_trace(explorer):
    """Each recovered commit leaves a torn_commit or journal_replay trace
    record plus a summary recovery record."""
    runner = explorer.oracle_run.runner
    first_commit = next(i for i in range(1, runner.calls + 1)
                        if runner.category_at(i) == "commit")
    run = explorer.execute((first_commit,))
    assert run.outcome.completed
    torn = run.device.trace.count("torn_commit")
    replayed = run.device.trace.count("journal_replay")
    assert torn + replayed == 1
    assert run.device.trace.count("recovery") == 1


def test_monitor_quiescent_after_every_crash_point(report, explorer):
    """Quiescence (no dangling monitor continuation, idle journal) is
    part of the equivalence policy, so the passing sweep above already
    proves it for every crash point; spot-check the oracle's view."""
    assert report.ok
    assert explorer.oracle.quiescent
    assert explorer.oracle.journal_idle
