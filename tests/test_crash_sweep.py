"""Exhaustive crash-point sweep.

The strongest correctness claim the paper makes (§4.2.3, §7) is that
the runtime+monitor combination tolerates a power failure at *any*
point. This test makes that claim mechanical: run the application once
to count every energy-consumption point, then re-run it N times,
injecting a brown-out at consumption point 1, 2, ..., N respectively,
and assert after every variant that the application completes with the
same externally visible result as the failure-free run.
"""

import pytest

from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.errors import PowerFailure
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


class CrashOnceDevice(Device):
    """Continuous-power device that injects exactly one brown-out at the
    k-th consume() call, then runs failure-free."""

    def __init__(self, crash_at: int):
        super().__init__(EnergyEnvironment.continuous())
        self.crash_at = crash_at
        self.calls = 0
        self.call_categories = []

    def consume(self, duration_s, power_w, category):
        self.calls += 1
        self.call_categories.append(category)
        if self.calls == self.crash_at:
            self._alive = False
            self.trace.record(self.sim_clock.now(), "power_failure",
                              category=category)
            raise PowerFailure(self.sim_clock.now())
        super().consume(duration_s, power_w, category)

    def reboot(self):
        self.result.reboots += 1
        self._alive = True
        self.trace.record(self.sim_clock.now(), "boot")


def build_app():
    return (
        AppBuilder("sweep")
        .task("sense", body=lambda ctx: ctx.append("samples", ctx.sample("adc")))
        .task("avg", body=_avg, monitored_vars=["mean"])
        .task("send", body=lambda ctx: ctx.append("sent", ctx.read("mean")))
        .task("beep", body=lambda ctx: ctx.write("beeped", True))
        .path(1, ["sense", "avg", "send"])
        .path(2, ["beep", "send"])
        .sensor("adc", lambda t: 10.0)
        .build()
    )


def _avg(ctx):
    samples = ctx.read("samples", [])
    mean = sum(samples) / len(samples) if samples else 0.0
    ctx.write("mean", mean)
    ctx.emit("mean", mean)


SPEC = """
avg {
    collect: 2 dpTask: sense onFail: restartPath;
    dpData: mean Range: [0, 100] onFail: completePath;
}
send {
    MITD: 1h dpTask: avg onFail: restartPath maxAttempt: 2 onFail: skipPath Path: 1;
}
sense {
    maxTries: 50 onFail: skipPath;
}
"""

POWER = PowerModel({}, default_cost=TaskCost(0.05, 1e-3))


def run_variant(crash_at):
    device = CrashOnceDevice(crash_at)
    app = build_app()
    props = load_properties(SPEC, app)
    runtime = ArtemisRuntime(app, props, device, POWER)
    result = device.run(runtime, max_time_s=600)
    sent = device.nvm.cell(channel_cell_name("sent")).get() \
        if channel_cell_name("sent") in device.nvm else None
    samples = device.nvm.cell(channel_cell_name("samples")).get() \
        if channel_cell_name("samples") in device.nvm else None
    return device, result, sent, samples


@pytest.fixture(scope="module")
def baseline():
    device, result, sent, samples = run_variant(crash_at=10**9)  # never
    assert result.completed
    assert device.calls < 700
    return device.calls, result, sent, samples


@pytest.fixture(scope="module")
def baseline_commit_points(baseline):
    """1-based consume indices of every journaled-commit step."""
    device, _, _, _ = run_variant(crash_at=10**9)
    return [i + 1 for i, cat in enumerate(device.call_categories)
            if cat == "commit"]


def test_baseline_shape(baseline):
    calls, result, sent, samples = baseline
    assert sent == [10.0, 10.0]  # send ran on both paths
    assert samples == [10.0, 10.0]  # collect: 2 -> two sense runs
    assert result.reboots == 0


def test_crash_at_every_point_preserves_outcome(baseline):
    total_calls, _, base_sent, base_samples = baseline
    failures = []
    for crash_at in range(1, total_calls + 1):
        device, result, sent, samples = run_variant(crash_at)
        ok = (result.completed and result.reboots == 1
              and sent == base_sent)
        # The collect property may legitimately gather one extra sample
        # when the crash hits between sense's commit and its EndTask
        # delivery... it must never gather fewer than the baseline.
        ok = ok and samples is not None and len(samples) >= len(base_samples)
        if not ok:
            failures.append((crash_at, result.completed, result.reboots,
                             sent, samples))
    assert not failures, (
        f"{len(failures)}/{total_calls} crash points broke the run; "
        f"first failures: {failures[:5]}")


def test_commit_steps_are_visible_crash_points(baseline_commit_points):
    """The journaled commit pays per-step energy: a commit of n staged
    writes exposes n appends + 1 seal + n applies + 1 clear as distinct
    consume() calls, so the sweep above genuinely covers the interior of
    every commit instead of treating commits as atomic."""
    # Every task commit stages at least the four runtime control cells,
    # so each contributes >= 2*4 + 2 = 10 commit points; the run executes
    # several tasks, so there must be dozens of interior points.
    assert len(baseline_commit_points) >= 30


def test_crash_inside_every_commit_recovers_to_oracle(
        baseline, baseline_commit_points):
    """A brown-out at ANY interior step of a journaled commit must be
    resolved by boot-time recovery — rolled back (the task re-executes)
    or rolled forward (the journal replays) — with the externally
    visible result identical to the failure-free oracle."""
    _, _, base_sent, base_samples = baseline
    failures = []
    for crash_at in baseline_commit_points:
        device, result, sent, samples = run_variant(crash_at)
        recoveries = result.torn_commits + result.journal_replays
        ok = (result.completed and result.reboots == 1
              and sent == base_sent
              and samples is not None and len(samples) >= len(base_samples)
              and recoveries == 1)
        if not ok:
            failures.append((crash_at, result.completed, result.reboots,
                             recoveries, sent, samples))
    assert not failures, (
        f"{len(failures)}/{len(baseline_commit_points)} commit-interior "
        f"crash points broke recovery; first failures: {failures[:5]}")


def test_torn_commit_observable_in_trace(baseline_commit_points):
    """Each recovered commit leaves a torn_commit or journal_replay trace
    record plus a summary recovery record."""
    device, result, _, _ = run_variant(baseline_commit_points[0])
    assert result.completed
    torn = device.trace.count("torn_commit")
    replayed = device.trace.count("journal_replay")
    assert torn + replayed == 1
    assert device.trace.count("recovery") == 1


def test_crash_at_every_point_monitor_state_consistent(baseline):
    """After completion, no monitor continuation may be left dangling
    and every machine must be in a quiescent state."""
    total_calls, _, _, _ = baseline
    for crash_at in range(1, total_calls + 1, 3):  # sample every 3rd
        device = CrashOnceDevice(crash_at)
        app = build_app()
        props = load_properties(SPEC, app)
        runtime = ArtemisRuntime(app, props, device, POWER)
        result = device.run(runtime, max_time_s=600)
        assert result.completed
        assert not runtime.monitor.in_progress
