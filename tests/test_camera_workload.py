"""Tests for the trap-camera workload (second integration surface)."""

import pytest

from repro.spec.consistency import check
from repro.spec.validator import load_properties
from repro.taskgraph.context import channel_cell_name
from repro.workloads.camera import (
    CAMERA_SPEC,
    build_camera_app,
    build_camera_runtime,
    camera_capacitor,
    camera_power_model,
    make_camera_device,
)


class TestStructure:
    def test_three_paths_eight_tasks(self):
        app = build_camera_app()
        assert len(app.tasks) == 8
        assert len(app.paths) == 3

    def test_spec_binds(self):
        app = build_camera_app()
        props = load_properties(CAMERA_SPEC, app)
        kinds = sorted(p.kind for p in props)
        assert kinds == sorted([
            "period", "energyAtLeast", "maxTries", "collect", "dpData",
            "MITD", "maxDuration", "energyAtLeast", "maxTries"])

    def test_spec_consistent_with_power_model(self):
        app = build_camera_app()
        props = load_properties(CAMERA_SPEC, app)
        report = check(props, app, power=camera_power_model(),
                       capacitor=camera_capacitor())
        assert report.consistent, str(report)

    def test_capture_fits_cycle_but_pipeline_does_not(self):
        power = camera_power_model()
        usable = camera_capacitor().usable_energy_per_cycle
        assert power.cost_of("capture").energy_j < usable
        pipeline = sum(power.cost_of(t).energy_j
                       for t in ("capture", "compress", "infer", "uplinkMeta"))
        assert pipeline > usable


class TestContinuousRun:
    def test_completes_and_uplinks_both_kinds(self):
        device = make_camera_device()
        result = device.run(build_camera_runtime(device))
        assert result.completed
        uplinked = device.nvm.cell(channel_cell_name("uplinked")).get()
        assert [p["kind"] for p in uplinked] == ["meta", "image"]

    def test_low_confidence_stays_on_normal_flow(self):
        device = make_camera_device()
        result = device.run(build_camera_runtime(device))
        assert not any(e.detail.get("action") == "completePath"
                       for e in device.trace.of_kind("monitor_action"))

    def test_high_confidence_triggers_emergency_upload(self):
        app = build_camera_app(luminance_of_t=lambda t: 1.0)
        device = make_camera_device()
        result = device.run(build_camera_runtime(device, app=app))
        assert result.completed
        completes = [e for e in device.trace.of_kind("monitor_action")
                     if e.detail.get("action") == "completePath"]
        assert len(completes) == 1
        # Emergency run finishes path 2 unmonitored and ends the run:
        # the image upload path (3) is deferred to the next run.
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends[-1] == "uplinkMeta"
        assert "uplinkImage" not in ends


class TestIntermittentRun:
    def test_completes_under_power_failures(self):
        # The detection pipeline (~43 mJ) exceeds one charge cycle
        # (~35 mJ): at least one brown-out per detection is structural.
        device = make_camera_device(charging_delay_s=60.0)
        result = device.run(build_camera_runtime(device), max_time_s=7200)
        assert result.completed
        assert result.reboots >= 1

    def test_energy_gate_defers_capture(self):
        """With the capacitor started low, energyAtLeast must hold
        capture back (restartTask) until the level recovers."""
        device = make_camera_device(charging_delay_s=10.0)
        device.env.capacitor.discharge(
            device.env.capacitor.usable_energy - 0.005)  # ~5 mJ left
        runtime = build_camera_runtime(device)
        result = device.run(runtime, max_time_s=7200)
        assert result.completed
        deferrals = [e for e in device.trace.of_kind("monitor_action")
                     if e.detail.get("action") == "restartTask"
                     and e.detail.get("task") == "capture"]
        assert deferrals  # the gate fired at least once

    def test_long_outage_skips_stale_uplink_path(self):
        """A charging delay beyond the 2-minute MITD livelocks the
        detection pipeline until maxAttempt skips it."""
        device = make_camera_device(charging_delay_s=180.0)
        result = device.run(build_camera_runtime(device), max_time_s=4 * 3600)
        assert result.completed
        skips = [e.detail["path"] for e in device.trace.of_kind("path_skip")]
        assert 2 in skips
