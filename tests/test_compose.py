"""Tests for parallel composition and joint exploration."""

import pytest

from repro.core.actions import ActionType
from repro.core.events import end_event, start_event
from repro.core.generator import generate_machine, generate_machines
from repro.core.properties import Collect, MaxDuration, MaxTries, PropertySet
from repro.errors import StateMachineError
from repro.statemachine.compose import (
    ProductInstance,
    explore_product,
    joint_alphabet,
)


def pair():
    tries = generate_machine(
        MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=2))
    collect = generate_machine(
        Collect(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
                count=1))
    return [tries, collect]


class TestProductInstance:
    def test_components_step_together(self):
        product = ProductInstance(pair())
        verdicts = product.on_event(start_event("A", 0.0))
        # collect fails (no B yet); maxTries just counts.
        assert [v.action for v in verdicts] == ["restartPath"]
        assert product.state == ("Started", "Counting")

    def test_concurrent_failures_concatenated(self):
        product = ProductInstance(pair())
        product.on_event(start_event("A", 0.0))
        product.on_event(start_event("A", 1.0))
        verdicts = product.on_event(start_event("A", 2.0))
        assert {v.action for v in verdicts} == {"skipPath", "restartPath"}

    def test_reset_resets_all(self):
        product = ProductInstance(pair())
        product.on_event(start_event("A", 0.0))
        product.reset()
        assert product.state == ("NotStarted", "Counting")
        assert product.instances[0].get("i") == 0

    def test_duplicate_names_rejected(self):
        machine = pair()[0]
        with pytest.raises(StateMachineError):
            ProductInstance([machine, machine])

    def test_empty_product_rejected(self):
        with pytest.raises(StateMachineError):
            ProductInstance([])

    def test_store_count_mismatch_rejected(self):
        with pytest.raises(StateMachineError):
            ProductInstance(pair(), stores=[{}])


class TestJointExploration:
    def test_finds_concurrent_failure_witness(self):
        machines = pair()
        alphabet = joint_alphabet(machines, deltas=[1.0])
        witnesses = explore_product(machines, alphabet, depth=4)
        joint = frozenset({"skipPath", "restartPath"})
        assert joint in witnesses
        # Shortest concurrent failure: three bare starts of A.
        witness = witnesses[joint]
        assert len(witness) == 3
        assert all(l.kind == "startTask" and l.task == "A" for l in witness)

    def test_single_failure_witnesses_also_found(self):
        machines = pair()
        witnesses = explore_product(machines, joint_alphabet(machines, [1.0]),
                                    depth=3)
        assert frozenset({"restartPath"}) in witnesses

    def test_benchmark_spec_concurrent_failures(self, health_app):
        """Joint model-checking of the real benchmark's send-task
        machines: the MITD violation and the path-3 collect violation
        can never fire on one event (different paths), which the
        explorer confirms by exhausting depth 6."""
        from repro.spec.validator import load_properties
        from repro.workloads.health import BENCHMARK_SPEC

        props = load_properties(BENCHMARK_SPEC, health_app)
        send_machines = [
            m for m in generate_machines(props) if "send" in m.name]
        assert len(send_machines) == 2
        alphabet = joint_alphabet(send_machines, deltas=[1.0, 400.0],
                                  paths=(2, 3))
        witnesses = explore_product(send_machines, alphabet, depth=6)
        assert frozenset({"restartPath", "skipPath"}) not in witnesses
        joint_restarts = [k for k in witnesses if len(k) > 1]
        assert joint_restarts == []

    def test_duration_and_tries_can_fail_together(self):
        """The §3.3 example: maximum duration and maximum start attempts
        failing for the same task on one event."""
        tries = generate_machine(
            MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=1))
        duration = generate_machine(
            MaxDuration(task="A", on_fail=ActionType.SKIP_TASK, limit_s=2.0))
        machines = [tries, duration]
        alphabet = joint_alphabet(machines, deltas=[1.0, 5.0])
        witnesses = explore_product(machines, alphabet, depth=3)
        assert frozenset({"skipPath", "skipTask"}) in witnesses

    def test_depth_validation(self):
        with pytest.raises(StateMachineError):
            explore_product(pair(), [], depth=-1)
