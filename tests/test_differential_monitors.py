"""Differential testing of generated monitors against the interpreter.

``tests/test_codegen.py`` pins seven hand-picked properties and fuzzes
the event stream. This module randomises the *property configurations*
as well: hypothesis draws a property of a random kind with random
parameters (limits, ranges, paths, escalation settings), the machine is
generated from it, and a seeded random event sequence drives the
reference interpreter and the generated Python monitor side by side.
After every event the two must agree on emitted verdicts, current
state, and every persistent variable.

The event streams come from ``random.Random(seed)`` with the seed drawn
by hypothesis, so a failure report ("seed=1234, length=40") is enough
to replay the exact sequence outside hypothesis.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ActionType
from repro.core.events import MonitorEvent
from repro.core.generator import generate_machine, generate_machines
from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MaxDuration,
    MaxTries,
    MITD,
    Period,
)
from repro.statemachine.codegen_python import compile_machine
from repro.statemachine.interpreter import MachineInstance

TASKS = ["A", "B", "C"]
DATA_VAR = "v"  # the one dependent-data variable dpData properties watch

_tasks = st.sampled_from(TASKS)
_actions = st.sampled_from(list(ActionType))
_paths = st.one_of(st.none(), st.integers(min_value=0, max_value=3))
_durations = st.floats(min_value=0.25, max_value=30.0, allow_nan=False)

#: (max_attempt, max_attempt_action) — either both absent or both set,
#: matching the property invariant.
_escalation = st.one_of(
    st.tuples(st.none(), st.none()),
    st.tuples(st.integers(min_value=1, max_value=4), _actions),
)


def _common():
    return {"task": _tasks, "on_fail": _actions, "path": _paths,
            "priority": st.integers(min_value=0, max_value=3)}


@st.composite
def _mitd(draw):
    attempts, action = draw(_escalation)
    return MITD(dep_task=draw(_tasks), limit_s=draw(_durations),
                max_attempt=attempts, max_attempt_action=action,
                **{k: draw(v) for k, v in _common().items()})


@st.composite
def _period(draw):
    attempts, action = draw(_escalation)
    return Period(period_s=draw(_durations),
                  jitter_s=draw(st.floats(min_value=0.0, max_value=5.0,
                                          allow_nan=False)),
                  max_attempt=attempts, max_attempt_action=action,
                  **{k: draw(v) for k, v in _common().items()})


@st.composite
def _dp_data(draw):
    low = draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
    width = draw(st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
    return DpData(var=DATA_VAR, low=low, high=low + width,
                  **{k: draw(v) for k, v in _common().items()})


def any_property():
    """A random property of any of the seven kinds, valid by
    construction (the dataclass invariants accept every draw)."""
    return st.one_of(
        st.builds(MaxTries, limit=st.integers(min_value=1, max_value=6),
                  **_common()),
        st.builds(MaxDuration, limit_s=_durations, **_common()),
        st.builds(Collect, dep_task=_tasks,
                  count=st.integers(min_value=1, max_value=5),
                  reset_on_fail=st.booleans(), **_common()),
        _mitd(),
        _dp_data(),
        _period(),
        st.builds(EnergyAtLeast,
                  min_energy_j=st.floats(min_value=1e-6, max_value=1.0,
                                         allow_nan=False),
                  **_common()),
    )


def make_stream(seed, length):
    """A seeded random event sequence with nondecreasing timestamps.

    Every event carries the dpData variable and an energy reading so
    no guard can fault on missing dependent data.
    """
    rng = random.Random(seed)
    t = 0.0
    events = []
    for _ in range(length):
        t += rng.uniform(0.0, 8.0)
        events.append(MonitorEvent(
            rng.choice(["startTask", "endTask"]),
            rng.choice(TASKS),
            t,
            {DATA_VAR: rng.uniform(-4.0, 4.0),
             "energy": rng.uniform(0.0, 1.0)},
            path=rng.randrange(4),
        ))
    return events


def assert_lockstep(machine, interpreted, generated, events):
    """Feed ``events`` to both instances, asserting agreement on
    verdicts, state, and every variable after each one."""
    for i, event in enumerate(events):
        v_int = interpreted.on_event(event)
        v_gen = generated.on_event(event)
        assert ([(v.machine, v.action, v.path) for v in v_int]
                == [(v.machine, v.action, v.path) for v in v_gen]), (
            f"verdicts diverge at event {i}: {event}"
        )
        assert interpreted.state == generated.state, (
            f"states diverge at event {i}: {event}"
        )
        for var in machine.variables:
            assert interpreted.get(var.name) == generated.get(var.name), (
                f"variable {var.name!r} diverges at event {i}: {event}"
            )


class TestRandomPropertyAgreement:
    @given(prop=any_property(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=0, max_value=50))
    @settings(max_examples=150, deadline=None)
    def test_interpreter_and_generated_agree(self, prop, seed, length):
        machine = generate_machine(prop)
        interpreted = MachineInstance(machine)
        generated = compile_machine(machine)()
        assert_lockstep(machine, interpreted, generated,
                        make_stream(seed, length))

    @given(prop=any_property(),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_midstream_reset(self, prop, seed):
        """resetMonitor can fire at any point (path restart); both
        implementations must re-initialise to the same place."""
        machine = generate_machine(prop)
        interpreted = MachineInstance(machine)
        generated = compile_machine(machine)()
        first, second = make_stream(seed, 20), make_stream(seed + 1, 20)
        assert_lockstep(machine, interpreted, generated, first)
        interpreted.reset()
        generated.reset()
        assert interpreted.state == generated.state == machine.initial
        assert_lockstep(machine, interpreted, generated, second)

    @given(prop=any_property(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           cut=st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_store_revival(self, prop, seed, cut):
        """Power-failure differential: run part of the stream, rebuild
        both monitors from their persisted stores (the paper's reboot),
        and continue. The revived pair must still agree."""
        machine = generate_machine(prop)
        store_int, store_gen = {}, {}
        interpreted = MachineInstance(machine, store_int)
        generated = compile_machine(machine)(store_gen)
        events = make_stream(seed, 30)
        assert_lockstep(machine, interpreted, generated, events[:cut])
        revived_int = MachineInstance(machine, store_int)
        revived_gen = compile_machine(machine)(store_gen)
        assert revived_int.state == revived_gen.state
        assert_lockstep(machine, revived_int, revived_gen, events[cut:])


class TestRandomPropertySetAgreement:
    @given(props=st.lists(any_property(), min_size=1, max_size=5),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_whole_property_set_agrees(self, props, seed):
        """generate_machines over a random spec: every machine's
        interpreter/generated pair stays in agreement on one shared
        event stream (the monitor arbiter's view)."""
        machines = generate_machines(props)
        pairs = [(m, MachineInstance(m), compile_machine(m)())
                 for m in machines]
        for event in make_stream(seed, 40):
            for machine, interpreted, generated in pairs:
                v_int = interpreted.on_event(event)
                v_gen = generated.on_event(event)
                assert ([(v.action, v.path) for v in v_int]
                        == [(v.action, v.path) for v in v_gen])
                assert interpreted.state == generated.state
                for var in machine.variables:
                    assert interpreted.get(var.name) == generated.get(var.name)


def test_replay_outside_hypothesis():
    """The seed-based stream is reproducible without hypothesis: the
    documented replay recipe in docs/performance.md relies on it."""
    assert make_stream(1234, 10) == make_stream(1234, 10)
    assert make_stream(1234, 10) != make_stream(1235, 10)
