"""Bundle installation: activation atomicity, boot-loop rollback,
migration idempotence.

Activation goes through the same journaled two-phase commit as task
commits, so the central test here crashes it at *every* interior step
(via the ``spend`` callback) and checks the post-recovery invariant:
the device is fully on the old version or fully on the new one, and the
active pointer and the migration intention log never disagree.
"""

import pytest

from repro.errors import FleetError, PowerFailure
from repro.fleet.bundle import build_bundle
from repro.fleet.install import BundleInstaller
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory
from repro.verify.workloads import OTA_SPEC_V1, OTA_SPEC_V2, _ota_app


def _bundles():
    app = _ota_app()
    return (build_bundle(OTA_SPEC_V1, app, version=1),
            build_bundle(OTA_SPEC_V2, app, version=2))


def _installer(nvm=None, **kwargs):
    nvm = nvm if nvm is not None else NonVolatileMemory()
    journal = CommitJournal(nvm)
    return BundleInstaller(nvm, journal=journal, **kwargs), nvm, journal


def _consistent_state(installer, v1, v2):
    """The cross-cell invariant: pointer, probation and migration log
    describe the same version, which is wholly v1 or wholly v2."""
    active = installer.active_bundle()
    assert active is not None
    assert active in (v1, v2)
    if active == v1:
        # Old world: no probation, no migration outstanding.
        assert not installer.probation
        assert not installer.migration_pending
    else:
        # New world: complete activation side effects.
        assert installer.probation
        assert installer.boot_count == 0
        marker = installer._migrate.get()
        assert marker == {"reset": ["maxTries_sense_p1"],
                          "drop": []} or marker is None
    return active.version


class TestActivationAtomicity:
    def test_crash_free_activation(self):
        v1, v2 = _bundles()
        installer, _, _ = _installer()
        installer.install_initial(v1)
        installer.stage(v2)
        diff = installer.activate()
        assert installer.active_version == 2
        assert installer.probation
        assert diff.changed == ("maxTries_sense_p1",)
        # The old version stays in the standby slot for rollback.
        assert installer.standby_bundle() == v1

    def test_crash_at_every_commit_step_is_atomic(self):
        """Crash activation at step k for every k; after journal
        recovery the install is all-or-nothing."""
        v1, v2 = _bundles()
        # First count the commit steps of a crash-free activation.
        steps = []
        installer, _, _ = _installer()
        installer.install_initial(v1)
        installer.stage(v2)
        installer.activate(on_step=lambda label: steps.append(label))
        assert len(steps) >= 6  # journal x4, seal, apply x4, clear

        outcomes = set()
        for crash_at in range(len(steps)):
            installer, nvm, journal = _installer()
            installer.install_initial(v1)
            installer.stage(v2)
            remaining = [crash_at]

            def spend():
                if remaining[0] == 0:
                    raise PowerFailure(0.0)
                remaining[0] -= 1

            with pytest.raises(PowerFailure):
                installer.activate(spend=spend)
            # Reboot: resolve the journal, then check the invariant.
            journal.recover()
            rebooted = BundleInstaller(nvm, journal=journal)
            outcomes.add(_consistent_state(rebooted, v1, v2))
        # The sweep must observe both worlds: crashes before the seal
        # roll back to v1, crashes after it roll forward to v2.
        assert outcomes == {1, 2}

    def test_activate_without_staged_bundle_rejected(self):
        v1, _ = _bundles()
        installer, _, _ = _installer()
        installer.install_initial(v1)
        with pytest.raises(FleetError):
            installer.activate()


class TestBootLoopRollback:
    def test_rollback_at_threshold(self):
        v1, v2 = _bundles()
        installer, _, _ = _installer(boot_loop_threshold=3)
        installer.install_initial(v1)
        installer.stage(v2)
        installer.activate()
        assert installer.probation
        for boot in range(1, 3):
            assert installer.record_boot() == boot
            assert not installer.rollback_needed()
        installer.record_boot()
        assert installer.rollback_needed()
        assert installer.rollback() == 1
        assert installer.active_version == 1
        assert not installer.probation
        # The reverse migration resets the changed machine and drops
        # the one v2 introduced.
        marker = installer._migrate.get()
        assert set(marker["reset"]) == {"maxTries_sense_p1"}
        assert set(marker["drop"]) == {"collect_send_p1"}

    def test_mark_healthy_ends_probation(self):
        v1, v2 = _bundles()
        installer, _, _ = _installer(boot_loop_threshold=2)
        installer.install_initial(v1)
        installer.stage(v2)
        installer.activate()
        installer.record_boot()
        installer.mark_healthy()
        assert not installer.probation
        assert installer.boot_count == 0
        # Boots after probation no longer count toward rollback.
        assert installer.record_boot() == 0
        assert not installer.rollback_needed()

    def test_rollback_without_standby_stops_watchdog(self):
        v1, _ = _bundles()
        installer, _, _ = _installer(boot_loop_threshold=1)
        installer.install_initial(v1)
        installer._probation.set(True)
        installer._boot_count.set(5)
        assert not installer.rollback_needed()  # nothing to return to
        assert installer.rollback() is None
        assert not installer.probation


class TestMigration:
    class _FakeMonitor:
        name = "monitor"

        def __init__(self, names):
            self.machines = [type("M", (), {"name": n})() for n in names]
            self.resets = []

        def reset_machine(self, name):
            self.resets.append(name)

    def test_migration_replay_is_idempotent(self):
        v1, v2 = _bundles()
        installer, nvm, _ = _installer()
        installer.install_initial(v1)
        installer.stage(v2)
        installer.activate()
        assert installer.migration_pending
        monitor = self._FakeMonitor(["maxTries_sense_p1", "collect_send_p1"])
        actions = installer.finish_migration(monitor)
        assert actions == ["reset:maxTries_sense_p1"]
        assert not installer.migration_pending
        # Replaying with a cleared log is a no-op.
        assert installer.finish_migration(monitor) == []
        assert monitor.resets == ["maxTries_sense_p1"]

    def test_migration_drop_frees_machine_cells(self):
        v1, v2 = _bundles()
        installer, nvm, _ = _installer()
        installer.install_initial(v2)
        installer.stage(v1)
        installer.activate()  # downgrade: v1 lacks collect_send_p1
        nvm.alloc("monitor.collect_send_p1.state", 0, 2)
        monitor = self._FakeMonitor(["maxTries_sense_p1"])
        actions = installer.finish_migration(monitor)
        assert "drop:collect_send_p1" in actions
        assert "monitor.collect_send_p1.state" not in nvm
