"""Conformance of the OTA pipeline under exhaustive crash schedules.

The ``("ota", "artemis")`` scenario runs a device that receives and
installs a monitor update mid-flight. The explorer crashes it at every
energy payment (radio chunks, activation commit steps, migration) and
compares the durable outcome — active version, monitor version,
probation, migration log, transfer status — against the crash-free
oracle. Bound 1 is exhausted here (fast); bound 2 runs under a budget
(the full bound-2 space, ~4.7k schedules, is exhausted by the CI
conformance gate and was verified counterexample-free).
"""

from repro.verify.workloads import get_scenario


def _explorer():
    return get_scenario("ota", "artemis").explorer()


class TestOtaConformance:
    def test_bound_1_exhaustive(self):
        report = _explorer().explore(bound=1, budget=400)
        assert report.ok, report.summary()
        assert not report.truncated
        # The oracle pays energy for radio chunks and commit steps, so
        # the single-crash frontier must be substantial — a tiny count
        # means the update pipeline never actually ran.
        assert report.depth1_crash_points > 50

    def test_bound_2_budgeted(self):
        report = _explorer().explore(bound=2, budget=800)
        assert report.ok, report.summary()
        assert report.schedules_checked > 400

    def test_oracle_installs_the_update(self):
        """Crash-free, the update lands: the oracle outcome the crash
        schedules are compared against has version 2 active, healthy."""
        explorer = _explorer()
        report = explorer.explore(bound=0, budget=10)
        assert report.ok and not report.truncated
        scenario = get_scenario("ota", "artemis")
        device, runtime = scenario.build()
        device.run(runtime, **scenario.run_kwargs)
        extra = scenario.extract_extra(device, runtime)
        assert extra["active_version"] == 2
        assert extra["monitor_version"] == 2
        assert extra["update_outcome"] == "installed"
        assert not extra["probation"]
        assert not extra["migration_pending"]
        assert not extra["transfer_failed"]
        assert device.trace.count("ota_activate") == 1
        assert device.trace.count("ota_switch") == 1
