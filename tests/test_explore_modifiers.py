"""Exploration of machines with Range / maxAttempt modifiers, plus the
unknown-action regression for :meth:`Exploration.can_fail_with`.

The modifiers compile to extra variables (attempt counters) and extra
guards (range comparisons), which stress two parts of the explorer:
configuration normalization (time-typed variables are compared by
offset, counters by value) and the per-action witness bookkeeping when
one machine can emit several different actions.
"""

import pytest

from repro.core.actions import ActionType
from repro.core.generator import generate_machine
from repro.core.properties import DpData, MITD
from repro.errors import StateMachineError
from repro.statemachine.explore import (
    Exploration,
    Letter,
    alphabet_for,
    explore,
)


def mitd_machine(max_attempt=2):
    return generate_machine(MITD(
        task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
        limit_s=5.0, max_attempt=max_attempt,
        max_attempt_action=ActionType.SKIP_PATH))


def range_machine():
    return generate_machine(DpData(
        task="A", on_fail=ActionType.COMPLETE_PATH, var="v",
        low=0.0, high=1.0))


class TestActionVocabulary:
    def test_actions_collected_from_fail_statements(self):
        result = explore(mitd_machine(), alphabet_for(
            mitd_machine(), deltas=[1.0]), depth=1)
        assert result.actions == {"restartPath", "skipPath"}

    def test_range_machine_has_single_action(self):
        result = explore(range_machine(), alphabet_for(
            range_machine(), deltas=[1.0],
            data_values={"v": [0.5]}), depth=1)
        assert result.actions == {"completePath"}


class TestUnknownActionRegression:
    @pytest.fixture(scope="class")
    def shallow(self):
        machine = mitd_machine()
        return explore(machine, alphabet_for(machine, deltas=[1.0, 10.0]),
                       depth=2)

    def test_unknown_action_raises(self, shallow):
        # Regression: this used to return False, silently conflating a
        # typo with "unreachable within the bound".
        with pytest.raises(StateMachineError, match="skipPth"):
            shallow.can_fail_with("skipPth")

    def test_unknown_action_raises_for_witness_too(self, shallow):
        with pytest.raises(StateMachineError):
            shallow.shortest_witness("completePath")

    def test_error_lists_the_vocabulary(self, shallow):
        with pytest.raises(StateMachineError, match="restartPath"):
            shallow.can_fail_with("nope")

    def test_known_unreachable_action_is_false_not_error(self, shallow):
        # Two attempts are needed before escalation; depth 2 cannot
        # reach it (dependency + two late starts needs 3 events).
        assert shallow.can_fail_with("skipPath") is False
        assert shallow.shortest_witness("skipPath") is None

    def test_legacy_explorations_skip_the_check(self):
        # Hand-built Exploration objects without a vocabulary (older
        # callers) keep the permissive membership behaviour.
        legacy = Exploration(machine="m", depth=1, configurations=1,
                             reachable_states=frozenset({"s"}))
        assert legacy.can_fail_with("anything") is False


class TestMaxAttemptWitnesses:
    def test_escalation_witness_longer_than_first_failure(self):
        machine = mitd_machine(max_attempt=2)
        alphabet = alphabet_for(machine, deltas=[1.0, 10.0])
        result = explore(machine, alphabet, depth=4)
        first = result.shortest_witness("restartPath")
        escalated = result.shortest_witness("skipPath")
        assert first is not None and escalated is not None
        assert len(escalated) > len(first)
        # Every escalation prefix passes through the per-attempt action.
        assert result.can_fail_with("restartPath")

    @pytest.mark.parametrize("max_attempt", [1, 2, 3])
    def test_escalation_depth_tracks_max_attempt(self, max_attempt):
        machine = mitd_machine(max_attempt=max_attempt)
        alphabet = alphabet_for(machine, deltas=[10.0])
        result = explore(machine, alphabet, depth=max_attempt + 2)
        witness = result.shortest_witness("skipPath")
        assert witness is not None
        # One dependency end + max_attempt late starts.
        assert len(witness) == max_attempt + 1


class TestRangeWitnesses:
    def test_witness_carries_offending_value(self):
        machine = range_machine()
        alphabet = alphabet_for(machine, deltas=[1.0],
                                data_values={"v": [0.5, 7.0]})
        result = explore(machine, alphabet, depth=2)
        witness = result.shortest_witness("completePath")
        assert witness is not None
        assert dict(witness[-1].data)["v"] == 7.0

    def test_in_range_values_cannot_fail(self):
        machine = range_machine()
        alphabet = alphabet_for(machine, deltas=[1.0],
                                data_values={"v": [0.0, 1.0]})
        result = explore(machine, alphabet, depth=3)
        assert result.can_fail_with("completePath") is False


class TestTimeNormalization:
    def test_configurations_deduplicate_across_absolute_time(self):
        # The MITD machine stores the dependency's end *timestamp*. An
        # endTask always leaves the variable equal to "now", i.e. offset
        # zero — so no matter how deep the sequence of ends (and how
        # large the absolute timestamps grow), there are only two
        # configurations: initial, and just-saw-the-dependency. Keying
        # on absolute times would make every step a fresh configuration
        # and blow the search up exponentially.
        machine = mitd_machine(max_attempt=None)
        letters = [Letter("endTask", "B", 1.0), Letter("endTask", "B", 7.0)]
        result = explore(machine, letters, depth=12)
        assert result.configurations == 2

    def test_distinct_offsets_are_distinct_configurations(self):
        # Starts at different gaps after the dependency genuinely differ
        # (one is inside the 5 s window, one outside), and the
        # normalised key keeps them apart.
        machine = mitd_machine(max_attempt=None)
        one_gap = explore(machine, [Letter("endTask", "B", 1.0),
                                    Letter("startTask", "A", 1.0)], depth=2)
        two_gaps = explore(machine, [Letter("endTask", "B", 1.0),
                                     Letter("startTask", "A", 1.0),
                                     Letter("startTask", "A", 10.0)], depth=2)
        assert two_gaps.configurations > one_gap.configurations
