/* artemis/monitor.h — runtime <-> monitor interface (generated copy). */
#ifndef ARTEMIS_MONITOR_H
#define ARTEMIS_MONITOR_H

#include <stdint.h>

typedef enum { StartTask = 0, EndTask = 1 } eventkind_t;

typedef enum {
    ACTION_NONE = 0,
    ACTION_RESTARTTASK,
    ACTION_SKIPTASK,
    ACTION_RESTARTPATH,
    ACTION_SKIPPATH,
    ACTION_COMPLETEPATH,
} type_action;

/* Observable monitor event (Figure 8), persisted in FRAM by the
 * runtime so an interrupted callMonitor can be finalised on reboot. */
typedef struct _MonitorEvent {
    eventkind_t kind;
    uint64_t timestamp;   /* persistent-clock ticks */
    const void *taskAddr; /* current task pointer */
    uint16_t path;        /* executing path number */
    const void *depData;  /* dependent data of the finished task */
} MonitorEvent_t;

typedef struct _MonitorResult {
    type_action action;
    uint16_t path;
} MonitorResult_t;

/* Helpers the generated step functions call. */
int monitor_task_is(const MonitorEvent_t *e, const char *name);
double monitor_dep_data(const MonitorEvent_t *e, const char *key);
int monitor_event_has_data(const MonitorEvent_t *e, const char *key);
void monitor_report(MonitorResult_t *r, type_action action, uint16_t path);

/* Lifecycle (Figure 8): called by the ARTEMIS runtime. */
MonitorResult_t callMonitor(const MonitorEvent_t *e);
void resetMonitor(void);
void monitorFinalize(void);

#endif /* ARTEMIS_MONITOR_H */
