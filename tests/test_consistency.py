"""Tests for the static property-consistency checker."""

import pytest

from repro.core.actions import ActionType
from repro.core.properties import (
    Collect,
    DpData,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    PropertySet,
)
from repro.energy.capacitor import Capacitor
from repro.energy.power import PowerModel, TaskCost
from repro.spec.consistency import Severity, check
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder


def app_ab():
    return (
        AppBuilder("ab")
        .task("a").task("b").task("c")
        .path(1, ["a", "b", "c"])
        .build()
    )


def pset(*props):
    out = PropertySet()
    for p in props:
        out.add(p)
    return out


def power_abc(a=0.1, b=0.2, c=0.3):
    return PowerModel({"a": TaskCost(a, 1e-3), "b": TaskCost(b, 1e-3),
                       "c": TaskCost(c, 1e-3)})


class TestDepOrder:
    def test_collect_dep_after_task_is_error(self):
        props = pset(Collect(task="a", on_fail=ActionType.RESTART_PATH,
                             dep_task="c", count=1))
        report = check(props, app_ab())
        assert not report.consistent
        assert report.errors[0].code == "DEP-ORDER"

    def test_collect_dep_before_task_ok(self):
        props = pset(Collect(task="c", on_fail=ActionType.RESTART_PATH,
                             dep_task="a", count=1))
        assert check(props, app_ab()).consistent

    def test_collect_dep_on_earlier_path_ok(self):
        app = (AppBuilder("two").task("a").task("b")
               .path(1, ["a"]).path(2, ["b"]).build())
        props = pset(Collect(task="b", on_fail=ActionType.RESTART_PATH,
                             dep_task="a", count=1))
        assert check(props, app).consistent

    def test_mitd_never_armed_is_warning(self):
        props = pset(MITD(task="a", on_fail=ActionType.RESTART_PATH,
                          dep_task="c", limit_s=5.0))
        report = check(props, app_ab())
        assert report.consistent  # warning, not error
        assert any(i.code == "DEP-ORDER" and i.severity is Severity.WARNING
                   for i in report.warnings)


class TestTimingChecks:
    def test_mitd_window_below_execution_floor_is_error(self):
        # b takes 0.2 s between a and c; a 0.05 s MITD can never hold.
        props = pset(MITD(task="c", on_fail=ActionType.RESTART_PATH,
                          dep_task="a", limit_s=0.05))
        report = check(props, app_ab(), power=power_abc())
        assert any(i.code == "TIME-MIN" for i in report.errors)

    def test_mitd_window_above_floor_ok(self):
        props = pset(MITD(task="c", on_fail=ActionType.RESTART_PATH,
                          dep_task="a", limit_s=10.0,
                          max_attempt=2,
                          max_attempt_action=ActionType.SKIP_PATH))
        assert check(props, app_ab(), power=power_abc()).consistent

    def test_maxduration_below_task_time_is_error(self):
        props = pset(MaxDuration(task="c", on_fail=ActionType.SKIP_TASK,
                                 limit_s=0.1))
        report = check(props, app_ab(), power=power_abc(c=0.5))
        assert any(i.code == "DUR-MIN" for i in report.errors)

    def test_period_shorter_than_cycle_is_warning(self):
        props = pset(Period(task="a", on_fail=ActionType.RESTART_PATH,
                            period_s=0.1))
        report = check(props, app_ab(), power=power_abc())
        assert any(i.code == "PERIOD" for i in report.warnings)

    def test_timing_checks_skipped_without_power_model(self):
        props = pset(MaxDuration(task="c", on_fail=ActionType.SKIP_TASK,
                                 limit_s=1e-9))
        assert check(props, app_ab()).consistent


class TestEnergyCheck:
    def test_oversized_task_without_guard_is_error(self):
        cap = Capacitor(1e-4, v_initial=3.0)  # ~0.29 mJ usable
        props = pset()
        report = check(props, app_ab(), power=power_abc(c=5.0),
                       capacitor=cap)  # c: 5 mJ
        assert any(i.code == "ENERGY" and i.severity is Severity.ERROR
                   for i in report.errors)

    def test_oversized_task_with_maxtries_is_warning(self):
        cap = Capacitor(1e-4, v_initial=3.0)
        props = pset(MaxTries(task="c", on_fail=ActionType.SKIP_PATH, limit=5))
        report = check(props, app_ab(), power=power_abc(c=5.0), capacitor=cap)
        energy_issues = [i for i in report.issues if i.code == "ENERGY"]
        assert energy_issues
        assert all(i.severity is Severity.WARNING for i in energy_issues)


class TestLivelockAndActions:
    def test_mitd_without_maxattempt_warns(self):
        props = pset(MITD(task="c", on_fail=ActionType.RESTART_PATH,
                          dep_task="a", limit_s=10.0))
        report = check(props, app_ab())
        assert any(i.code == "LIVELOCK" for i in report.warnings)

    def test_collect_restart_task_without_guard_is_error(self):
        props = pset(Collect(task="c", on_fail=ActionType.RESTART_TASK,
                             dep_task="a", count=5))
        report = check(props, app_ab())
        assert any(i.code == "LIVELOCK" for i in report.errors)

    def test_collect_restart_task_with_maxtries_ok(self):
        props = pset(
            Collect(task="c", on_fail=ActionType.RESTART_TASK,
                    dep_task="a", count=5),
            MaxTries(task="c", on_fail=ActionType.SKIP_PATH, limit=6),
        )
        report = check(props, app_ab())
        assert not any(i.code == "LIVELOCK" and i.severity is Severity.ERROR
                       for i in report.issues)

    def test_conflicting_actions_warn(self):
        app = (AppBuilder("m")
               .task("a", monitored_vars=["v"]).task("b")
               .path(1, ["a", "b"]).build())
        props = pset(
            MaxTries(task="a", on_fail=ActionType.SKIP_PATH, limit=3),
            DpData(task="a", on_fail=ActionType.COMPLETE_PATH, var="v",
                   low=0.0, high=1.0),
        )
        report = check(props, app)
        assert any(i.code == "ACTION" for i in report.warnings)


class TestBenchmarkSpecIsConsistent:
    def test_health_benchmark_passes_with_expected_warnings(self, health_app):
        from repro.energy.environment import default_capacitor
        from repro.energy.power import MSP430FR5994_POWER
        from repro.workloads.health import BENCHMARK_SPEC

        props = load_properties(BENCHMARK_SPEC, health_app)
        report = check(props, health_app, power=MSP430FR5994_POWER,
                       capacitor=default_capacitor())
        assert report.consistent
        # The figure-5 maxDuration (100 ms on a 1.5 s send) is the
        # documented inconsistency the checker must catch:
        from repro.workloads.health import FIGURE5_SPEC

        fig5 = load_properties(FIGURE5_SPEC, health_app)
        fig5_report = check(fig5, health_app, power=MSP430FR5994_POWER)
        assert any(i.code == "DUR-MIN" for i in fig5_report.errors)

    def test_report_renders(self, health_app):
        from repro.workloads.health import BENCHMARK_SPEC

        props = load_properties(BENCHMARK_SPEC, health_app)
        text = str(check(props, health_app))
        assert "consistent" in text or "WARNING" in text
