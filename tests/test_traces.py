"""Tests for synthetic energy-trace generation."""

import pytest

from repro.energy.harvester import TraceHarvester
from repro.energy.traces import (
    duty_cycle,
    markov_onoff_trace,
    mean_power,
    office_light_trace,
    rf_mobility_trace,
    washout_trace,
)
from repro.errors import EnergyError


class TestRFMobility:
    def test_deterministic_per_seed(self):
        assert rf_mobility_trace(100, seed=1) == rf_mobility_trace(100, seed=1)
        assert rf_mobility_trace(100, seed=1) != rf_mobility_trace(100, seed=2)

    def test_power_within_distance_bounds(self):
        samples = rf_mobility_trace(1000, tx_power_w=3.0, gain=0.002,
                                    efficiency=0.55, min_distance_m=0.5,
                                    max_distance_m=4.0, seed=3)
        p_max = 3.0 * 0.002 / 0.5**2 * 0.55
        p_min = 3.0 * 0.002 / 4.0**2 * 0.55
        for _, power in samples:
            assert p_min - 1e-12 <= power <= p_max + 1e-12

    def test_sample_spacing(self):
        samples = rf_mobility_trace(100, step_s=10.0)
        times = [t for t, _ in samples]
        assert times == [10.0 * i for i in range(len(times))]

    def test_invalid_args_rejected(self):
        with pytest.raises(EnergyError):
            rf_mobility_trace(0)
        with pytest.raises(EnergyError):
            rf_mobility_trace(10, step_s=20)


class TestOfficeLight:
    def test_zero_outside_working_hours(self):
        samples = office_light_trace(86400, step_s=3600, day_length_s=86400,
                                     work_start_frac=0.375, work_end_frac=0.75,
                                     seed=0)
        for t, power in samples:
            frac = (t % 86400) / 86400
            if not 0.375 <= frac < 0.75:
                assert power == 0.0

    def test_positive_during_working_hours(self):
        samples = office_light_trace(86400, step_s=3600, seed=0)
        assert any(p > 0 for _, p in samples)

    def test_invalid_hours_rejected(self):
        with pytest.raises(EnergyError):
            office_light_trace(100, work_start_frac=0.8, work_end_frac=0.2)


class TestMarkovOnOff:
    def test_two_levels_only(self):
        samples = markov_onoff_trace(1000, on_power_w=5e-3, seed=4)
        assert {p for _, p in samples} <= {0.0, 5e-3}

    def test_duty_cycle_tracks_stationary_distribution(self):
        samples = markov_onoff_trace(200000, step_s=5.0, p_on_to_off=0.2,
                                     p_off_to_on=0.1, seed=5)
        # Stationary P(on) = p_off_on / (p_off_on + p_on_off) = 1/3.
        assert duty_cycle(samples) == pytest.approx(1 / 3, abs=0.05)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(EnergyError):
            markov_onoff_trace(100, p_on_to_off=0.0)


class TestWashout:
    def test_dead_window_is_zero(self):
        samples = washout_trace(100, 1e-3, dead_start_s=40, dead_length_s=20)
        for t, power in samples:
            if 40 <= t < 60:
                assert power == 0.0
            else:
                assert power == 1e-3

    def test_feeds_trace_harvester(self):
        samples = washout_trace(100, 2e-3, 50, 10)
        harvester = TraceHarvester(samples)
        assert harvester.power_at(10) == 2e-3
        assert harvester.power_at(55) == 0.0

    def test_negative_window_rejected(self):
        with pytest.raises(EnergyError):
            washout_trace(100, 1e-3, -1, 10)


class TestStats:
    def test_mean_power_piecewise(self):
        samples = [(0, 2.0), (10, 0.0), (20, 0.0)]
        # 2.0 for 10 s then 0.0 for 10 s -> mean 1.0
        assert mean_power(samples) == pytest.approx(1.0)

    def test_mean_power_degenerate(self):
        assert mean_power([]) == 0.0
        assert mean_power([(0, 3.0)]) == 3.0

    def test_duty_cycle_empty(self):
        assert duty_cycle([]) == 0.0


class TestEndToEndWithDevice:
    def test_markov_supply_drives_intermittent_run(self):
        """A bursty supply must still let the benchmark complete."""
        from repro.energy.capacitor import Capacitor
        from repro.energy.environment import EnergyEnvironment
        from repro.sim.device import Device
        from repro.workloads.health import build_artemis

        samples = markov_onoff_trace(48 * 3600, step_s=5.0, on_power_w=2e-3,
                                     p_on_to_off=0.05, p_off_to_on=0.05, seed=7)
        env = EnergyEnvironment(TraceHarvester(samples),
                                Capacitor(5.2e-3, v_initial=3.0))
        device = Device(env)
        result = device.run(build_artemis(device), max_time_s=24 * 3600)
        assert result.completed
