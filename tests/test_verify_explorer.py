"""Unit tests for the conformance checker's engine.

Covers the crash-schedule runner (payment counting, fingerprint
recording, representative selection), the explorer (oracle caching,
exhaustive bound-1 search, budget truncation, strategy validation) and
the shrinker (subset + index minimization, witness rendering). Scenario
-level conformance lives in test_verify_scenarios.py.
"""

import pytest

from repro.errors import ReproError
from repro.verify import (
    CounterexampleShrinker,
    CrashScheduleExplorer,
    CrashScheduleRunner,
    EquivalencePolicy,
    broken_commit_ordering,
    get_scenario,
    mask_time_fields,
    validate_schedule,
)


class TestValidateSchedule:
    def test_accepts_increasing(self):
        assert validate_schedule((3, 7, 9)) == (3, 7, 9)

    def test_accepts_empty(self):
        assert validate_schedule(()) == ()

    def test_rejects_non_increasing(self):
        with pytest.raises(ReproError):
            validate_schedule((5, 5))
        with pytest.raises(ReproError):
            validate_schedule((7, 3))

    def test_rejects_non_positive(self):
        with pytest.raises(ReproError):
            validate_schedule((0, 2))


class TestMaskTimeFields:
    def test_masks_recursively(self):
        value = {"t": 1.5, "payload": [{"timestamp": 2.0, "v": 3}], "v": 9}
        masked = mask_time_fields(value)
        assert masked == {"t": "<t>", "payload": [{"timestamp": "<t>",
                                                   "v": 3}], "v": 9}

    def test_leaves_scalars_alone(self):
        assert mask_time_fields(42) == 42
        assert mask_time_fields("t") == "t"


class TestRunnerRecording:
    @pytest.fixture(scope="class")
    def oracle(self):
        return get_scenario("health", "checkpoint").explorer().oracle_run

    def test_counts_every_payment(self, oracle):
        runner = oracle.runner
        assert runner.calls > 0
        assert len(runner.fingerprints) == runner.calls
        assert len(runner.categories) == runner.calls

    def test_representatives_are_first_of_each_run(self, oracle):
        runner = oracle.runner
        reps = runner.representatives(1)
        assert reps[0] == 1
        assert reps == sorted(set(reps))
        # Each representative differs from its predecessor payment.
        for index in reps[1:]:
            assert (runner.fingerprint_at(index)
                    != runner.fingerprint_at(index - 1))

    def test_representatives_window(self, oracle):
        runner = oracle.runner
        full = runner.representatives(1)
        assert runner.representatives(full[-1]) [0] == full[-1]
        assert runner.representatives(1, 0) == []

    def test_commit_payments_are_labelled(self):
        # Journaled runtimes (here: ARTEMIS) forward per-step commit
        # labels, so witnesses can name the guilty journal step.
        runner = get_scenario("synthetic", "artemis").explorer() \
            .oracle_run.runner
        labelled = [i for i in range(1, runner.calls + 1)
                    if runner.label_at(i)]
        assert labelled, "commit steps must forward their labels"
        for index in labelled:
            assert runner.category_at(index) == "commit"


class TestExplorer:
    @pytest.fixture()
    def explorer(self):
        return get_scenario("health", "checkpoint").explorer()

    def test_oracle_cached(self, explorer):
        assert explorer.oracle_run is explorer.oracle_run
        assert explorer.oracle.completed

    def test_bound_zero_checks_nothing(self, explorer):
        report = explorer.explore(bound=0)
        assert report.ok and report.schedules_checked == 0

    def test_bound_one_is_exhaustive_over_representatives(self, explorer):
        report = explorer.explore(bound=1, budget=500, stop_on_first=False)
        assert report.ok
        assert not report.truncated
        assert report.schedules_checked == report.depth1_crash_points

    def test_budget_truncates_and_says_so(self, explorer):
        report = explorer.explore(bound=2, budget=3)
        assert report.truncated
        assert report.runs_executed <= 3
        assert "TRUNCATED" in report.summary()

    def test_unknown_strategy_rejected(self, explorer):
        with pytest.raises(ReproError):
            explorer.explore(strategy="random")

    def test_negative_bound_rejected(self, explorer):
        with pytest.raises(ReproError):
            explorer.explore(bound=-1)

    def test_check_on_conforming_schedule_is_empty(self, explorer):
        reps = explorer.oracle_run.runner.representatives(1)
        assert explorer.check((reps[0],)) == []

    def test_dfs_reaches_the_bound(self, explorer):
        report = explorer.explore(bound=2, budget=500, strategy="dfs",
                                  stop_on_first=False)
        assert report.ok and not report.truncated


class TestNonCompletingOracle:
    def test_oracle_must_complete(self):
        def build():
            scenario = get_scenario("health", "checkpoint")
            device, runtime = scenario.build()
            return device, runtime

        explorer = CrashScheduleExplorer(
            build, run_kwargs={"max_time_s": 1e-6}, name="starved")
        with pytest.raises(ReproError, match="oracle"):
            explorer.oracle_run


class TestShrinker:
    def test_shrinks_to_single_crash(self):
        scenario = get_scenario("health", "artemis")
        with broken_commit_ordering():
            explorer = scenario.explorer()
            report = explorer.explore(bound=2, budget=300)
            assert not report.ok
            raw = report.counterexamples[0]
            witness = CounterexampleShrinker(explorer, max_runs=80).shrink(raw)
            # 1-minimal: a single crash exposes the injected bug.
            assert len(witness.schedule) == 1
            assert len(witness.schedule) <= len(raw.schedule)
            assert witness.problems
            assert witness.steps
            assert "crash at payment" in witness.describe()
            # The minimized schedule still fails under the mutation.
            assert explorer.check(witness.schedule)

    def test_budget_exhaustion_is_reported(self):
        scenario = get_scenario("health", "artemis")
        with broken_commit_ordering():
            explorer = scenario.explorer()
            report = explorer.explore(bound=1, budget=200)
            assert not report.ok
            shrinker = CounterexampleShrinker(explorer, max_runs=0)
            witness = shrinker.shrink(report.counterexamples[0])
            assert witness.exhausted_budget


class TestEquivalencePolicy:
    def test_default_policy_is_exact(self):
        policy = EquivalencePolicy()
        assert not policy.monotone_channels
        assert policy.compare_actions == "sequence"
