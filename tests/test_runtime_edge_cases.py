"""Edge cases of the runtime's control flow."""

import pytest

from repro.core.actions import ActionType
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder


def power():
    return PowerModel({}, default_cost=TaskCost(0.05, 1e-3))


def run(app, spec, runs=1):
    device = Device(EnergyEnvironment.continuous())
    props = load_properties(spec, app)
    runtime = ArtemisRuntime(app, props, device, power())
    result = device.run(runtime, runs=runs, max_time_s=600)
    return device, runtime, result


class TestCompletePathEdges:
    def test_complete_path_on_last_path_wraps_to_first(self):
        app = (AppBuilder("m")
               .task("a").task("b", body=lambda c: c.emit("v", 9.0),
                     monitored_vars=["v"])
               .path(1, ["a"])
               .path(2, ["b"])
               .build())
        spec = "b { dpData: v Range: [0, 1] onFail: completePath; }"
        device, runtime, result = run(app, spec, runs=2)
        assert result.runs_completed == 2
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        # Run 1: a, b (completePath on last path); run 2 wraps to path 1.
        assert ends == ["a", "b", "a", "b"]

    def test_complete_path_at_start_check(self):
        """completePath arriving on a StartTask event runs the current
        task and the rest of the path unmonitored."""
        app = (AppBuilder("m")
               .task("a").task("b").task("c").task("d")
               .path(1, ["a", "b", "c"])
               .path(2, ["d"])
               .build())
        # energyAtLeast on continuous power never fails; use a
        # collect-based completePath trigger at b's start instead.
        spec = ("b { collect: 5 dpTask: a onFail: completePath; }\n"
                "c { collect: 99 dpTask: a onFail: restartPath; }")
        device, runtime, result = run(app, spec)
        assert result.completed
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        # b and c execute unmonitored (c's unsatisfiable collect is
        # ignored); path 2 is skipped by the completePath run-end.
        assert ends == ["a", "b", "c"]

    def test_monitoring_resumes_after_complete_path_run(self):
        app = (AppBuilder("m")
               .task("a", body=lambda c: c.emit("v", 5.0),
                     monitored_vars=["v"])
               .task("b")
               .path(1, ["a", "b"])
               .build())
        spec = "a { dpData: v Range: [0, 1] onFail: completePath; }"
        device, runtime, result = run(app, spec, runs=2)
        assert result.runs_completed == 2
        # completePath fires in both runs: monitoring was re-armed.
        completes = [e for e in device.trace.of_kind("monitor_action")
                     if e.detail["action"] == "completePath"]
        assert len(completes) == 2


class TestRestartTaskEdges:
    def test_dpdata_restart_task_livelocks_and_checker_warns(self):
        """maxTries counts *starts without completion* (Figure 7: the
        counter resets on endTask), so it cannot bound a task that
        completes and is then restarted by a failing dpData check: that
        combination livelocks. The consistency checker flags it."""
        app = (AppBuilder("m")
               .task("a", body=lambda c: c.emit("v", 7.0),
                     monitored_vars=["v"])
               .task("b")
               .path(1, ["a", "b"])
               .build())
        spec = ("a { dpData: v Range: [0, 1] onFail: restartTask; "
                "maxTries: 3 onFail: skipPath; }")
        device, runtime, result = run(app, spec)
        assert not result.completed  # genuine non-termination
        a_ends = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        assert len(a_ends) > 10  # kept re-running to no avail

        from repro.spec.consistency import check

        report = check(load_properties(spec, app), app)
        assert any(i.code == "LIVELOCK" for i in report.warnings)

    def test_period_restart_task_bounded_by_maxtries(self):
        """In contrast, restartTask issued at a *start* check does feed
        the maxTries counter (repeated starts, no completion), so the
        escape works for start-time properties."""
        app = (AppBuilder("m").task("a").task("b")
               .path(1, ["a", "b"]).build())
        spec = ("b { collect: 9 dpTask: a onFail: restartTask; "
                "maxTries: 4 onFail: skipPath; }")
        device, runtime, result = run(app, spec)
        assert result.completed
        assert device.trace.count("path_skip") == 1


class TestSkipPathEdges:
    def test_skip_last_path_finishes_run(self):
        app = (AppBuilder("m").task("a").task("b")
               .path(1, ["a"]).path(2, ["b"]).build())
        spec = "b { collect: 1 dpTask: a onFail: skipPath; }"
        # collect satisfied (a ran) -> no skip. Make it unsatisfiable:
        spec = "b { collect: 5 dpTask: a onFail: skipPath; }"
        device, runtime, result = run(app, spec)
        assert result.completed
        assert device.trace.count("path_skip") == 1
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a"]

    def test_skip_middle_path_continues_with_next(self):
        app = (AppBuilder("m").task("a").task("b").task("c")
               .path(1, ["a"]).path(2, ["b"]).path(3, ["c"]).build())
        spec = "b { collect: 5 dpTask: a onFail: skipPath; }"
        device, runtime, result = run(app, spec)
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends == ["a", "c"]


class TestEventSerialization:
    def test_monitor_event_roundtrip(self):
        from repro.core.events import MonitorEvent

        event = MonitorEvent("endTask", "send", 12.5, {"v": 1.0}, path=2)
        clone = MonitorEvent.from_dict(event.to_dict())
        assert clone == event

    def test_unknown_kind_rejected(self):
        from repro.core.events import MonitorEvent

        with pytest.raises(ValueError):
            MonitorEvent("explode", "t", 0.0)

    def test_event_kind_property(self):
        from repro.core.events import EventKind, start_event

        assert start_event("t", 0.0).event_kind is EventKind.START_TASK
