"""Unit tests for the intermediate language: model and interpreter."""

import pytest

from repro.core.events import end_event, start_event
from repro.errors import StateMachineError
from repro.statemachine.model import (
    ANY_EVENT,
    Assign,
    BinOp,
    Const,
    EventField,
    EventPattern,
    Fail,
    If,
    Not,
    StateMachine,
    Transition,
    Var,
    Variable,
    failure_actions,
    walk_statements,
)
from repro.statemachine.interpreter import MachineInstance


def counter_machine(limit=3):
    """maxTries-style machine used across these tests."""
    return StateMachine(
        "tries",
        states=["NotStarted", "Started"],
        initial="NotStarted",
        variables=[Variable("i", "int", 0)],
        transitions=[
            Transition("NotStarted", "Started", EventPattern("startTask", "A"),
                       body=(Assign("i", Const(1)),)),
            Transition("Started", "Started", EventPattern("startTask", "A"),
                       guard=BinOp("<", Var("i"), Const(limit)),
                       body=(Assign("i", BinOp("+", Var("i"), Const(1))),)),
            Transition("Started", "NotStarted", EventPattern("startTask", "A"),
                       guard=BinOp(">=", Var("i"), Const(limit)),
                       body=(Fail("skipPath"), Assign("i", Const(0)))),
            Transition("Started", "NotStarted", EventPattern("endTask", "A"),
                       body=(Assign("i", Const(0)),)),
        ],
    )


class TestModelValidation:
    def test_unknown_initial_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "B")

    def test_duplicate_states_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A", "A"], "A")

    def test_transition_from_unknown_state_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "A", transitions=[
                Transition("B", "A", EventPattern(ANY_EVENT))])

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "A", transitions=[
                Transition("A", "B", EventPattern(ANY_EVENT))])

    def test_undefined_variable_in_guard_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "A", transitions=[
                Transition("A", "A", EventPattern(ANY_EVENT),
                           guard=BinOp(">", Var("ghost"), Const(0)))])

    def test_undefined_variable_in_nested_if_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "A", transitions=[
                Transition("A", "A", EventPattern(ANY_EVENT),
                           body=(If(Const(True), (Assign("ghost", Const(1)),)),))])

    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(StateMachineError):
            StateMachine("m", ["A"], "A",
                         variables=[Variable("x"), Variable("x")])

    def test_unknown_trigger_kind_rejected(self):
        with pytest.raises(StateMachineError):
            EventPattern("bogus")

    def test_unknown_operator_rejected(self):
        with pytest.raises(StateMachineError):
            BinOp("%", Const(1), Const(2))

    def test_unknown_variable_type_rejected(self):
        with pytest.raises(StateMachineError):
            Variable("x", "string")

    def test_variable_defaults_by_type(self):
        assert Variable("x", "int").initial_value == 0
        assert Variable("x", "float").initial_value == 0.0
        assert Variable("x", "bool").initial_value is False
        assert Variable("x", "time").initial_value == 0.0

    def test_referenced_tasks(self):
        machine = counter_machine()
        assert machine.referenced_tasks() == ["A"]

    def test_walk_and_failure_actions(self):
        machine = counter_machine()
        assert len(walk_statements(machine)) == 5
        fails = failure_actions(machine)
        assert len(fails) == 1
        assert fails[0].action == "skipPath"

    def test_trigger_matching(self):
        pattern = EventPattern("startTask", "A")
        assert pattern.matches("startTask", "A")
        assert not pattern.matches("startTask", "B")
        assert not pattern.matches("endTask", "A")
        assert EventPattern(ANY_EVENT).matches("endTask", "whatever")
        assert EventPattern("startTask").matches("startTask", "any")


class TestInterpreter:
    def test_initial_state_and_vars(self):
        inst = MachineInstance(counter_machine())
        assert inst.state == "NotStarted"
        assert inst.get("i") == 0

    def test_counting_transitions(self):
        inst = MachineInstance(counter_machine(limit=3))
        inst.on_event(start_event("A", 0.0))
        assert (inst.state, inst.get("i")) == ("Started", 1)
        inst.on_event(start_event("A", 1.0))
        assert inst.get("i") == 2

    def test_failure_at_limit(self):
        inst = MachineInstance(counter_machine(limit=2))
        inst.on_event(start_event("A", 0.0))
        inst.on_event(start_event("A", 1.0))
        verdicts = inst.on_event(start_event("A", 2.0))
        assert [v.action for v in verdicts] == ["skipPath"]
        assert inst.state == "NotStarted"
        assert inst.get("i") == 0

    def test_end_resets(self):
        inst = MachineInstance(counter_machine())
        inst.on_event(start_event("A", 0.0))
        inst.on_event(end_event("A", 1.0))
        assert inst.state == "NotStarted"
        assert inst.get("i") == 0

    def test_implicit_self_transition_for_unmatched(self):
        inst = MachineInstance(counter_machine())
        verdicts = inst.on_event(start_event("B", 0.0))
        assert verdicts == []
        assert inst.state == "NotStarted"

    def test_reset_restores_defaults(self):
        inst = MachineInstance(counter_machine())
        inst.on_event(start_event("A", 0.0))
        inst.reset()
        assert inst.state == "NotStarted"
        assert inst.get("i") == 0

    def test_unknown_variable_access_rejected(self):
        inst = MachineInstance(counter_machine())
        with pytest.raises(StateMachineError):
            inst.get("ghost")

    def test_store_persistence_across_instances(self):
        store = {}
        inst = MachineInstance(counter_machine(), store)
        inst.on_event(start_event("A", 0.0))
        revived = MachineInstance(counter_machine(), store)
        assert revived.state == "Started"
        assert revived.get("i") == 1

    def test_timestamp_arithmetic(self):
        machine = StateMachine(
            "dur", ["Idle", "Run"], "Idle",
            variables=[Variable("start", "time", 0.0)],
            transitions=[
                Transition("Idle", "Run", EventPattern("startTask", "A"),
                           body=(Assign("start", EventField("timestamp")),)),
                Transition("Run", "Idle", EventPattern("endTask", "A"),
                           guard=BinOp(">", BinOp("-", EventField("timestamp"),
                                                  Var("start")), Const(5.0)),
                           body=(Fail("skipTask"),)),
                Transition("Run", "Idle", EventPattern("endTask", "A")),
            ],
        )
        inst = MachineInstance(machine)
        inst.on_event(start_event("A", 10.0))
        assert inst.get("start") == 10.0
        verdicts = inst.on_event(end_event("A", 16.5))
        assert [v.action for v in verdicts] == ["skipTask"]

    def test_guard_order_first_match_wins(self):
        machine = StateMachine(
            "order", ["S"], "S",
            transitions=[
                Transition("S", "S", EventPattern(ANY_EVENT), guard=Const(True),
                           body=(Fail("skipTask"),)),
                Transition("S", "S", EventPattern(ANY_EVENT), guard=Const(True),
                           body=(Fail("skipPath"),)),
            ],
        )
        inst = MachineInstance(machine)
        verdicts = inst.on_event(start_event("A", 0.0))
        assert [v.action for v in verdicts] == ["skipTask"]

    def test_if_else_branches(self):
        machine = StateMachine(
            "cond", ["S"], "S",
            variables=[Variable("x", "int", 0)],
            transitions=[
                Transition("S", "S", EventPattern("startTask", "A"),
                           body=(If(BinOp(">", EventField("timestamp"), Const(5)),
                                    (Assign("x", Const(1)),),
                                    (Assign("x", Const(2)),)),)),
            ],
        )
        inst = MachineInstance(machine)
        inst.on_event(start_event("A", 10.0))
        assert inst.get("x") == 1
        inst.on_event(start_event("A", 1.0))
        assert inst.get("x") == 2

    def test_boolean_operators_short_circuit(self):
        machine = StateMachine(
            "boolops", ["S"], "S",
            variables=[Variable("flag", "bool", False)],
            transitions=[
                Transition("S", "S", EventPattern(ANY_EVENT),
                           guard=BinOp("or", Const(True),
                                       BinOp("/", Const(1), Const(0))),
                           body=(Assign("flag", Const(True)),)),
            ],
        )
        inst = MachineInstance(machine)
        inst.on_event(start_event("A", 0.0))  # would raise if not short-circuit
        assert inst.get("flag") is True

    def test_division_by_zero_raises(self):
        machine = StateMachine(
            "dz", ["S"], "S",
            transitions=[
                Transition("S", "S", EventPattern(ANY_EVENT),
                           guard=BinOp(">", BinOp("/", Const(1), Const(0)),
                                       Const(0)))],
        )
        inst = MachineInstance(machine)
        with pytest.raises(StateMachineError):
            inst.on_event(start_event("A", 0.0))

    def test_data_field_access(self):
        machine = StateMachine(
            "data", ["S"], "S",
            transitions=[
                Transition("S", "S", EventPattern("endTask", "A"),
                           guard=BinOp(">", EventField("data.temp"), Const(38)),
                           body=(Fail("completePath"),)),
            ],
        )
        inst = MachineInstance(machine)
        assert inst.on_event(end_event("A", 0.0, {"temp": 36.5})) == []
        verdicts = inst.on_event(end_event("A", 1.0, {"temp": 39.0}))
        assert [v.action for v in verdicts] == ["completePath"]

    def test_missing_data_field_raises(self):
        machine = StateMachine(
            "data2", ["S"], "S",
            transitions=[
                Transition("S", "S", EventPattern("endTask", "A"),
                           guard=BinOp(">", EventField("data.temp"), Const(0)))],
        )
        inst = MachineInstance(machine)
        with pytest.raises(StateMachineError):
            inst.on_event(end_event("A", 0.0, {}))

    def test_not_operator(self):
        machine = StateMachine(
            "neg", ["S"], "S",
            variables=[Variable("seen", "bool", False)],
            transitions=[
                Transition("S", "S", EventPattern(ANY_EVENT),
                           guard=Not(Var("seen")),
                           body=(Assign("seen", Const(True)), Fail("restartTask"))),
            ],
        )
        inst = MachineInstance(machine)
        assert len(inst.on_event(start_event("A", 0.0))) == 1
        assert inst.on_event(start_event("A", 1.0)) == []

    def test_snapshot_contains_state_and_vars(self):
        inst = MachineInstance(counter_machine())
        snap = inst.snapshot()
        assert snap["state"] == "NotStarted"
        assert snap["var.i"] == 0
