"""Tests for the checkpoint-based substrate (Mementos/TICS-style)."""

import pytest

from repro.checkpoint.program import Block, CheckpointProgram, TimedRegion
from repro.checkpoint.runtime import CheckpointRuntime
from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.errors import RuntimeConfigError
from repro.sim.device import Device


def continuous():
    return Device(EnergyEnvironment.continuous())


def harvested(usable_mj, charge_s=30.0):
    cap = Capacitor(capacitance=usable_mj * 1e-3 / 2.88, v_max=3.3,
                    v_on=3.0, v_off=1.8, v_initial=3.0)
    return Device(EnergyEnvironment.for_charging_delay(charge_s, capacitor=cap))


def counting_program(checkpoints=("b1", "b2"), regions=()):
    def incr(name):
        def body(state):
            state[name] = state.get(name, 0) + 1
        return body

    blocks = [Block(f"b{i}", 0.2, 1e-3, body=incr(f"b{i}")) for i in range(4)]
    return CheckpointProgram("count", blocks, checkpoint_after=checkpoints,
                             timed_regions=regions)


class TestProgramModel:
    def test_duplicate_blocks_rejected(self):
        with pytest.raises(RuntimeConfigError):
            CheckpointProgram("p", [Block("a", 1), Block("a", 1)])

    def test_empty_program_rejected(self):
        with pytest.raises(RuntimeConfigError):
            CheckpointProgram("p", [])

    def test_unknown_checkpoint_rejected(self):
        with pytest.raises(RuntimeConfigError):
            CheckpointProgram("p", [Block("a", 1)], checkpoint_after=["ghost"])

    def test_reversed_region_rejected(self):
        with pytest.raises(RuntimeConfigError):
            CheckpointProgram("p", [Block("a", 1), Block("b", 1)],
                              timed_regions=[TimedRegion("b", "a", 5.0)])

    def test_region_lookup(self):
        program = counting_program(regions=[TimedRegion("b1", "b2", 5.0)])
        assert program.regions_containing(1)
        assert program.regions_containing(2)
        assert not program.regions_containing(0)
        assert not program.regions_containing(3)


class TestExecution:
    def test_continuous_run_executes_each_block_once(self):
        device = continuous()
        runtime = CheckpointRuntime(counting_program(), device)
        result = device.run(runtime)
        assert result.completed
        assert runtime._state == {"b0": 1, "b1": 1, "b2": 1, "b3": 1}
        assert device.trace.count("checkpoint") == 2

    def test_checkpoint_cost_charged_as_runtime(self):
        device = continuous()
        device.run(CheckpointRuntime(counting_program(), device))
        assert device.result.busy_time_s["runtime"] > 0

    def test_power_failure_rolls_back_to_last_checkpoint(self):
        # ~0.45 mJ usable: two 0.2 mJ blocks per charge; block re-execution
        # happens, but checkpointed progress is never lost.
        device = harvested(usable_mj=0.45)
        runtime = CheckpointRuntime(counting_program(), device)
        result = device.run(runtime, max_time_s=3600)
        assert result.completed
        assert result.reboots >= 1
        # Forward progress: final counters reflect at least one full
        # execution of every block; re-executed blocks count higher.
        assert all(runtime._state[f"b{i}"] >= 1 for i in range(4))

    def test_no_checkpoints_restarts_from_scratch(self):
        device = harvested(usable_mj=0.45)
        program = counting_program(checkpoints=())
        runtime = CheckpointRuntime(program, device)
        result = device.run(runtime, max_time_s=3600)
        # Whole program is 0.8 mJ > 0.45 usable: without checkpoints the
        # program restarts from b0 forever — the classic non-termination
        # that checkpoint placement (and ARTEMIS maxTries) exists to fix.
        assert not result.completed

    def test_double_buffer_survives_failure_between_checkpoints(self):
        device = harvested(usable_mj=0.45)
        runtime = CheckpointRuntime(counting_program(), device)
        result = device.run(runtime, max_time_s=3600)
        assert result.completed
        # The committed snapshot is always internally consistent: pc
        # beyond b1's checkpoint implies b1's state is present.
        slot = runtime._current_slot.get()
        snapshot = runtime._slots[slot].get()
        assert snapshot["pc"] >= 2
        assert "b1" in snapshot["state"]

    def test_multiple_runs(self):
        device = continuous()
        runtime = CheckpointRuntime(counting_program(), device)
        result = device.run(runtime, runs=3)
        assert result.runs_completed == 3


class TestTimedRegions:
    def region_program(self, expiry_s):
        return counting_program(
            checkpoints=("b0", "b1", "b2"),
            regions=[TimedRegion("b1", "b3", expiry_s)],
        )

    def test_fresh_resume_keeps_position(self):
        device = harvested(usable_mj=0.45, charge_s=5.0)
        runtime = CheckpointRuntime(self.region_program(expiry_s=3600.0), device)
        result = device.run(runtime, max_time_s=3600)
        assert result.completed
        # No expiration fired with a generous window.
        assert not any(e.detail.get("action") == "regionRestart"
                       for e in device.trace.of_kind("monitor_action"))

    def test_expired_resume_restarts_region(self):
        # Charging takes 60 s but the region expires after 10 s: a
        # resume inside the region rolls back to its start. 0.75 mJ
        # usable fits the whole region (0.6 mJ) on one fresh charge, so
        # the restarted region then completes.
        device = harvested(usable_mj=0.75, charge_s=60.0)
        runtime = CheckpointRuntime(self.region_program(expiry_s=10.0), device)
        result = device.run(runtime, max_time_s=1800)
        restarts = [e for e in device.trace.of_kind("monitor_action")
                    if e.detail.get("action") == "regionRestart"]
        # TICS-style systems restart the region; with a region cheap
        # enough to finish on one charge cycle, it then completes.
        assert restarts
        assert result.completed

    def test_expiration_livelock_without_escape(self):
        """The TICS/Mayfly failure mode on the checkpoint substrate: a
        region too expensive for one charge cycle plus an expiry shorter
        than the charging delay can never complete — there is no
        maxAttempt equivalent."""
        blocks = [
            Block("setup", 0.1, 1e-3),
            Block("sense", 0.2, 1e-3),
            Block("crunch", 0.4, 1e-3),  # region needs 0.6 mJ total
        ]
        program = CheckpointProgram(
            "livelock", blocks, checkpoint_after=("setup", "sense"),
            timed_regions=[TimedRegion("sense", "crunch", 10.0)])
        device = harvested(usable_mj=0.55, charge_s=60.0)
        runtime = CheckpointRuntime(program, device)
        result = device.run(runtime, max_time_s=1800)
        assert not result.completed
        restarts = [e for e in device.trace.of_kind("monitor_action")
                    if e.detail.get("action") == "regionRestart"]
        assert len(restarts) >= 2


class TestResumePointHelper:
    def test_resume_points(self):
        program = counting_program(checkpoints=("b1",))
        assert program.resume_point_after_checkpoint(None) == 0
        assert program.resume_point_after_checkpoint("b1") == 2
