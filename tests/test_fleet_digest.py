"""Property tests for the streaming percentile sketches and windowed
rollups the control plane aggregates telemetry with
(:mod:`repro.fleet.digest`)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.digest import (
    DigestError,
    P2Quantile,
    QuantileDigest,
    WindowedRollup,
)

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
sample_lists = st.lists(finite_floats, min_size=1, max_size=200)
quantiles = st.floats(min_value=0.0, max_value=1.0)


def build(samples, relative_error=0.01):
    d = QuantileDigest(relative_error)
    for x in samples:
        d.add(x)
    return d


def true_rank_value(samples, q):
    """The reference the digest's guarantee is stated against: the
    sorted sample at rank ``ceil(q * (n - 1))``."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q * (len(ordered) - 1))))
    return ordered[rank]


class TestQuantileDigestAccuracy:
    @given(sample_lists, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_rank_error_bound_vs_sorted_reference(self, samples, q):
        """quantile(q) is within relative error of the true sample at
        that rank (absolute error epsilon near zero)."""
        e = 0.01
        d = build(samples, relative_error=e)
        got = d.quantile(q)
        truth = true_rank_value(samples, q)
        if abs(truth) < d.epsilon:
            assert abs(got - truth) <= d.epsilon
        else:
            # The clamp to [min, max] can only move the estimate toward
            # the truth, so the bin bound is still valid.
            assert abs(got - truth) <= e * abs(truth) + d.epsilon

    @given(sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_extremes_exact(self, samples):
        d = build(samples)
        assert d.quantile(0.0) == min(samples)
        assert d.quantile(1.0) == max(samples)
        assert d.min == min(samples)
        assert d.max == max(samples)

    @given(sample_lists, quantiles)
    @settings(max_examples=100, deadline=None)
    def test_estimate_within_observed_range(self, samples, q):
        d = build(samples)
        assert min(samples) <= d.quantile(q) <= max(samples)

    def test_single_sample_every_quantile(self):
        d = build([42.5])
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert d.quantile(q) == 42.5

    def test_empty_digest_raises(self):
        d = QuantileDigest()
        assert d.count == 0
        assert d.min is None and d.max is None
        with pytest.raises(DigestError):
            d.quantile(0.5)

    def test_rejects_bad_inputs(self):
        d = QuantileDigest()
        with pytest.raises(DigestError):
            d.add(float("nan"))
        with pytest.raises(DigestError):
            d.add(float("inf"))
        with pytest.raises(DigestError):
            d.add(1.0, n=0)
        d.add(1.0)
        with pytest.raises(DigestError):
            d.quantile(1.5)
        with pytest.raises(DigestError):
            QuantileDigest(relative_error=1.5)

    def test_weighted_add_equals_repeated_add(self):
        a = QuantileDigest()
        a.add(3.25, n=7)
        b = QuantileDigest()
        for _ in range(7):
            b.add(3.25)
        assert a == b


class TestQuantileDigestMerge:
    @given(st.lists(finite_floats, max_size=60),
           st.lists(finite_floats, max_size=60),
           st.lists(finite_floats, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_merge_exactly_associative_and_commutative(self, xs, ys, zs):
        a, b, c = build(xs), build(ys), build(zs)
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(st.lists(finite_floats, max_size=60),
           st.lists(finite_floats, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_stream(self, xs, ys):
        """Sharded ingestion folds to exactly the unsharded sketch."""
        assert build(xs).merge(build(ys)) == build(xs + ys)

    def test_merge_identity_and_mismatch(self):
        d = build([1.0, 2.0])
        empty = QuantileDigest()
        assert d.merge(empty) == d
        with pytest.raises(DigestError):
            d.merge(QuantileDigest(relative_error=0.05))
        with pytest.raises(DigestError):
            d.merge("not a digest")

    @given(sample_lists)
    @settings(max_examples=50, deadline=None)
    def test_dict_round_trip(self, samples):
        d = build(samples)
        assert QuantileDigest.from_dict(d.to_dict()) == d


class TestP2Quantile:
    def test_exact_up_to_five_samples(self):
        p = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            p.add(x)
        assert p.value() == 3.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=50, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_sample_range(self, samples):
        p = P2Quantile(0.9)
        for x in samples:
            p.add(x)
        assert min(samples) <= p.value() <= max(samples)

    def test_uniform_median_close(self):
        p = P2Quantile(0.5)
        for x in range(1001):
            p.add(float(x))
        assert abs(p.value() - 500.0) < 10.0

    def test_rejects_degenerate_quantile_and_empty_value(self):
        with pytest.raises(DigestError):
            P2Quantile(0.0)
        with pytest.raises(DigestError):
            P2Quantile(1.0)
        with pytest.raises(DigestError):
            P2Quantile(0.5).value()


class TestWindowedRollupBoundaries:
    # Binary-representable widths: k*w and its division back are exact
    # in float64, so the boundary membership is well-defined. For
    # arbitrary widths only the covering invariant below can hold.
    @given(st.sampled_from([0.25, 0.5, 1.0, 2.0, 30.0, 60.0, 600.0]),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_boundary_sample_opens_new_window(self, width, k):
        """A sample exactly on a window boundary belongs to the window
        it opens: window k covers [k*w, (k+1)*w)."""
        r = WindowedRollup(width)
        t = k * r.window_s
        stat = r.add(t, 1.0)
        assert r.window_index(t) == k
        assert stat.start == pytest.approx(k * r.window_s)
        assert stat.start <= t < stat.end

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        finite_floats), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_every_sample_lands_in_its_covering_window(self, points):
        r = WindowedRollup(60.0)
        for t, v in points:
            stat = r.add(t, v)
            assert stat.start <= t < stat.end
        assert r.count == len(points)
        starts = [w.start for w in r.windows()]
        assert starts == sorted(starts)

    def test_windows_align_to_multiples_of_width(self):
        r = WindowedRollup(600.0)
        for t in (0.0, 599.999, 600.0, 1234.5, 1799.9, 1800.0):
            r.add(t, 1.0)
        assert [w.start for w in r.windows()] == [0.0, 600.0, 1200.0, 1800.0]
        assert [w.count for w in r.windows()] == [2, 1, 2, 1]

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        finite_floats), max_size=50),
        st.lists(st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            finite_floats), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_stream(self, xs, ys):
        def fold(points):
            r = WindowedRollup(30.0)
            for t, v in points:
                r.add(t, v)
            return r

        merged = fold(xs).merge(fold(ys))
        combined = fold(xs + ys)
        got = [w.to_dict() for w in merged.windows()]
        want = [w.to_dict() for w in combined.windows()]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            # Digest-backed fields (count/min/max/percentiles) merge
            # exactly; the float running total is only associative up
            # to summation order, so the mean gets an ulp of slack.
            assert g["mean"] == pytest.approx(w["mean"], rel=1e-12,
                                              abs=1e-12)
            g.pop("mean"), w.pop("mean")
            assert g == w

    def test_merge_mismatch_and_bad_width(self):
        with pytest.raises(DigestError):
            WindowedRollup(0.0)
        with pytest.raises(DigestError):
            WindowedRollup(10.0).merge(WindowedRollup(20.0))

    def test_window_stats(self):
        r = WindowedRollup(10.0)
        for v in (1.0, 2.0, 3.0):
            r.add(5.0, v)
        (w,) = r.windows()
        assert w.mean == pytest.approx(2.0)
        assert w.min == 1.0 and w.max == 3.0
        doc = w.to_dict()
        assert doc["count"] == 3
        assert doc["p50"] == pytest.approx(2.0, rel=0.03)
