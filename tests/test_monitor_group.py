"""Tests for MonitorGroup: several independent monitors fed as one."""

import pytest

from repro.core.actions import ActionType
from repro.core.events import end_event, start_event
from repro.core.monitor import ArtemisMonitor, MonitorGroup
from repro.core.properties import Collect, MaxTries, PropertySet
from repro.core.runtime import ArtemisRuntime
from repro.energy.power import PowerModel, TaskCost
from repro.errors import ReproError
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder


class Brownout(Exception):
    """Injected failure inside a spend callback."""


def pset(*props):
    out = PropertySet()
    for p in props:
        out.add(p)
    return out


def two_member_group(nvm):
    tries = ArtemisMonitor(
        pset(MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=2)),
        nvm, name="mon_tries")
    collect = ArtemisMonitor(
        pset(Collect(task="A", on_fail=ActionType.RESTART_PATH,
                     dep_task="B", count=1)),
        nvm, name="mon_collect")
    return MonitorGroup([tries, collect], nvm)


class TestGroupBasics:
    def test_aggregates_actions_across_members(self, nvm):
        group = two_member_group(nvm)
        group.reset()
        group.call(start_event("A", 0.0))  # collect violation, tries=1
        group.call(start_event("A", 1.0))  # collect violation, tries=2
        actions = group.call(start_event("A", 2.0))
        assert {a.type for a in actions} == {
            ActionType.SKIP_PATH, ActionType.RESTART_PATH}

    def test_no_violation_empty(self, nvm):
        group = two_member_group(nvm)
        group.reset()
        assert group.call(end_event("B", 0.0)) == []

    def test_properties_for_task_sums_members(self, nvm):
        group = two_member_group(nvm)
        assert group.properties_for_task("A") == 2

    def test_reinit_propagates(self, nvm):
        group = two_member_group(nvm)
        group.reset()
        group.call(start_event("A", 0.0))
        assert group.reinit_for_path_restart(["A"]) == 1  # maxTries only

    def test_empty_group_rejected(self, nvm):
        with pytest.raises(ReproError):
            MonitorGroup([], nvm)

    def test_duplicate_names_rejected(self, nvm):
        a = ArtemisMonitor(pset(), nvm, name="same")
        with pytest.raises(ReproError):
            MonitorGroup([a, a], nvm)


class TestGroupInterruption:
    def test_failure_in_second_member_preserves_first_members_actions(
            self, nvm):
        group = two_member_group(nvm)
        group.reset()
        # Arm both members for violation on the next start of A.
        group.call(start_event("A", 0.0))
        group.call(start_event("A", 1.0))
        # Kill the second member's call (member 1 = mon_tries, member 2
        # = mon_collect; each member's call spends base+1 machine = 2
        # spends → spends 3.. belong to member 2).
        calls = {"n": 0}

        def spend(seconds):
            calls["n"] += 1
            if calls["n"] == 3:
                raise Brownout()

        with pytest.raises(Brownout):
            group.call(start_event("A", 2.0), spend=spend,
                       per_machine_cost_s=1e-3, base_cost_s=1e-3)
        assert group.in_progress
        actions = group.finalize()
        # BOTH members' verdicts are present despite the interruption.
        assert {a.type for a in actions} == {
            ActionType.SKIP_PATH, ActionType.RESTART_PATH}
        assert not group.in_progress

    def test_failure_before_any_member_redelivers_once(self, nvm):
        group = two_member_group(nvm)
        group.reset()

        def bomb(seconds):
            raise Brownout()

        with pytest.raises(Brownout):
            group.call(start_event("A", 0.0), spend=bomb, base_cost_s=1e-3)
        actions = group.finalize()
        # Exactly one attempt counted by maxTries despite the retry.
        assert group.monitors[0].instances[0].get("i") == 1
        assert [a.type for a in actions] == [ActionType.RESTART_PATH]

    def test_group_state_survives_reconstruction(self, nvm):
        group = two_member_group(nvm)
        group.reset()

        def bomb(seconds):
            raise Brownout()

        with pytest.raises(Brownout):
            group.call(start_event("A", 0.0), spend=bomb, base_cost_s=1e-3)
        revived = two_member_group(nvm)
        assert revived.in_progress
        revived.finalize()
        assert revived.monitors[0].instances[0].get("i") == 1


class TestGroupWithRuntime:
    def test_runtime_runs_with_group_monitor(self):
        from repro.energy.environment import EnergyEnvironment
        from repro.sim.device import Device

        device = Device(EnergyEnvironment.continuous())
        app = (AppBuilder("m").task("a").task("b")
               .path(1, ["a", "b"]).build())
        member1 = ArtemisMonitor(
            load_properties("a { maxTries: 5 onFail: skipPath; }", app),
            device.nvm, name="team1")
        member2 = ArtemisMonitor(
            load_properties("b { collect: 2 dpTask: a onFail: restartPath; }",
                            app),
            device.nvm, name="team2")
        group = MonitorGroup([member1, member2], device.nvm)
        runtime = ArtemisRuntime(
            app, load_properties("", app), device,
            PowerModel({}, default_cost=TaskCost(0.05, 1e-3)),
            monitor=group)
        result = device.run(runtime, max_time_s=600)
        assert result.completed
        # collect: 2 forced one path restart through the group.
        assert device.trace.count("path_restart") == 1


class TestGroupEquivalence:
    """A group of single-property monitors must behave exactly like one
    monolithic monitor over the same property set, for any event stream."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _events = st.lists(
        st.tuples(st.sampled_from(["startTask", "endTask"]),
                  st.sampled_from(["A", "B"]),
                  st.floats(0.1, 50.0, allow_nan=False)),
        max_size=30)

    @given(stream=_events)
    @settings(max_examples=40, deadline=None)
    def test_group_of_singletons_equals_monolith(self, stream):
        from repro.nvm.memory import NonVolatileMemory

        props = [
            MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=3),
            Collect(task="A", on_fail=ActionType.RESTART_PATH,
                    dep_task="B", count=2),
        ]
        nvm1 = NonVolatileMemory()
        mono = ArtemisMonitor(pset(*props), nvm1, name="mono")
        mono.reset()
        nvm2 = NonVolatileMemory()
        members = [ArtemisMonitor(pset(p), nvm2, name=f"m{i}")
                   for i, p in enumerate(props)]
        group = MonitorGroup(members, nvm2)
        group.reset()

        t = 0.0
        for kind, task, dt in stream:
            t += dt
            from repro.core.events import MonitorEvent

            event = MonitorEvent(kind, task, t)
            a = sorted((x.type.value, x.path) for x in mono.call(event))
            b = sorted((x.type.value, x.path) for x in group.call(event))
            assert a == b
