"""Tests for the trace-analysis module."""

import pytest

from repro.sim.analysis import (
    action_summary,
    charge_waits,
    compare_traces,
    inter_task_delays,
    path_attempts,
    reboot_intervals,
    render_timeline,
    task_statistics,
)
from repro.sim.tracer import Tracer


def trace_of(*events):
    tracer = Tracer()
    for t, kind, detail in events:
        tracer.record(t, kind, **detail)
    return tracer


class TestTaskStatistics:
    def test_counts_and_durations(self):
        trace = trace_of(
            (0.0, "task_start", {"task": "a"}),
            (1.0, "task_end", {"task": "a"}),
            (2.0, "task_start", {"task": "a"}),   # dies: no end
            (3.0, "task_start", {"task": "a"}),
            (4.5, "task_end", {"task": "a"}),
            (5.0, "task_skip", {"task": "b"}),
        )
        stats = task_statistics(trace)
        assert stats["a"].starts == 3
        assert stats["a"].completions == 2
        assert stats["a"].attempts_wasted == 1
        assert stats["a"].durations == [1.0, 1.5]
        assert stats["a"].mean_duration_s == pytest.approx(1.25)
        assert stats["b"].skips == 1

    def test_empty_trace(self):
        assert task_statistics(Tracer()) == {}


class TestDerivedSeries:
    def test_action_summary(self):
        trace = trace_of(
            (0.0, "monitor_action", {"action": "restartPath"}),
            (1.0, "monitor_action", {"action": "restartPath"}),
            (2.0, "monitor_action", {"action": "skipPath"}),
        )
        assert action_summary(trace) == {"restartPath": 2, "skipPath": 1}

    def test_inter_task_delays(self):
        trace = trace_of(
            (0.0, "task_end", {"task": "b"}),
            (2.5, "task_start", {"task": "a"}),
            (3.0, "task_end", {"task": "b"}),
            (10.0, "task_start", {"task": "a"}),
        )
        assert inter_task_delays(trace, "b", "a") == [2.5, 7.0]

    def test_inter_task_delay_requires_producer_first(self):
        trace = trace_of((0.0, "task_start", {"task": "a"}),
                         (1.0, "task_end", {"task": "b"}))
        assert inter_task_delays(trace, "b", "a") == []

    def test_reboot_intervals(self):
        trace = trace_of(
            (1.0, "power_failure", {}),
            (5.0, "power_failure", {}),
            (12.0, "power_failure", {}),
        )
        assert reboot_intervals(trace) == [4.0, 7.0]

    def test_charge_waits(self):
        trace = trace_of(
            (0.0, "boot", {"first": True}),
            (60.0, "boot", {"charge_wait_s": 60.0}),
            (180.0, "boot", {"charge_wait_s": 120.0}),
        )
        assert charge_waits(trace) == [60.0, 120.0]


class TestPathAttempts:
    def test_segments_with_outcomes(self):
        trace = trace_of(
            (0.0, "task_start", {"task": "a", "path": 1}),
            (1.0, "task_end", {"task": "a", "path": 1}),
            (1.0, "path_restart", {"path": 1}),
            (1.0, "task_start", {"task": "a", "path": 1}),
            (2.0, "task_end", {"task": "a", "path": 1}),
            (2.0, "path_complete", {"path": 1}),
            (2.0, "task_start", {"task": "c", "path": 2}),
            (3.0, "path_skip", {"path": 2}),
        )
        attempts = path_attempts(trace)
        assert [(a.path, a.outcome) for a in attempts] == [
            (1, "restarted"), (1, "completed"), (2, "skipped")]

    def test_real_fig13_trace_has_three_path2_attempts(self):
        from repro.workloads.health import build_artemis, make_intermittent_device

        device = make_intermittent_device(420.0)
        device.run(build_artemis(device), max_time_s=4 * 3600)
        attempts = [a for a in path_attempts(device.trace) if a.path == 2]
        assert [a.outcome for a in attempts] == [
            "restarted", "restarted", "skipped"]

    def test_render_timeline_contains_rows(self):
        from repro.workloads.health import build_artemis, make_continuous_device

        device = make_continuous_device()
        device.run(build_artemis(device))
        art = render_timeline(device.trace)
        assert "path 1" in art and "path 3" in art
        assert "completed" in art

    def test_render_empty(self):
        assert render_timeline(Tracer()) == "(empty trace)"


class TestCompareTraces:
    def test_identical_traces_no_diffs(self):
        a = trace_of((0.0, "task_start", {"task": "x"}))
        b = trace_of((0.0, "task_start", {"task": "x"}))
        assert compare_traces(a, b) == []

    def test_divergence_reported(self):
        a = trace_of((0.0, "task_start", {"task": "x"}))
        b = trace_of((0.0, "task_start", {"task": "y"}))
        diffs = compare_traces(a, b)
        assert len(diffs) == 1
        assert diffs[0][0] == 0
