"""Small-surface tests closing coverage gaps across modules."""

import pytest

from repro.errors import EnergyError, SpecValidationError
from repro.sim.tracer import Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0.0, "task_start", task="a")
        assert len(tracer) == 0

    def test_dump_renders_and_limits(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record(float(i), "boot")
        dump = tracer.dump(limit=2)
        assert dump.count("boot") == 2
        assert "[" in dump and "]" in dump

    def test_last_returns_most_recent(self):
        tracer = Tracer()
        tracer.record(0.0, "task_start", task="a")
        tracer.record(1.0, "task_start", task="b")
        assert tracer.last("task_start").detail["task"] == "b"
        assert tracer.last("never") is None

    def test_task_events_filters_by_task(self):
        tracer = Tracer()
        tracer.record(0.0, "task_start", task="a")
        tracer.record(1.0, "task_skip", task="b")
        tracer.record(2.0, "task_end", task="a")
        assert len(tracer.task_events("a")) == 2

    def test_event_str(self):
        tracer = Tracer()
        tracer.record(1.5, "task_start", task="x")
        assert "task_start" in str(tracer.events[0])
        assert "task=x" in str(tracer.events[0])


class TestEnvironmentEdges:
    def test_harvest_on_continuous_is_zero(self):
        from repro.energy.environment import EnergyEnvironment

        env = EnergyEnvironment.continuous()
        assert env.harvest(0.0, 100.0) == 0.0

    def test_negative_consume_rejected(self):
        from repro.energy.environment import EnergyEnvironment

        with pytest.raises(EnergyError):
            EnergyEnvironment.continuous().consume(-1.0)

    def test_charging_time_when_already_charged(self):
        from repro.energy.environment import EnergyEnvironment

        env = EnergyEnvironment.for_charging_delay(60.0)
        assert env.charging_time_from(0.0) == 0.0


class TestValidatorClauseErrors:
    def make_app(self):
        from repro.taskgraph.builder import AppBuilder

        return AppBuilder("m").task("a").task("b").path(1, ["a", "b"]).build()

    def test_jitter_must_be_duration(self):
        from repro.spec.validator import load_properties

        with pytest.raises(SpecValidationError):
            load_properties("a { period: 10s jitter: soon onFail: restartTask; }",
                            self.make_app())

    def test_path_must_be_positive_integer(self):
        from repro.spec.validator import load_properties

        with pytest.raises(SpecValidationError):
            load_properties("a { maxTries: 2 onFail: skipPath Path: 0; }",
                            self.make_app())

    def test_maxattempt_must_be_positive(self):
        from repro.spec.validator import load_properties

        with pytest.raises(SpecValidationError):
            load_properties(
                "b { MITD: 5s dpTask: a maxAttempt: 0 onFail: skipPath "
                "onFail: restartPath; }", self.make_app())

    def test_error_carries_line_number(self):
        from repro.spec.validator import load_properties

        with pytest.raises(SpecValidationError) as exc:
            load_properties("a { maxTries: 2 onFail: skipPath; }\n"
                            "b { teleport: 1 onFail: skipPath; }",
                            self.make_app())
        assert "line 2" in str(exc.value)


class TestSyntaxErrorPositions:
    def test_lexer_error_position(self):
        from repro.errors import SpecSyntaxError
        from repro.spec.lexer import tokenize

        with pytest.raises(SpecSyntaxError) as exc:
            tokenize("a {\n  maxTries: @3;\n}")
        assert exc.value.line == 2

    def test_parser_error_position(self):
        from repro.errors import SpecSyntaxError
        from repro.spec.parser import parse_spec

        with pytest.raises(SpecSyntaxError) as exc:
            parse_spec("a {\n maxTries 3 onFail: skipPath;\n}")
        assert exc.value.line == 2


class TestActionsAndResults:
    def test_action_str_forms(self):
        from repro.core.actions import Action, ActionType

        assert str(Action(ActionType.SKIP_PATH)) == "skipPath"
        assert str(Action(ActionType.RESTART_PATH, path=2)) == "restartPath(path 2)"

    def test_path_and_app_reprs(self, health_app):
        assert "bodyTemp" in repr(health_app.path(1))
        assert "health_monitor" in repr(health_app)

    def test_capacitor_repr(self):
        from repro.energy.capacitor import Capacitor

        assert "mJ" in repr(Capacitor(1e-3, v_initial=3.0))

    def test_task_and_machine_reprs(self):
        from repro.core.actions import ActionType
        from repro.core.generator import generate_machine
        from repro.core.properties import MaxTries
        from repro.statemachine.interpreter import MachineInstance
        from repro.taskgraph.task import Task

        assert repr(Task("x")) == "Task('x')"
        machine = generate_machine(
            MaxTries(task="x", on_fail=ActionType.SKIP_PATH, limit=2))
        assert "maxTries_x" in repr(machine)
        assert "NotStarted" in repr(MachineInstance(machine))


class TestCheckpointProgramRepr:
    def test_checkpoints_marked(self):
        from repro.checkpoint.program import Block, CheckpointProgram

        program = CheckpointProgram(
            "p", [Block("a", 1.0), Block("b", 1.0)], checkpoint_after=("a",))
        assert "a|CP" in repr(program)


class TestMemoryReportRow:
    def test_inlined_report_component_name(self):
        from repro.core.generator import generate_machines
        from repro.memsize.model import inlined_memory
        from repro.spec.validator import load_properties
        from repro.workloads.health import BENCHMARK_SPEC, build_health_app

        app = build_health_app()
        machines = generate_machines(load_properties(BENCHMARK_SPEC, app))
        report = inlined_memory(app, machines)
        assert report.component == "ARTEMIS inlined"
        assert "FRAM" in report.row()
