"""Tests for the intermittent-device simulator."""

import pytest

from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.energy.harvester import ConstantHarvester
from repro.errors import PowerFailure, SimulationError
from repro.sim.device import Device
from repro.sim.result import RunResult


def harvested_device(usable_mj=10.0, charge_s=60.0):
    cap = Capacitor(capacitance=usable_mj * 1e-3 / 2.88, v_max=3.3,
                    v_on=3.0, v_off=1.8, v_initial=3.0)
    env = EnergyEnvironment.for_charging_delay(charge_s, capacitor=cap)
    return Device(env)


class TestConsume:
    def test_continuous_never_fails(self, continuous_device):
        continuous_device.consume(1000.0, 1.0, "app")
        assert continuous_device.sim_clock.now() == 1000.0

    def test_accounting_per_category(self, continuous_device):
        continuous_device.consume(1.0, 2e-3, "app")
        continuous_device.consume(0.5, 2e-3, "runtime")
        continuous_device.consume(0.25, 2e-3, "monitor")
        res = continuous_device.result
        assert res.busy_time_s["app"] == 1.0
        assert res.busy_time_s["runtime"] == 0.5
        assert res.busy_time_s["monitor"] == 0.25
        assert res.energy_j["app"] == pytest.approx(2e-3)
        assert res.on_time_s == pytest.approx(1.75)

    def test_unknown_category_rejected(self, continuous_device):
        with pytest.raises(SimulationError):
            continuous_device.consume(1.0, 1.0, "mystery")

    def test_negative_args_rejected(self, continuous_device):
        with pytest.raises(SimulationError):
            continuous_device.consume(-1.0, 1.0, "app")

    def test_zero_duration_noop(self, continuous_device):
        continuous_device.consume(0.0, 1.0, "app")
        assert continuous_device.sim_clock.now() == 0.0

    def test_depletion_raises_power_failure(self):
        device = harvested_device(usable_mj=1.0)
        with pytest.raises(PowerFailure):
            device.consume(10.0, 1e-3, "app")  # needs 10 mJ, has ~1

    def test_depletion_advances_partial_time(self):
        device = harvested_device(usable_mj=1.0, charge_s=100.0)
        harvest_w = device.env.harvester.power_at(0.0)
        usable = device.env.capacitor.usable_energy
        expected_t = usable / (1e-3 - harvest_w)
        with pytest.raises(PowerFailure):
            device.consume(10.0, 1e-3, "app")
        assert device.sim_clock.now() == pytest.approx(expected_t, rel=1e-6)
        assert not device.alive

    def test_consume_after_death_rejected(self):
        device = harvested_device(usable_mj=1.0)
        with pytest.raises(PowerFailure):
            device.consume(10.0, 1e-3, "app")
        with pytest.raises(SimulationError):
            device.consume(0.1, 1e-3, "app")

    def test_harvest_covers_light_load(self):
        cap = Capacitor(1e-3, v_initial=3.0)
        env = EnergyEnvironment(harvester=ConstantHarvester(5e-3), capacitor=cap)
        device = Device(env)
        device.consume(100.0, 1e-3, "app")  # load < harvest: no depletion
        assert device.alive

    def test_instant_energy_draw(self):
        device = harvested_device(usable_mj=5.0)
        device.consume_energy(1e-3, "app")
        assert device.result.energy_j["app"] == pytest.approx(1e-3)

    def test_instant_draw_can_kill(self):
        device = harvested_device(usable_mj=1.0)
        with pytest.raises(PowerFailure):
            device.consume_energy(5e-3, "app")


class TestReboot:
    def test_reboot_waits_charging_delay(self):
        device = harvested_device(usable_mj=2.0, charge_s=60.0)
        with pytest.raises(PowerFailure):
            device.consume(100.0, 1e-3, "app")
        t_dead = device.sim_clock.now()
        device.reboot()
        assert device.alive
        assert device.sim_clock.now() - t_dead == pytest.approx(60.0)
        assert device.result.reboots == 1
        assert device.result.charge_time_s == pytest.approx(60.0)

    def test_reboot_restores_boot_energy(self):
        device = harvested_device(usable_mj=2.0)
        with pytest.raises(PowerFailure):
            device.consume(100.0, 1e-3, "app")
        device.reboot()
        assert device.env.capacitor.can_boot

    def test_trace_records_failure_and_boot(self):
        device = harvested_device(usable_mj=1.0)
        with pytest.raises(PowerFailure):
            device.consume(10.0, 1e-3, "app")
        device.reboot()
        assert device.trace.count("power_failure") == 1
        assert device.trace.count("boot") == 1


class _FixedWorkRuntime:
    """Toy runtime: N units of work, each (duration, power)."""

    def __init__(self, device, units=5, duration=1.0, power=1e-3):
        self.units_left = device.nvm.alloc("toy.units", units, 2)
        self.duration = duration
        self.power = power

    @property
    def finished(self):
        return self.units_left.get() == 0

    def boot(self, device):
        pass

    def begin_run(self, device):
        pass

    def loop_iteration(self, device):
        device.consume(self.duration, self.power, "app")
        self.units_left.set(self.units_left.get() - 1)


class TestRunLoop:
    def test_completes_on_continuous(self, continuous_device):
        runtime = _FixedWorkRuntime(continuous_device)
        result = continuous_device.run(runtime)
        assert result.completed
        assert result.total_time_s == pytest.approx(5.0)

    def test_completes_across_power_failures(self):
        device = harvested_device(usable_mj=2.5, charge_s=30.0)
        runtime = _FixedWorkRuntime(device, units=5, duration=1.0, power=1e-3)
        result = device.run(runtime)
        assert result.completed
        assert result.reboots >= 1
        assert result.charge_time_s > 0

    def test_max_time_budget_aborts(self):
        device = harvested_device(usable_mj=0.5, charge_s=600.0)
        runtime = _FixedWorkRuntime(device, units=5, duration=1.0, power=1e-3)
        result = device.run(runtime, max_time_s=1000.0)
        assert not result.completed
        assert device.trace.count("gave_up") == 1

    def test_max_reboots_budget_aborts(self):
        device = harvested_device(usable_mj=0.5, charge_s=10.0)
        runtime = _FixedWorkRuntime(device, units=50, duration=1.0, power=1e-3)
        result = device.run(runtime, max_reboots=3)
        assert not result.completed
        assert result.reboots == 3

    def test_multiple_runs(self, continuous_device):
        class Loop(_FixedWorkRuntime):
            def begin_run(self, device):
                self.units_left.set(2)

        runtime = Loop(continuous_device, units=2)
        result = continuous_device.run(runtime, runs=3)
        assert result.completed
        assert result.runs_completed == 3
        assert result.total_time_s == pytest.approx(6.0)


class TestRunResult:
    def test_summary_mentions_completion(self):
        res = RunResult(completed=True)
        assert "completed" in res.summary()
        assert "DID NOT FINISH" in RunResult(completed=False).summary()

    def test_overhead_fraction(self):
        res = RunResult()
        res.busy_time_s.update(app=9.0, runtime=0.5, monitor=0.5)
        assert res.overhead_fraction == pytest.approx(0.1)

    def test_overhead_fraction_empty(self):
        assert RunResult().overhead_fraction == 0.0

    def test_total_energy(self):
        res = RunResult()
        res.energy_j.update(app=1.0, runtime=0.5, monitor=0.25)
        assert res.total_energy_j == pytest.approx(1.75)
