"""Tests for the health-monitoring workload definition itself."""

import pytest

from repro.spec.validator import load_properties
from repro.taskgraph.context import channel_cell_name
from repro.workloads.health import (
    BENCHMARK_SPEC,
    FIGURE5_SPEC,
    build_artemis,
    build_health_app,
    build_mayfly,
    health_power_model,
    make_continuous_device,
    mayfly_config,
)


class TestAppStructure:
    def test_eight_tasks_three_paths(self, health_app):
        assert len(health_app.tasks) == 8
        assert len(health_app.paths) == 3

    def test_paths_match_figure6(self, health_app):
        assert health_app.path(1).task_names == [
            "bodyTemp", "calcAvg", "heartRate", "send"]
        assert health_app.path(2).task_names == ["accel", "classify", "send"]
        assert health_app.path(3).task_names == ["micSense", "filter", "send"]

    def test_send_is_merge_point(self, health_app):
        assert len(health_app.paths_containing("send")) == 3

    def test_calcavg_declares_monitored_var(self, health_app):
        assert health_app.task("calcAvg").monitored_vars == ("avgTemp",)

    def test_sensors_registered(self, health_app):
        for sensor in ("adc_temp", "ppg", "accelerometer", "microphone"):
            assert sensor in health_app.sensors


class TestSpecs:
    def test_benchmark_spec_property_kinds(self, health_app):
        props = load_properties(BENCHMARK_SPEC, health_app)
        by_kind = {}
        for prop in props:
            by_kind.setdefault(prop.kind, []).append(prop)
        assert len(by_kind["maxTries"]) == 2
        assert len(by_kind["MITD"]) == 1
        assert len(by_kind["collect"]) == 2

    def test_figure5_spec_includes_extras(self, health_app):
        props = load_properties(FIGURE5_SPEC, health_app)
        kinds = {p.kind for p in props}
        assert "maxDuration" in kinds
        assert "dpData" in kinds

    def test_mayfly_config_mirrors_benchmark(self, health_app):
        config = mayfly_config()
        # Mayfly supports only expiration + collect (§5.1.1).
        assert len(config.expirations) == 1
        assert config.expirations[0].limit_s == 300.0
        assert len(config.collections) == 2


class TestTaskBehaviour:
    def test_single_run_sends_all_three_indicators(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        result = device.run(runtime)
        assert result.completed
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) == 3
        packets = {tuple(sorted(k for k, v in p.items() if v is not None))
                   for p in sent}
        # Path 1 sends temperature + heart rate; path 2 adds breath rate;
        # path 3 adds the cough score.
        assert any("avgTemp" in p for p in packets)
        assert any("breathRate" in p for p in packets)
        assert any("coughScore" in p for p in packets)

    def test_calc_avg_over_ten_samples(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        device.run(runtime)
        temps = device.nvm.cell(channel_cell_name("temps")).get()
        assert len(temps) == 10
        avg = device.nvm.cell(channel_cell_name("avgTemp")).get()
        assert avg == pytest.approx(sum(temps) / 10)
        assert 36.0 <= avg <= 38.0

    def test_fever_sensor_triggers_emergency_complete_path(self):
        app = build_health_app(temp_of_t=lambda t: 39.5)
        device = make_continuous_device()
        runtime = build_artemis(device, app=app, spec=FIGURE5_SPEC,
                                power=health_power_model().with_costs())
        result = device.run(runtime)
        assert result.completed
        complete_actions = [
            e for e in device.trace.of_kind("monitor_action")
            if e.detail["action"] == "completePath"]
        assert len(complete_actions) == 1
        # The emergency run finishes path 1 (heartRate + send execute
        # unmonitored) and does not continue to paths 2/3 this run.
        ends = [e.detail["task"] for e in device.trace.of_kind("task_end")]
        assert ends[-2:] == ["heartRate", "send"]
        assert "accel" not in ends

    def test_mayfly_and_artemis_same_data_on_continuous(self):
        adev = make_continuous_device()
        adev.run(build_artemis(adev))
        mdev = make_continuous_device()
        mdev.run(build_mayfly(mdev))
        a_sent = adev.nvm.cell(channel_cell_name("sent")).get()
        m_sent = mdev.nvm.cell(channel_cell_name("sent")).get()
        assert len(a_sent) == len(m_sent) == 3
        assert [p["avgTemp"] for p in a_sent] == pytest.approx(
            [p["avgTemp"] for p in m_sent], abs=0.05)


class TestPowerModelCalibration:
    def test_benchmark_run_is_seconds_scale(self):
        device = make_continuous_device()
        result = device.run(build_artemis(device))
        assert 5.0 < result.total_time_s < 60.0

    def test_accel_fits_one_charge_cycle(self):
        from repro.energy.environment import default_capacitor

        model = health_power_model()
        assert model.cost_of("accel").energy_j < default_capacitor().usable_energy_per_cycle

    def test_path2_tail_does_not_fit_after_accel(self):
        from repro.energy.environment import default_capacitor

        model = health_power_model()
        path2 = (model.cost_of("accel").energy_j
                 + model.cost_of("classify").energy_j
                 + model.cost_of("send").energy_j)
        assert path2 > default_capacitor().usable_energy_per_cycle
