"""Tests for the declarative sweep framework."""

import pytest

from repro.errors import ReproError
from repro.sim.experiments import (
    Sweep,
    format_rows,
    metric_action_count,
    metric_completed,
    metric_reboots,
    metric_total_energy_mj,
    metric_total_time,
    pivot,
)
from repro.workloads.health import build_artemis, build_mayfly, \
    make_continuous_device, make_intermittent_device


def health_build(point):
    device = (make_continuous_device() if point["delay_s"] is None
              else make_intermittent_device(point["delay_s"]))
    if point["system"] == "artemis":
        return device, build_artemis(device)
    return device, build_mayfly(device)


class TestSweepMechanics:
    def test_points_are_full_factorial(self):
        sweep = Sweep(factors={"a": [1, 2], "b": ["x", "y", "z"]},
                      build=lambda p: (None, None),
                      metrics={"m": metric_completed})
        points = sweep.points()
        assert len(points) == 6
        assert points[0] == {"a": 1, "b": "x"}
        assert points[-1] == {"a": 2, "b": "z"}

    def test_empty_factors_rejected(self):
        with pytest.raises(ReproError):
            Sweep(factors={}, build=lambda p: (None, None),
                  metrics={"m": metric_completed})

    def test_empty_levels_rejected(self):
        with pytest.raises(ReproError):
            Sweep(factors={"a": []}, build=lambda p: (None, None),
                  metrics={"m": metric_completed})

    def test_no_metrics_rejected(self):
        with pytest.raises(ReproError):
            Sweep(factors={"a": [1]}, build=lambda p: (None, None), metrics={})


class TestSweepExecution:
    def test_fig12_style_sweep(self):
        sweep = Sweep(
            factors={"delay_s": [120.0, 420.0], "system": ["artemis", "mayfly"]},
            build=health_build,
            metrics={
                "completed": metric_completed,
                "time_s": metric_total_time,
                "energy_mj": metric_total_energy_mj,
                "reboots": metric_reboots,
                "skips": metric_action_count("skipPath"),
            },
            max_time_s=2 * 3600.0,
        )
        rows = sweep.run()
        assert len(rows) == 4
        table = pivot(rows, index="delay_s", column="system", value="completed")
        assert table[120.0] == {"artemis": True, "mayfly": True}
        assert table[420.0] == {"artemis": True, "mayfly": False}
        artemis_420 = next(r for r in rows
                           if r["delay_s"] == 420.0 and r["system"] == "artemis")
        assert artemis_420["skips"] == 1

    def test_rows_contain_factors_and_metrics(self):
        sweep = Sweep(
            factors={"delay_s": [None], "system": ["artemis"]},
            build=health_build,
            metrics={"completed": metric_completed},
        )
        (row,) = sweep.run()
        assert row["system"] == "artemis"
        assert row["completed"] is True


class TestFormatting:
    def test_format_rows_renders_fixed_width(self):
        rows = [{"a": 1, "b": True, "c": 1.23456},
                {"a": 22, "b": False, "c": 0.5}]
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "yes" in lines[2] and "no" in lines[3]
        assert "1.235" in lines[2]

    def test_format_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_selected_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_rows(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_pivot_shape(self):
        rows = [{"x": 1, "sys": "A", "v": 10}, {"x": 1, "sys": "B", "v": 20},
                {"x": 2, "sys": "A", "v": 30}]
        table = pivot(rows, "x", "sys", "v")
        assert table == {1: {"A": 10, "B": 20}, 2: {"A": 30}}
