"""Fleet-scale staged rollouts: completion at >=100 devices, aggregated
telemetry, and the automatic regression halt.

These are the acceptance tests for the fleet server: a benign update
reaches a 100+-device heterogeneous fleet wave by wave and the report
aggregates per-device telemetry; a seeded *regressing* spec (it makes
the monitor strictly noisier) trips the paired-control gate in the
canary wave, so the bulk of the fleet never receives it.
"""

import pytest

from repro.errors import FleetError
from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V2,
    FleetServer,
    RolloutPlan,
)
from repro.fleet.telemetry import FleetSummary, aggregate

_FAST = dict(runs=2, loss_rate=0.02, seed=0)


class TestStagedRollout:
    def test_hundred_device_rollout_completes(self):
        server = FleetServer()
        plan = RolloutPlan(waves=(0.1, 0.5, 1.0), **_FAST)
        report = server.rollout(FLEET_SPEC_V2, 100, plan=plan, jobs=4)
        assert report.ok and not report.halted
        assert report.devices_attempted == 100
        # Wave boundaries follow the cumulative fractions.
        assert [len(w.device_ids) for w in report.waves] == [10, 40, 50]
        # Aggregated fleet summary covers every device.
        assert isinstance(report.summary, FleetSummary)
        assert report.summary.devices == 100
        assert report.summary.completed == 100
        # The benign v2 installs essentially everywhere; devices whose
        # energy trace starved the radio may legitimately still be
        # mid-transfer, but never in the majority.
        assert report.summary.outcomes.get("installed", 0) >= 90
        assert report.summary.rollbacks == 0
        # The update gets *better*, not worse: the paired delta each
        # wave observed stays under the halt threshold.
        for wave in report.waves:
            assert wave.regression_delta <= plan.halt_threshold
            assert not wave.halted

    def test_regressing_update_is_halted_in_canary(self):
        server = FleetServer()
        plan = RolloutPlan(waves=(0.1, 0.5, 1.0), **_FAST)
        report = server.rollout(FLEET_SPEC_REGRESSING, 100, plan=plan, jobs=4)
        assert report.halted
        assert report.halted_wave == 0
        assert not report.ok
        # Only the canary wave was ever offered the update.
        assert report.devices_attempted == 10
        assert len(report.waves) == 1
        assert report.waves[0].regression_delta > plan.halt_threshold

    def test_paired_control_isolates_the_update(self):
        """The control arm runs the identical devices without the offer,
        so a benign update's paired delta sits near zero even though the
        absolute violation counts vary across energy classes."""
        server = FleetServer()
        plan = RolloutPlan(waves=(1.0,), **_FAST)
        report = server.rollout(FLEET_SPEC_V2, 12, plan=plan)
        wave = report.waves[0]
        assert len(wave.control) == len(wave.telemetry) == 12
        for treated, control in zip(wave.telemetry, wave.control):
            assert treated.device_id == control.device_id
            assert control.update_outcome == "none"
            assert control.active_version == 1

    def test_rollout_report_serializes(self):
        server = FleetServer()
        plan = RolloutPlan(waves=(1.0,), **_FAST)
        report = server.rollout(FLEET_SPEC_V2, 8, plan=plan)
        data = report.to_dict()
        assert data["devices_attempted"] == 8
        assert data["halted"] is False
        assert len(data["waves"]) == 1
        assert isinstance(report.describe(), str)

    def test_rollout_rejects_empty_fleet(self):
        with pytest.raises(FleetError):
            FleetServer().rollout(FLEET_SPEC_V2, 0)


class TestPlanValidation:
    def test_waves_must_be_increasing_to_one(self):
        with pytest.raises(FleetError):
            RolloutPlan(waves=(0.5, 0.25, 1.0))
        with pytest.raises(FleetError):
            RolloutPlan(waves=(0.5,))
        with pytest.raises(FleetError):
            RolloutPlan(waves=())

    def test_aggregate_of_nothing_is_empty(self):
        summary = aggregate([])
        assert summary.devices == 0
        assert summary.regression_delta == 0.0
