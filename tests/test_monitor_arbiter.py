"""Tests for ArtemisMonitor (callMonitor/monitorFinalize semantics) and
action arbitration."""

import pytest

from repro.core.actions import NO_ACTION, Action, ActionType
from repro.core.arbiter import arbitrate, first_reported, most_severe
from repro.core.events import MonitorEvent, end_event, start_event
from repro.core.monitor import ArtemisMonitor
from repro.core.properties import (
    Collect,
    MaxDuration,
    MaxTries,
    PropertySet,
)
from repro.errors import ReproError


class Brownout(Exception):
    """Simulated power failure inside a spend callback."""


def props_for(*props):
    pset = PropertySet()
    for prop in props:
        pset.add(prop)
    return pset


def make_monitor(nvm, backend="generated", *props):
    if not props:
        props = (
            MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=2),
            MaxDuration(task="A", on_fail=ActionType.SKIP_TASK, limit_s=5.0),
            Collect(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
                    count=1),
        )
    return ArtemisMonitor(props_for(*props), nvm, backend=backend)


class TestArbitration:
    def test_empty_is_no_action(self):
        assert arbitrate([]) is NO_ACTION

    def test_most_severe_wins(self):
        actions = [
            Action(ActionType.RESTART_TASK),
            Action(ActionType.SKIP_PATH),
            Action(ActionType.SKIP_TASK),
        ]
        assert arbitrate(actions).type is ActionType.SKIP_PATH

    def test_complete_path_beats_all(self):
        actions = [Action(ActionType.SKIP_PATH), Action(ActionType.COMPLETE_PATH)]
        assert arbitrate(actions).type is ActionType.COMPLETE_PATH

    def test_tie_keeps_first_reported(self):
        actions = [
            Action(ActionType.SKIP_PATH, path=2, source="m1"),
            Action(ActionType.SKIP_PATH, path=3, source="m2"),
        ]
        assert arbitrate(actions).source == "m1"

    def test_first_reported_policy(self):
        actions = [
            Action(ActionType.RESTART_TASK, source="weak"),
            Action(ActionType.SKIP_PATH, source="strong"),
        ]
        assert arbitrate(actions, first_reported).source == "weak"

    def test_severity_ordering_total(self):
        order = [
            ActionType.NONE, ActionType.RESTART_TASK, ActionType.SKIP_TASK,
            ActionType.RESTART_PATH, ActionType.SKIP_PATH,
            ActionType.COMPLETE_PATH,
        ]
        sevs = [Action(t).severity for t in order]
        assert sevs == sorted(sevs)
        assert len(set(sevs)) == len(sevs)

    def test_action_from_name_unknown_rejected(self):
        with pytest.raises(ReproError):
            ActionType.from_name("explode")


@pytest.mark.parametrize("backend", ["generated", "interpreted"])
class TestMonitorCall:
    def test_no_violation_returns_empty(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        monitor.reset()
        assert monitor.call(end_event("B", 0.0)) == []

    def test_violation_returns_action(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        monitor.reset()
        actions = monitor.call(start_event("A", 0.0))  # collect unsatisfied
        assert [a.type for a in actions] == [ActionType.RESTART_PATH]
        assert actions[0].source == "collect_A"

    def test_multiple_simultaneous_violations(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        monitor.reset()
        monitor.call(start_event("A", 0.0))  # collect viol 1, tries=1
        monitor.call(start_event("A", 1.0))  # collect viol, tries=2
        actions = monitor.call(start_event("A", 10.0))
        # maxTries exceeded AND collect unsatisfied AND maxDuration window
        # blown: three monitors report at once.
        types = {a.type for a in actions}
        assert ActionType.SKIP_PATH in types
        assert ActionType.RESTART_PATH in types
        assert ActionType.SKIP_TASK in types
        assert arbitrate(actions).type is ActionType.SKIP_PATH

    def test_reset_reinitialises_all(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        monitor.reset()
        monitor.call(start_event("A", 0.0))
        monitor.reset()
        # After reset the attempt count and collect count are both gone.
        actions = monitor.call(end_event("B", 1.0))
        assert actions == []
        assert monitor.call(start_event("A", 2.0)) == []

    def test_properties_for_task_counts(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        assert monitor.properties_for_task("A") == 3
        # B only triggers the collect machine (as dependency) and the
        # anyEvent-bearing maxDuration machine.
        assert monitor.properties_for_task("B") == 2

    def test_spend_charged_per_relevant_machine(self, nvm, backend):
        monitor = make_monitor(nvm, backend)
        monitor.reset()
        charged = []
        monitor.call(start_event("A", 0.0), spend=charged.append,
                     per_machine_cost_s=1.0, base_cost_s=10.0)
        assert charged[0] == 10.0
        assert sum(1 for c in charged[1:] if c == 1.0) == 3
        assert len(charged) == 4

    def test_unknown_backend_rejected(self, nvm, backend):
        with pytest.raises(ReproError):
            ArtemisMonitor(props_for(), nvm, backend="quantum")


class TestMonitorPersistence:
    def test_interrupted_call_resumes_with_finalize(self, nvm):
        monitor = make_monitor(nvm)
        monitor.reset()
        bomb = {"at": 2, "count": 0}

        def spend(seconds):
            bomb["count"] += 1
            if bomb["count"] == bomb["at"]:
                raise Brownout()

        with pytest.raises(Brownout):
            monitor.call(start_event("A", 0.0), spend=spend,
                         per_machine_cost_s=1e-3, base_cost_s=1e-3)
        assert monitor.in_progress
        actions = monitor.finalize()
        assert [a.type for a in actions] == [ActionType.RESTART_PATH]
        assert not monitor.in_progress

    def test_finalize_without_interruption_returns_none(self, nvm):
        monitor = make_monitor(nvm)
        monitor.reset()
        assert monitor.finalize() is None

    def test_no_double_counting_after_resume(self, nvm):
        """A machine stepped before the failure must not step again."""
        tries = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=3)
        monitor = ArtemisMonitor(props_for(tries), nvm)
        monitor.reset()
        calls = {"n": 0}

        def spend(seconds):
            calls["n"] += 1
            if calls["n"] == 2:  # after base step, during machine step
                raise Brownout()

        # The machine step itself failed before executing, so on resume
        # it runs once; the counter must be exactly 1.
        with pytest.raises(Brownout):
            monitor.call(start_event("A", 0.0), spend=spend,
                         per_machine_cost_s=1e-3, base_cost_s=1e-3)
        monitor.finalize()
        assert monitor.instances[0].get("i") == 1

    def test_monitor_state_survives_reconstruction(self, nvm):
        props = (MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=5),)
        monitor = ArtemisMonitor(props_for(*props), nvm)
        monitor.reset()
        monitor.call(start_event("A", 0.0))
        revived = ArtemisMonitor(props_for(*props), nvm)
        assert revived.instances[0].get("i") == 1
        assert not revived.in_progress

    def test_interrupted_state_survives_reconstruction(self, nvm):
        props = (MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=5),)
        monitor = ArtemisMonitor(props_for(*props), nvm)
        monitor.reset()

        def bomb(seconds):
            raise Brownout()

        with pytest.raises(Brownout):
            monitor.call(start_event("A", 0.0), spend=bomb, base_cost_s=1e-3)
        revived = ArtemisMonitor(props_for(*props), nvm)
        assert revived.in_progress
        actions = revived.finalize()
        assert actions == []
        assert revived.instances[0].get("i") == 1


class TestPathRestartReinit:
    def test_reinit_respects_property_flags(self, nvm):
        tries = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=5)
        collect = Collect(task="A", on_fail=ActionType.RESTART_PATH,
                          dep_task="B", count=3)
        monitor = ArtemisMonitor(props_for(tries, collect), nvm)
        monitor.reset()
        monitor.call(start_event("A", 0.0))  # tries=1, collect fails
        monitor.call(end_event("B", 1.0))  # collect count = 1
        reset_count = monitor.reinit_for_path_restart(["A"])
        assert reset_count == 1  # only maxTries reinitialised
        assert monitor.instances[0].get("i") == 0  # tries cleared
        assert monitor.instances[1].get("i") == 1  # collect count kept

    def test_reinit_ignores_other_tasks(self, nvm):
        tries = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=5)
        monitor = ArtemisMonitor(props_for(tries), nvm)
        monitor.reset()
        monitor.call(start_event("A", 0.0))
        assert monitor.reinit_for_path_restart(["X", "Y"]) == 0
        assert monitor.instances[0].get("i") == 1
