"""Round-trip tests for the specification pretty-printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ActionType
from repro.core.properties import (
    Collect,
    DpData,
    EnergyAtLeast,
    MITD,
    MaxDuration,
    MaxTries,
    Period,
    PropertySet,
)
from repro.spec.printer import print_spec
from repro.spec.validator import load_properties
from repro.workloads.health import BENCHMARK_SPEC, FIGURE5_SPEC


class TestRoundTripBenchmarks:
    @pytest.mark.parametrize("source", [BENCHMARK_SPEC, FIGURE5_SPEC])
    def test_parse_print_parse_fixpoint(self, source, health_app):
        props = load_properties(source, health_app)
        printed = print_spec(props)
        reparsed = load_properties(printed, health_app)
        assert print_spec(reparsed) == printed

    def test_roundtrip_preserves_properties(self, health_app):
        props = load_properties(FIGURE5_SPEC, health_app)
        reparsed = load_properties(print_spec(props), health_app)
        assert sorted(p.machine_name() for p in props) == sorted(
            p.machine_name() for p in reparsed)
        originals = {p.machine_name(): p for p in props}
        for prop in reparsed:
            assert prop == originals[prop.machine_name()]


_ACTIONS = st.sampled_from([
    ActionType.RESTART_PATH, ActionType.SKIP_PATH,
    ActionType.RESTART_TASK, ActionType.SKIP_TASK,
])

# Durations the spec language can express exactly: integer multiples
# of 1 ms, 1 s, or 1 min.
_DURATIONS = st.one_of(
    st.integers(1, 999).map(lambda n: n / 1000.0),
    st.integers(1, 3600).map(float),
    st.integers(1, 600).map(lambda n: n * 60.0),
)


@st.composite
def properties_on_single_path_app(draw):
    """Random properties valid for the mini app (a -> b on path 1)."""
    kind = draw(st.sampled_from(
        ["maxTries", "maxDuration", "MITD", "collect", "dpData", "period",
         "energyAtLeast"]))
    action = draw(_ACTIONS)
    if kind == "maxTries":
        return MaxTries(task="b", on_fail=action, limit=draw(st.integers(1, 99)))
    if kind == "maxDuration":
        return MaxDuration(task="b", on_fail=action,
                           limit_s=draw(_DURATIONS))
    if kind == "MITD":
        use_escape = draw(st.booleans())
        return MITD(task="b", on_fail=action, dep_task="a",
                    limit_s=draw(_DURATIONS),
                    max_attempt=draw(st.integers(1, 9)) if use_escape else None,
                    max_attempt_action=(draw(_ACTIONS) if use_escape else None))
    if kind == "collect":
        return Collect(task="b", on_fail=action, dep_task="a",
                       count=draw(st.integers(1, 50)))
    if kind == "dpData":
        low = draw(st.integers(-100, 100))
        high = draw(st.integers(low, 200))
        return DpData(task="b", on_fail=action, var="v",
                      low=float(low), high=float(high))
    if kind == "period":
        use_escape = draw(st.booleans())
        return Period(task="b", on_fail=action, period_s=draw(_DURATIONS),
                      jitter_s=draw(st.sampled_from([0.0, 0.5, 2.0])),
                      max_attempt=draw(st.integers(1, 9)) if use_escape else None,
                      max_attempt_action=(draw(_ACTIONS) if use_escape else None))
    return EnergyAtLeast(task="b", on_fail=action,
                         min_energy_j=draw(st.sampled_from([0.001, 0.01, 0.5])))


class TestRoundTripProperty:
    @given(prop=properties_on_single_path_app())
    @settings(max_examples=120, deadline=None)
    def test_any_single_property_roundtrips(self, prop):
        from repro.taskgraph.builder import AppBuilder

        app = (AppBuilder("mini")
               .task("a")
               .task("b", monitored_vars=["v"])
               .path(1, ["a", "b"])
               .build())
        props = PropertySet()
        props.add(prop)
        reparsed = load_properties(print_spec(props), app)
        assert list(reparsed) == [prop]


class TestUnprintableVariants:
    def test_reset_on_fail_collect_refused(self):
        from repro.core.actions import ActionType
        from repro.core.properties import Collect, PropertySet
        from repro.errors import SpecError

        props = PropertySet()
        props.add(Collect(task="b", on_fail=ActionType.RESTART_PATH,
                          dep_task="a", count=2, reset_on_fail=True))
        with pytest.raises(SpecError):
            print_spec(props)
