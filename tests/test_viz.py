"""Tests for the DOT visualization module."""

import re

import pytest

from repro.core.generator import generate_machine, generate_machines
from repro.core.actions import ActionType
from repro.core.properties import MITD
from repro.spec.validator import load_properties
from repro.viz import app_to_dot, machine_to_dot
from repro.workloads.health import BENCHMARK_SPEC, build_health_app


def balanced_braces(text):
    return text.count("{") == text.count("}")


class TestAppToDot:
    def test_contains_all_tasks_and_paths(self, health_app):
        dot = app_to_dot(health_app)
        for task in health_app.task_names:
            assert f'"{task}"' in dot
        for number in (1, 2, 3):
            assert f'label="p{number}"' in dot
        assert balanced_braces(dot)

    def test_edges_follow_path_order(self, health_app):
        dot = app_to_dot(health_app)
        assert '"bodyTemp" -> "calcAvg"' in dot
        assert '"accel" -> "classify"' in dot
        assert '"micSense" -> "filter"' in dot

    def test_property_notes_attached(self, health_app):
        props = load_properties(BENCHMARK_SPEC, health_app)
        dot = app_to_dot(health_app, props)
        assert '"send__props"' in dot
        assert "MITD (path 2)" in dot
        assert "maxTries" in dot

    def test_quotes_escaped(self):
        from repro.taskgraph.builder import AppBuilder

        app = AppBuilder('we"ird').task("a").path(1, ["a"]).build()
        dot = app_to_dot(app)
        assert 'we\\"ird' in dot


class TestMachineToDot:
    def test_mitd_machine_rendering(self):
        machine = generate_machine(MITD(
            task="send", on_fail=ActionType.RESTART_PATH, dep_task="accel",
            limit_s=300.0, max_attempt=3,
            max_attempt_action=ActionType.SKIP_PATH))
        dot = machine_to_dot(machine)
        assert '"WaitEndB"' in dot and '"WaitStartA"' in dot
        assert "__start" in dot
        assert "fail(restartPath)" in dot
        assert "fail(skipPath)" in dot
        # failure edges highlighted
        assert dot.count("#c44e52") >= 2
        assert balanced_braces(dot)

    def test_every_benchmark_machine_renders(self, health_app):
        props = load_properties(BENCHMARK_SPEC, health_app)
        for machine in generate_machines(props):
            dot = machine_to_dot(machine)
            assert balanced_braces(dot)
            assert machine.initial in dot

    def test_guards_appear_in_labels(self):
        machine = generate_machine(MITD(
            task="a", on_fail=ActionType.RESTART_PATH, dep_task="b",
            limit_s=2.0))
        dot = machine_to_dot(machine)
        assert re.search(r"event\.timestamp.*endB", dot)
