"""Power-failure resilience of the ARTEMIS runtime (§4.1.3, §4.2.3).

These tests inject brown-outs at precise points in the execution and
check that the runtime+monitor combination preserves its invariants:
exactly-once EndTask delivery, once-per-attempt StartTask delivery,
timestamp consistency, task atomicity, and monitor-call finalisation.
"""

import pytest

from repro.core.runtime import ArtemisRuntime
from repro.energy.capacitor import Capacitor
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.errors import PowerFailure
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


def power(**overrides):
    return PowerModel(dict(overrides), default_cost=TaskCost(0.1, 1e-3))


def harvested_device(usable_mj, charge_s=60.0):
    cap = Capacitor(capacitance=usable_mj * 1e-3 / 2.88, v_max=3.3,
                    v_on=3.0, v_off=1.8, v_initial=3.0)
    env = EnergyEnvironment.for_charging_delay(charge_s, capacitor=cap)
    return Device(env)


class FailingDevice(Device):
    """Device that injects a brown-out on the Nth consume() call of a
    given category, then behaves continuously. Gives deterministic
    placement of failures inside the runtime's protocol."""

    def __init__(self, fail_at=None):
        super().__init__(EnergyEnvironment.continuous())
        # mapping category -> set of 1-based call indices to kill
        self.fail_at = fail_at or {}
        self.calls = {}

    def consume(self, duration_s, power_w, category):
        n = self.calls.get(category, 0) + 1
        self.calls[category] = n
        if n in self.fail_at.get(category, ()):  # die before the work
            self._alive = False
            self.trace.record(self.sim_clock.now(), "power_failure",
                              category=category)
            raise PowerFailure(self.sim_clock.now())
        super().consume(duration_s, power_w, category)

    def reboot(self):
        self.result.reboots += 1
        self._alive = True
        self.trace.record(self.sim_clock.now(), "boot")


def sense_send_app():
    return (
        AppBuilder("ss")
        .task("sense", body=lambda ctx: ctx.write("x", 1))
        .task("send", body=lambda ctx: ctx.append("sent", ctx.read("x")))
        .path(1, ["sense", "send"])
        .build()
    )


class TestTaskAtomicity:
    def test_channel_writes_absent_after_mid_task_failure(self):
        """A task interrupted by a power failure leaves no channel data."""
        device = harvested_device(usable_mj=0.05)  # dies during first task
        app = sense_send_app()
        props = load_properties("", app)
        runtime = ArtemisRuntime(app, props, device, power())
        with pytest.raises(PowerFailure):
            runtime.boot(device)
            while not runtime.finished:
                runtime.loop_iteration(device)
        assert channel_cell_name("x") not in device.nvm or (
            device.nvm.cell(channel_cell_name("x")).get() is None)

    def test_completes_after_reboots_with_correct_data(self):
        # sense costs 0.1 mJ; 0.13 mJ usable leaves too little for send,
        # forcing at least one brown-out between the two tasks.
        device = harvested_device(usable_mj=0.13, charge_s=30.0)
        app = sense_send_app()
        props = load_properties("", app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        assert result.reboots >= 1
        assert device.nvm.cell(channel_cell_name("sent")).get() == [1]


class TestEventDeliveryProtocol:
    def test_each_reboot_attempt_sends_one_start_event(self):
        """maxTries must count one attempt per re-execution."""
        app = AppBuilder("m").task("a").path(1, ["a"]).build()
        spec = "a { maxTries: 3 onFail: skipPath; }"
        # Fail during the app consume of the first three attempts: the
        # fourth start trips maxTries (i >= 3) and the path is skipped.
        device = FailingDevice(fail_at={"app": {1, 2, 3}})
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        assert device.trace.count("task_end") == 0
        skips = device.trace.of_kind("monitor_action")
        assert [e.detail["action"] for e in skips][-1] == "skipPath"
        # Attempt count: 3 failed attempts + the rejected 4th start.
        assert runtime.monitor.instances[0].get("i") == 0  # reset after fail

    def test_end_event_timestamp_not_restamped(self):
        """§4.1.3: a failure after TASK_FINISHED must not move the
        EndTask timestamp seen by the monitor."""
        app = AppBuilder("m").task("a").task("b").path(1, ["a", "b"]).build()
        spec = "b { MITD: 10s dpTask: a onFail: restartPath; }"
        # Kill the runtime-transition consume that precedes the EndTask
        # monitor call for task a (runtime consume #2), so the EndTask
        # event is re-sent after reboot with the persisted timestamp.
        device = FailingDevice(fail_at={"runtime": {2}})
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        machine_end = runtime.monitor.instances[0].get("endB")
        ends = [e for e in device.trace.of_kind("task_end")
                if e.detail["task"] == "a"]
        assert machine_end == pytest.approx(ends[0].t, abs=1e-6)

    def test_no_duplicate_end_event_after_monitor_interrupt(self):
        """A failure inside the EndTask monitor call must be finalised,
        not re-sent: collect counts stay exact."""
        app = AppBuilder("m").task("a").task("b").path(1, ["a", "b"]).build()
        spec = "b { collect: 1 dpTask: a onFail: restartPath; }"
        # monitor consume #1 is the base step of task a's StartTask call;
        # kill a later monitor consume (the EndTask call's base step).
        device = FailingDevice(fail_at={"monitor": {3}})
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        # exactly one 'a' execution, counted exactly once, consumed by b.
        ends = [e for e in device.trace.of_kind("task_end")
                if e.detail["task"] == "a"]
        assert len(ends) == 1
        assert device.trace.count("path_restart") == 0

    def test_interrupted_start_check_not_rerun_when_passed(self):
        """A failure after the StartTask check finished (during the task
        body) re-announces the task — a fresh attempt — but a failure
        *inside* the monitor call resumes it without a new event."""
        app = AppBuilder("m").task("a").path(1, ["a"]).build()
        spec = "a { maxTries: 5 onFail: skipPath; }"
        device = FailingDevice(fail_at={"monitor": {2}})
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        # One logical attempt: the interrupted call was finalised, the
        # task then ran; counter saw exactly one start before the end.
        ends = device.trace.of_kind("task_end")
        assert len(ends) == 1


class TestHealthBenchmarkUnderRandomFailures:
    @pytest.mark.parametrize("usable_mj", [0.8, 2.0, 5.0])
    def test_always_completes_and_sends(self, usable_mj):
        """Whatever the capacitor size (above the largest single task),
        the benchmark must complete with consistent channel data."""
        from repro.workloads.health import build_artemis

        device = harvested_device(usable_mj=max(usable_mj, 13.0), charge_s=20.0)
        runtime = build_artemis(device)
        result = device.run(runtime, max_time_s=7200)
        assert result.completed
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) >= 1

    def test_tiny_capacitor_accel_never_completes_maxtries_saves(self):
        """accel (12 mJ) cannot run on a 6 mJ capacitor: maxTries must
        skip path 2 after 10 attempts instead of livelocking."""
        from repro.energy.power import MSP430FR5994_POWER
        from repro.workloads.health import build_health_app, BENCHMARK_SPEC

        app = build_health_app()
        device = harvested_device(usable_mj=9.0, charge_s=10.0)
        props = load_properties(BENCHMARK_SPEC, app)
        runtime = ArtemisRuntime(app, props, device, MSP430FR5994_POWER)
        result = device.run(runtime, max_time_s=24 * 3600)
        assert result.completed
        accel_ends = [e for e in device.trace.of_kind("task_end")
                      if e.detail["task"] == "accel"]
        assert accel_ends == []
        skips = [e for e in device.trace.of_kind("path_skip")
                 if e.detail["path"] == 2]
        assert len(skips) == 1
        accel_starts = [e for e in device.trace.of_kind("task_start")
                        if e.detail["task"] == "accel"]
        assert len(accel_starts) == 10  # the allowed attempts, no more


class TestDoubleInterruption:
    def test_failure_during_finalize_is_refinalised(self):
        """A brown-out inside monitorFinalize (which is itself finishing
        an interrupted callMonitor) must leave a still-resumable
        continuation; the next boot completes it. Exactly-once machine
        stepping holds throughout."""
        app = AppBuilder("m").task("a").path(1, ["a"]).build()
        spec = "a { maxTries: 5 onFail: skipPath; }"
        # monitor consume #1: base step of the StartTask call (killed);
        # monitor consume #2: base step re-run inside finalize (killed);
        # monitor consume #3+: finalize completes.
        device = FailingDevice(fail_at={"monitor": {1, 2}})
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        assert result.reboots == 2
        # One logical attempt despite two interruptions: the machine saw
        # exactly one StartTask and one EndTask.
        ends = device.trace.of_kind("task_end")
        assert len(ends) == 1
        assert runtime.monitor.instances[0].get("i") == 0  # reset by end

    def test_interleaved_failures_app_and_monitor(self):
        device = FailingDevice(fail_at={"monitor": {2}, "app": {1, 3}})
        app = AppBuilder("m").task("a").task("b").path(1, ["a", "b"]).build()
        spec = "b { collect: 1 dpTask: a onFail: restartPath; }"
        props = load_properties(spec, app)
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime)
        assert result.completed
        # The collect count stays banked across b's crash: the accepted
        # start leaves it untouched (it is consumed only by b's EndTask),
        # so the re-attempt's re-announced StartTask passes again instead
        # of spuriously restarting the path. Equivalent to the continuous
        # run: no restarts, each task completes exactly once.
        assert device.trace.count("path_restart") == 0
        a_ends = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "a"]
        b_ends = [e for e in device.trace.of_kind("task_end")
                  if e.detail["task"] == "b"]
        assert len(a_ends) == 1 and len(b_ends) == 1
