"""Long-running (loop-mode) behaviour of the runtimes.

Real deployments run the application forever; these tests exercise
many consecutive runs under continuous and harvested power and check
the cross-run invariants: state carried correctly between runs,
per-run property state re-armed, monotone progress, and stable memory.
"""

import pytest

from repro.sim.analysis import task_statistics
from repro.taskgraph.context import channel_cell_name
from repro.workloads.health import (
    build_artemis,
    build_mayfly,
    make_continuous_device,
    make_intermittent_device,
)


class TestArtemisLoop:
    def test_twenty_runs_on_continuous_power(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        result = device.run(runtime, runs=20)
        assert result.completed
        assert result.runs_completed == 20
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) == 60  # three transmissions per run

    def test_collect_rearms_every_run(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        device.run(runtime, runs=3)
        stats = task_statistics(device.trace)
        # Ten fresh bodyTemp samples per run, every run.
        assert stats["bodyTemp"].completions == 30

    def test_runs_under_harvested_power(self):
        device = make_intermittent_device(45.0)
        runtime = build_artemis(device)
        result = device.run(runtime, runs=5, max_time_s=24 * 3600)
        assert result.completed
        assert result.runs_completed == 5
        assert result.reboots >= 5  # at least one brown-out per run

    def test_per_run_time_is_stable(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        run_marks = []
        device.run(runtime, runs=4)
        for event in device.trace.of_kind("run_complete"):
            run_marks.append(event.t)
        gaps = [b - a for a, b in zip(run_marks, run_marks[1:])]
        assert all(g == pytest.approx(gaps[0], rel=1e-6) for g in gaps)

    def test_nvm_usage_does_not_grow_across_runs(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        device.run(runtime, runs=2)
        cells_after_2 = len(device.nvm)
        static_after_2 = {
            name: size for name, size in device.nvm.usage_report().items()
            if not name.startswith("chan.")
        }
        device2 = make_continuous_device()
        runtime2 = build_artemis(device2)
        device2.run(runtime2, runs=10)
        # Same static layout: no per-run allocations leak. Channel cells
        # are sized by their serialized value, so list-valued channels
        # (e.g. ``sent``) legitimately account more bytes after more
        # runs — everything else must be byte-identical.
        assert len(device2.nvm) == cells_after_2
        static_after_10 = {
            name: size for name, size in device2.nvm.usage_report().items()
            if not name.startswith("chan.")
        }
        assert static_after_10 == static_after_2

    def test_monitor_quiescent_between_runs(self):
        device = make_continuous_device()
        runtime = build_artemis(device)
        device.run(runtime, runs=3)
        assert not runtime.monitor.in_progress
        # collect counter consumed, maxTries counters cleared.
        for instance in runtime.monitor.instances:
            if hasattr(instance, "get"):
                try:
                    assert instance.get("i") == 0
                except Exception:
                    pass


class TestMayflyLoop:
    def test_ten_runs_on_continuous_power(self):
        device = make_continuous_device()
        runtime = build_mayfly(device)
        result = device.run(runtime, runs=10)
        assert result.completed
        assert result.runs_completed == 10
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) == 30

    def test_same_per_run_output_as_artemis(self):
        adev = make_continuous_device()
        adev.run(build_artemis(adev), runs=5)
        mdev = make_continuous_device()
        mdev.run(build_mayfly(mdev), runs=5)
        a_sent = adev.nvm.cell(channel_cell_name("sent")).get()
        m_sent = mdev.nvm.cell(channel_cell_name("sent")).get()
        assert len(a_sent) == len(m_sent)


class TestLoopWithIntermittentFailuresAtBoundary:
    def test_failure_exactly_between_runs(self):
        """A brown-out between run N completing and run N+1 starting
        must not corrupt the resume point."""
        from repro.core.runtime import ArtemisRuntime
        from repro.energy.capacitor import Capacitor
        from repro.energy.environment import EnergyEnvironment
        from repro.sim.device import Device
        from repro.spec.validator import load_properties
        from repro.workloads.health import (
            BENCHMARK_SPEC,
            build_health_app,
            health_power_model,
        )

        # Capacitor sized so runs die at varying, boundary-crossing spots.
        cap = Capacitor(7e-3, v_initial=3.0)  # ~20 mJ usable
        env = EnergyEnvironment.for_charging_delay(15.0, capacitor=cap)
        device = Device(env)
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        runtime = ArtemisRuntime(app, props, device, health_power_model())
        result = device.run(runtime, runs=6, max_time_s=24 * 3600)
        assert result.completed
        assert result.runs_completed == 6
        # Every run transmitted all three indicators.
        sent = device.nvm.cell(channel_cell_name("sent")).get()
        assert len(sent) == 18
