"""Tests for the Python and C monitor code generators, including
differential testing of generated Python monitors against the reference
interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ActionType
from repro.core.events import MonitorEvent, end_event, start_event
from repro.core.generator import generate_machine
from repro.core.properties import Collect, DpData, MaxDuration, MaxTries, MITD, Period
from repro.statemachine.codegen_c import (
    generate_c_bundle,
    generate_c_source,
    nv_struct_bytes,
)
from repro.statemachine.codegen_python import (
    class_name,
    compile_machine,
    generate_python_source,
    instantiate,
)
from repro.statemachine.interpreter import MachineInstance
from repro.statemachine.model import (
    Assign,
    BinOp,
    Const,
    EventPattern,
    Fail,
    StateMachine,
    Transition,
    Var,
    Variable,
)


def sample_properties():
    return [
        MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=3),
        MaxDuration(task="A", on_fail=ActionType.SKIP_TASK, limit_s=5.0),
        Collect(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B", count=2),
        MITD(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B", limit_s=4.0),
        MITD(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B", limit_s=4.0,
             max_attempt=2, max_attempt_action=ActionType.SKIP_PATH),
        Period(task="A", on_fail=ActionType.RESTART_TASK, period_s=10.0, jitter_s=1.0),
        DpData(task="A", on_fail=ActionType.COMPLETE_PATH, var="v", low=0.0, high=1.0),
    ]


class TestPythonCodegen:
    def test_source_is_valid_python(self):
        for prop in sample_properties():
            machine = generate_machine(prop)
            source = generate_python_source(machine)
            compile(source, "<test>", "exec")  # must not raise

    def test_class_name_convention(self):
        machine = generate_machine(sample_properties()[0])
        assert class_name(machine) == f"Monitor_{machine.name}"

    def test_compiled_class_interface(self):
        machine = generate_machine(sample_properties()[0])
        monitor = instantiate(machine)
        assert monitor.state == machine.initial
        assert monitor.get("i") == 0
        monitor.reset()
        assert monitor.state == machine.initial

    def test_generated_monitor_reports_failure(self):
        prop = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=2)
        monitor = instantiate(generate_machine(prop))
        monitor.on_event(start_event("A", 0.0))
        monitor.on_event(start_event("A", 1.0))
        verdicts = monitor.on_event(start_event("A", 2.0))
        assert [v.action for v in verdicts] == ["skipPath"]

    def test_store_backed_persistence(self):
        machine = generate_machine(sample_properties()[0])
        store = {}
        monitor = compile_machine(machine)(store)
        monitor.on_event(start_event("A", 0.0))
        revived = compile_machine(machine)(store)
        assert revived.state == monitor.state

    def test_missing_data_raises(self):
        prop = DpData(task="A", on_fail=ActionType.SKIP_TASK, var="v",
                      low=0.0, high=1.0)
        monitor = instantiate(generate_machine(prop))
        from repro.errors import StateMachineError

        with pytest.raises(StateMachineError):
            monitor.on_event(end_event("A", 0.0, {}))


def _event_stream_strategy():
    """Random plausible event streams over tasks A and B."""
    event = st.tuples(
        st.sampled_from(["startTask", "endTask"]),
        st.sampled_from(["A", "B", "C"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
    )
    return st.lists(event, min_size=0, max_size=40)


class TestDifferentialGeneratedVsInterpreted:
    """The generated Python monitor must agree with the reference
    interpreter on every event stream (same verdicts, same state)."""

    @pytest.mark.parametrize("prop", sample_properties(),
                             ids=lambda p: p.machine_name())
    @given(stream=_event_stream_strategy())
    @settings(max_examples=60, deadline=None)
    def test_agreement(self, prop, stream):
        machine = generate_machine(prop)
        interpreted = MachineInstance(machine)
        generated = compile_machine(machine)()
        t = 0.0
        for kind, task, dt, value, path in stream:
            t += dt if dt > 0 else 0.0
            event = MonitorEvent(kind, task, t, {"v": value}, path=path)
            v1 = interpreted.on_event(event)
            v2 = generated.on_event(event)
            assert [(v.action, v.path) for v in v1] == [
                (v.action, v.path) for v in v2
            ]
            assert interpreted.state == generated.state
        for var in machine.variables:
            assert interpreted.get(var.name) == generated.get(var.name)


class TestCCodegen:
    def test_emits_all_sections(self):
        machine = generate_machine(sample_properties()[0])
        c_src = generate_c_source(machine)
        assert f"typedef enum" in c_src
        assert f"{machine.name}_nv_t" in c_src
        assert "__nv" in c_src  # FRAM placement attribute
        assert f"void {machine.name}_reset(void)" in c_src
        assert f"void {machine.name}_step(" in c_src
        assert "_begin(monitor);" in c_src and "_end(monitor);" in c_src

    def test_bundle_has_dispatch_and_lifecycle(self):
        machines = [generate_machine(p) for p in sample_properties()[:3]]
        bundle = generate_c_bundle(machines)
        assert "MonitorResult_t callMonitor(const MonitorEvent_t *e)" in bundle
        assert "void resetMonitor(void)" in bundle
        assert "void monitorFinalize(void)" in bundle
        for machine in machines:
            assert f"{machine.name}_step(e, &r);" in bundle
            assert f"{machine.name}_reset();" in bundle

    def test_actions_upper_cased(self):
        prop = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=2)
        c_src = generate_c_source(generate_machine(prop))
        assert "ACTION_SKIPPATH" in c_src

    def test_guards_translated(self):
        prop = MITD(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
                    limit_s=2.0)
        c_src = generate_c_source(generate_machine(prop))
        assert "e->timestamp" in c_src
        assert "&&" in c_src

    def test_nv_struct_bytes_alignment(self):
        machine = StateMachine(
            "m", ["S"], "S",
            variables=[Variable("a", "bool"), Variable("b", "int"),
                       Variable("c", "time")],
        )
        # state(2) + bool(1)+pad(1) + int32(4) + time/uint64(8) = 16
        assert nv_struct_bytes(machine) == 16

    def test_nv_struct_bytes_empty_machine(self):
        machine = StateMachine("m", ["S"], "S")
        assert nv_struct_bytes(machine) == 2

    def test_c_source_deterministic(self):
        machine = generate_machine(sample_properties()[3])
        assert generate_c_source(machine) == generate_c_source(machine)
