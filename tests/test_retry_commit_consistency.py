"""Property-based check: retries composed with mid-commit crashes can
never double-commit a task or tear an atomically staged pair of writes.

Hypothesis draws a sensor fault pattern (how many leading accesses time
out, plus a stochastic rate) and a set of commit-step crash indices for
:class:`~repro.sim.faults.FailDuringCommit`. Whatever the interleaving,
the task's two staged writes — an append to ``log`` and the matching
``count`` — must stay consistent, and no committed append may repeat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retry import RetryPolicy
from repro.core.runtime import ArtemisRuntime
from repro.energy.power import MCU_ACTIVE_POWER_W, PowerModel, TaskCost
from repro.peripherals import PeripheralSet, TransientTimeout
from repro.sim.faults import FailDuringCommit
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


def _record(ctx):
    reading = ctx.sample("adc")
    log = list(ctx.read("log", []))
    log.append(reading)
    ctx.write("log", log)
    ctx.write("count", len(log))  # staged with the append: one commit


def _build(fail_first, rate, fault_seed, max_attempts, crash_indices):
    app = (
        AppBuilder("pair")
        .task("record", body=_record)
        .path(1, ["record"])
        .sensor("adc", lambda t: t)
        .build()
    )
    readings = iter(range(10 ** 6))
    app.sensors["adc"] = lambda t, _it=readings: next(_it)
    peripherals = PeripheralSet(app.sensors)
    peripherals.attach("adc", TransientTimeout(rate=rate, seed=fault_seed))

    class FailFirst(TransientTimeout):
        def __init__(self, n):
            super().__init__()
            self.left = n

        def fires(self, t):
            if self.left > 0:
                self.left -= 1
                return True
            return False

    peripherals.attach("adc", FailFirst(fail_first))
    device = FailDuringCommit(crash_indices)
    props = load_properties("record { maxTries: 50 onFail: skipTask; }", app)
    runtime = ArtemisRuntime(
        app, props, device,
        PowerModel({}, default_cost=TaskCost(1e-3, MCU_ACTIVE_POWER_W)),
        peripherals=peripherals,
        retry_policy=RetryPolicy(max_attempts=max_attempts,
                                 backoff_base_s=1e-3),
    )
    return device, runtime


def _channel(device, name, default=None):
    cell = channel_cell_name(name)
    return device.nvm.cell(cell).get() if cell in device.nvm else default


class TestRetryCommitConsistency:
    @given(
        fail_first=st.integers(0, 5),
        rate=st.floats(0.0, 0.3, allow_nan=False),
        fault_seed=st.integers(0, 1000),
        max_attempts=st.integers(1, 4),
        crash_indices=st.sets(st.integers(1, 60), max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_double_commit_no_torn_pair(self, fail_first, rate,
                                           fault_seed, max_attempts,
                                           crash_indices):
        device, runtime = _build(fail_first, rate, fault_seed,
                                 max_attempts, crash_indices)
        result = device.run(runtime, runs=4, max_time_s=3600)
        assert result.completed

        log = _channel(device, "log", [])
        count = _channel(device, "count", 0)
        # The pair committed atomically, every time.
        assert count == len(log)
        # No committed append ever replayed twice: readings are unique
        # by construction, so a duplicate means a double-commit.
        assert len(set(log)) == len(log)
        # A run either committed its append or watchdog-skipped it.
        skips = device.trace.count("task_skip")
        assert len(log) + skips >= 4
        # Counters agree with the trace.
        assert result.task_retries == device.trace.count("task_retry")
        assert result.watchdog_trips == device.trace.count("watchdog_trip")
        assert result.sensor_faults == device.trace.count("sensor_fault")
