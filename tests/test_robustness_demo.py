"""End-to-end graceful-degradation demo (the PR's acceptance scenario).

Health workload, 20% PPG burst dropout, RF-harvesting energy trace,
priority-annotated spec. Under that combined stress ARTEMIS must:

- commit at least 90% of the path completions a fault-free run manages,
- never double-commit a packet,
- account for every robustness event in both the trace and the
  ``RunResult`` counters,
- shed low-priority monitors when energy runs low and restore them —
  still functioning — once the harvester catches up.
"""

import pytest

from repro.core.retry import RetryPolicy
from repro.taskgraph.context import channel_cell_name
from repro.workloads.health import (
    DEGRADATION_SPEC,
    build_artemis,
    build_flaky_peripherals,
    build_health_app,
    degradation_watermarks,
    make_rf_device,
)

RUNS = 25


def _run(dropout_rate):
    app = build_health_app()
    device = make_rf_device(3600.0, seed=1)
    peripherals = (
        build_flaky_peripherals(app, sensor="ppg",
                                dropout_rate=dropout_rate, seed=7)
        if dropout_rate else None
    )
    runtime = build_artemis(
        device,
        app=app,
        spec=DEGRADATION_SPEC,
        peripherals=peripherals,
        retry_policy=RetryPolicy(max_attempts=5, backoff_base_s=1e-3),
        degradation=degradation_watermarks(),
    )
    result = device.run(runtime, runs=RUNS,
                        max_time_s=200_000.0, max_reboots=50_000)
    assert result.completed, "demo scenario must run to completion"
    return device, runtime, result


def _sent_packets(device):
    cell = channel_cell_name("sent")
    return device.nvm.cell(cell).get() if cell in device.nvm else []


class TestGracefulDegradationDemo:
    @pytest.fixture(scope="class")
    def faulty(self):
        return _run(dropout_rate=0.2)

    @pytest.fixture(scope="class")
    def clean(self):
        return _run(dropout_rate=0.0)

    def test_faults_actually_injected(self, faulty):
        _, _, result = faulty
        assert result.sensor_faults > 0
        assert result.task_retries > 0

    def test_commits_at_least_90_percent_of_fault_free(self, faulty, clean):
        faulty_sent = _sent_packets(faulty[0])
        clean_sent = _sent_packets(clean[0])
        assert len(clean_sent) == 3 * RUNS  # one send per path per run
        assert len(faulty_sent) >= 0.9 * len(clean_sent)

    def test_no_packet_double_committed(self, faulty):
        sent = _sent_packets(faulty[0])
        stamps = [packet["t"] for packet in sent]
        assert len(set(stamps)) == len(stamps)

    def test_every_event_in_trace_and_counters(self, faulty):
        device, _, result = faulty
        for counter, kind in [
            ("sensor_faults", "sensor_fault"),
            ("task_retries", "task_retry"),
            ("watchdog_trips", "watchdog_trip"),
            ("monitors_shed", "monitor_shed"),
            ("monitors_restored", "monitor_restored"),
        ]:
            assert getattr(result, counter) == device.trace.count(kind), kind

    def test_monitors_shed_and_restored_under_rf_trace(self, faulty):
        device, runtime, result = faulty
        assert result.monitors_shed >= 1
        assert result.monitors_restored >= 1
        # Shedding honoured the priorities: the first machine to go was
        # the lowest-priority sheddable one.
        monitor = runtime.monitor
        lowest = min(monitor.machine_priority(m)
                     for m in monitor.shedding_order())
        first_shed = device.trace.of_kind("monitor_shed")[0]
        assert first_shed.detail["priority"] == lowest

    def test_restored_monitor_still_functions(self, faulty):
        device, runtime, result = faulty
        monitor = runtime.monitor
        # The run can end inside an energy trough with some machines
        # still shed, but the books must balance: every shed that was
        # not restored during the run is still listed as shed now.
        still_shed = monitor.shed_machines()
        assert (result.monitors_shed - result.monitors_restored
                == len(still_shed))
        # Restoring the stragglers brings them back into monitoring:
        # each is sheddable, no longer shed, and steps at full cost.
        for name in still_shed:
            assert monitor.restore(name)
        assert monitor.shed_machines() == []
        target = monitor.shedding_order()[0]
        spends = []
        from repro.core.events import start_event

        # Fire events the restored machines actually watch (the
        # priority-annotated maxTries properties guard micSense/accel).
        for task in ("micSense", "accel"):
            monitor.call(start_event(task, device.now() + 1.0, 1),
                         spend=spends.append,
                         per_machine_cost_s=1e-3, base_cost_s=1e-3)
        assert sum(spends) > 2e-3  # base costs plus live machine steps
        assert not monitor.is_shed(target)
