"""Tests for the textual form of the intermediate language."""

import pytest

from repro.core.events import end_event, start_event
from repro.errors import StateMachineError
from repro.statemachine.interpreter import MachineInstance
from repro.statemachine.textual import parse_machine, parse_machines, print_machine

MAXTRIES_SRC = """
machine maxTries_accel {
  var i: int = 0;
  initial NotStarted;
  state NotStarted {
    on startTask(accel) -> Started / { i := 1; }
  }
  state Started {
    on startTask(accel) [i < 10] -> Started / { i := i + 1; }
    on startTask(accel) [i >= 10] -> NotStarted / { fail(skipPath); i := 0; }
    on endTask(accel) -> NotStarted / { i := 0; }
  }
}
"""

MITD_SRC = """
machine mitd {
  var endB: time = 0;
  var att: int = 0;
  initial WaitEndB;
  state WaitEndB {
    on endTask(B) -> WaitStartA / { endB := event.timestamp; }
  }
  state WaitStartA {
    on startTask(A) [event.timestamp - endB <= 2.0] -> WaitEndB / { att := 0; }
    on startTask(A) [event.timestamp - endB > 2.0 and att < 1] -> WaitEndB / {
      att := att + 1;
      fail(restartPath, path=2);
    }
    on startTask(A) [event.timestamp - endB > 2.0 and att >= 1] -> WaitEndB / {
      att := 0;
      fail(skipPath, path=2);
    }
  }
}
"""


class TestParsing:
    def test_parse_maxtries_structure(self):
        machine = parse_machine(MAXTRIES_SRC)
        assert machine.name == "maxTries_accel"
        assert machine.states == ["NotStarted", "Started"]
        assert machine.initial == "NotStarted"
        assert len(machine.transitions) == 4
        assert machine.variables[0].name == "i"

    def test_parse_executes_correctly(self):
        inst = MachineInstance(parse_machine(MAXTRIES_SRC))
        for i in range(10):
            assert inst.on_event(start_event("accel", float(i))) == []
        verdicts = inst.on_event(start_event("accel", 10.0))
        assert [v.action for v in verdicts] == ["skipPath"]

    def test_parse_mitd_with_paths_and_bools(self):
        inst = MachineInstance(parse_machine(MITD_SRC))
        inst.on_event(end_event("B", 0.0))
        verdicts = inst.on_event(start_event("A", 5.0))
        assert verdicts[0].action == "restartPath"
        assert verdicts[0].path == 2

    def test_parse_multiple_machines(self):
        machines = parse_machines(MAXTRIES_SRC + MITD_SRC)
        assert [m.name for m in machines] == ["maxTries_accel", "mitd"]

    def test_anyevent_and_wildcard_trigger(self):
        source = """
        machine m {
          initial S;
          state S {
            on anyEvent -> S
            on startTask(*) -> S
          }
        }
        """
        machine = parse_machine(source)
        assert machine.transitions[0].trigger.kind == "anyEvent"
        assert machine.transitions[1].trigger.task is None

    def test_if_else_statement(self):
        source = """
        machine m {
          var x: int = 0;
          initial S;
          state S {
            on anyEvent -> S / {
              if event.timestamp > 5 { x := 1; } else { x := 2; }
            }
          }
        }
        """
        inst = MachineInstance(parse_machine(source))
        inst.on_event(start_event("A", 9.0))
        assert inst.get("x") == 1

    def test_bool_and_float_literals(self):
        source = """
        machine m {
          var flag: bool = true;
          var level: float = 1.5;
          initial S;
          state S { }
        }
        """
        machine = parse_machine(source)
        assert machine.variable("flag").initial_value is True
        assert machine.variable("level").initial_value == 1.5

    def test_negative_initial(self):
        source = """
        machine m {
          var x: int = -3;
          initial S;
          state S { }
        }
        """
        assert parse_machine(source).variable("x").initial_value == -3

    def test_missing_initial_rejected(self):
        with pytest.raises(StateMachineError):
            parse_machine("machine m { state S { } }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(StateMachineError):
            parse_machine("machine m { initial S; state S { } } extra")

    def test_unknown_character_rejected(self):
        with pytest.raises(StateMachineError):
            parse_machine("machine m @ {}")

    def test_unknown_trigger_rejected(self):
        with pytest.raises(StateMachineError):
            parse_machine("machine m { initial S; state S { on fire(A) -> S } }")

    def test_comments_ignored(self):
        source = """
        machine m { // the machine
          initial S;
          state S { } // empty
        }
        """
        assert parse_machine(source).name == "m"


class TestRoundTrip:
    @pytest.mark.parametrize("source", [MAXTRIES_SRC, MITD_SRC])
    def test_print_parse_identity(self, source):
        machine = parse_machine(source)
        printed = print_machine(machine)
        reparsed = parse_machine(printed)
        assert print_machine(reparsed) == printed

    def test_roundtrip_preserves_behaviour(self):
        original = MachineInstance(parse_machine(MITD_SRC))
        roundtripped = MachineInstance(
            parse_machine(print_machine(parse_machine(MITD_SRC)))
        )
        events = [
            end_event("B", 0.0),
            start_event("A", 1.0),
            end_event("B", 2.0),
            start_event("A", 9.0),
            start_event("A", 9.5),
        ]
        for event in events:
            assert original.on_event(event) == roundtripped.on_event(event)
            assert original.state == roundtripped.state

    def test_generated_machines_roundtrip(self):
        from repro.core.actions import ActionType
        from repro.core.generator import generate_machine
        from repro.core.properties import Collect, MaxDuration, MaxTries, MITD

        props = [
            MaxTries(task="a", on_fail=ActionType.SKIP_PATH, limit=5),
            MaxDuration(task="a", on_fail=ActionType.SKIP_TASK, limit_s=3.0),
            Collect(task="a", on_fail=ActionType.RESTART_PATH, dep_task="b", count=4),
            MITD(task="a", on_fail=ActionType.RESTART_PATH, dep_task="b",
                 limit_s=2.0, max_attempt=2,
                 max_attempt_action=ActionType.SKIP_PATH),
        ]
        for prop in props:
            machine = generate_machine(prop)
            printed = print_machine(machine)
            assert print_machine(parse_machine(printed)) == printed
