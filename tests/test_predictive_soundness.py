"""Predictor soundness: the static per-event energy/latency bound of
:mod:`repro.analysis.energy` must never under-estimate what the monitor
actually spends.

The harness reuses the randomized property strategy and seeded event
streams of ``tests/test_differential_monitors.py``: hypothesis draws a
property set, the real :class:`~repro.core.monitor.ArtemisMonitor` is
driven with an instrumented spend callback (the exact cost model the
simulated device is charged through), and every dispatched event's
observed seconds/joules are compared against the analyzer's bound for
that task. A whole-simulation leg repeats the check end-to-end on the
health benchmark: total observed monitor energy stays within the
composed per-run bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.core.monitor import ArtemisMonitor
from repro.energy.power import PowerModel, TaskCost
from repro.nvm.memory import NonVolatileMemory
from repro.sim.device import Device
from repro.energy.environment import EnergyEnvironment
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.workloads.health import (
    build_artemis,
    build_health_app,
    health_power_model,
)

from tests.test_differential_monitors import (
    TASKS,
    any_property,
    make_stream,
)
from tests.test_tl_differential import (
    TASKS as TL_TASKS,
    _crowd_app,
    _dedup as _tl_dedup,
    make_stream as tl_stream,
    temporal_property,
)

#: Power model with distinctive monitor-cost knobs, so an unsound bound
#: cannot hide behind near-zero defaults.
POWER = PowerModel(
    {t: TaskCost(0.1, 0.002) for t in TASKS},
    monitor_call_base_s=0.7e-3,
    monitor_per_property_s=0.4e-3,
)


def _app():
    builder = AppBuilder("abc")
    for t in TASKS:
        builder.task(t)
    # Event streams carry path numbers 0-3; the app itself needs every
    # task reachable so the analyzer counts full coverage.
    return builder.path(1, list(TASKS)).build()


def _dedup(props):
    seen = set()
    unique = []
    for prop in props:
        name = prop.machine_name()
        if name not in seen:
            seen.add(name)
            unique.append(prop)
    return unique


class TestPerEventBoundIsSound:
    @given(props=st.lists(any_property(), min_size=1, max_size=6),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=1, max_value=40))
    @settings(max_examples=120, deadline=None)
    def test_observed_event_cost_never_exceeds_the_bound(
            self, props, seed, length):
        props = _dedup(props)
        app = _app()
        report = analyze(app, props, POWER)
        monitor = ArtemisMonitor(props, NonVolatileMemory())
        for event in make_stream(seed, length):
            spent = []
            monitor.call(event, spend=spent.append,
                         per_machine_cost_s=POWER.monitor_per_property_s,
                         base_cost_s=POWER.monitor_call_base_s)
            observed_s = sum(spent)
            bound_s = report.event_time_bound_s(event.task)
            assert observed_s <= bound_s + 1e-12, (
                f"event {event}: observed {observed_s}s exceeds the "
                f"static bound {bound_s}s")
            assert observed_s * POWER.overhead_power_w <= \
                report.event_energy_bound_j(event.task) + 1e-12

    @given(props=st.lists(any_property(), min_size=2, max_size=6),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bound_stays_sound_under_shedding(self, props, seed):
        """Shedding only removes spends; both the full-set bound and
        the reduced-live-set bound must still dominate."""
        props = _dedup(props)
        app = _app()
        report = analyze(app, props, POWER)
        monitor = ArtemisMonitor(props, NonVolatileMemory())
        order = monitor.shedding_order()
        if order:
            monitor.shed(order[0])
        shed = frozenset(monitor.shed_machines())
        for event in make_stream(seed, 25):
            spent = []
            monitor.call(event, spend=spent.append,
                         per_machine_cost_s=POWER.monitor_per_property_s,
                         base_cost_s=POWER.monitor_call_base_s)
            observed_s = sum(spent)
            assert observed_s <= report.event_time_bound_s(event.task) + 1e-12
            assert observed_s <= \
                report.event_time_bound_s(event.task, shed) + 1e-12


class TestBoundIsSoundUnderSharing:
    """Temporal properties compile through the shared-subformula plan:
    sub-monitors are real per-event spends at runtime, so the static
    bound must keep dominating after the plan collapses duplicates.
    The properties are drawn from the temporal strategy whose formulas
    overlap heavily, maximizing sharing pressure on the analyzer."""

    TL_POWER = PowerModel(
        {t: TaskCost(0.1, 0.002) for t in TL_TASKS},
        monitor_call_base_s=0.7e-3,
        monitor_per_property_s=0.4e-3,
    )

    @given(props=st.lists(temporal_property(), min_size=2, max_size=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           length=st.integers(min_value=1, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_observed_cost_with_shared_subs_never_exceeds_bound(
            self, props, seed, length):
        props = _tl_dedup(props)
        app = _crowd_app()
        report = analyze(app, props, self.TL_POWER)
        monitor = ArtemisMonitor(props, NonVolatileMemory())
        for event in tl_stream(seed, length):
            spent = []
            monitor.call(
                event, spend=spent.append,
                per_machine_cost_s=self.TL_POWER.monitor_per_property_s,
                base_cost_s=self.TL_POWER.monitor_call_base_s)
            observed_s = sum(spent)
            bound_s = report.event_time_bound_s(event.task)
            assert observed_s <= bound_s + 1e-12, (
                f"event {event}: observed {observed_s}s exceeds the "
                f"static bound {bound_s}s under subformula sharing")
            assert observed_s * self.TL_POWER.overhead_power_w <= \
                report.event_energy_bound_j(event.task) + 1e-12


#: Violation-free under continuous power: no monitor fires, so event
#: counts are exactly two per task execution and the per-run composed
#: bound applies directly.
QUIET_SPEC = """
accel { maxTries: 10 onFail: skipPath Path: 2; }
micSense { maxTries: 10 onFail: skipPath Path: 3; }
send { MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2; }
"""


class TestSimulatedEnergyWithinComposedBound:
    def _run(self, runs):
        device = Device(EnergyEnvironment.continuous())
        runtime = build_artemis(device, spec=QUIET_SPEC)
        result = device.run(runtime, runs=runs)
        assert result.completed
        return result

    def test_whole_run_monitor_energy_within_bound(self):
        app = build_health_app()
        power = health_power_model()
        report = analyze(app, load_properties(QUIET_SPEC, app), power)
        runs = 3
        result = self._run(runs)
        per_run_bound = sum(p.monitor_energy_j for p in report.paths)
        assert result.energy_j["monitor"] <= runs * per_run_bound + 1e-12

    def test_per_monitor_run_bounds_compose_to_the_path_bound(self):
        """The per-path monitor budget equals the sum over its events
        of the per-event bound — the decomposition the degradation
        controller subtracts shed machines from."""
        app = build_health_app()
        power = health_power_model()
        report = analyze(app, load_properties(QUIET_SPEC, app), power)
        for budget in report.paths:
            recomposed = sum(
                2 * report.event_energy_bound_j(row.task)
                for row in budget.tasks)
            assert budget.monitor_energy_j == pytest.approx(recomposed)
