"""Mutation self-test: the checker must catch an injected bug.

The acceptance bar for the conformance checker is falsifiability: with
``CommitJournal.TEST_SKIP_RECOVERY_APPLY`` breaking boot-time
roll-forward (the first journal entry is silently not re-applied), the
checker must find a counterexample and shrink it to a short witness.
With the flag off, the same exploration must pass — the bug is only
reachable through crash recovery.
"""

import pytest

from repro.errors import ReproError
from repro.nvm.journal import CommitJournal
from repro.verify import broken_commit_ordering, get_scenario, run_self_test


class TestInjectedBugIsCaught:
    @pytest.fixture(scope="class")
    def self_test(self):
        return run_self_test(bound=1, budget=400, shrink_runs=100)

    def test_counterexample_found(self, self_test):
        report, _ = self_test
        assert not report.ok
        assert report.counterexamples

    def test_witness_is_short(self, self_test):
        _, witness = self_test
        # Acceptance bound: a human can read the whole failure story.
        assert len(witness.steps) <= 6
        assert len(witness.schedule) == 1

    def test_witness_names_the_commit_step(self, self_test):
        _, witness = self_test
        # The crash that exposes a recovery bug sits inside a journaled
        # commit, and the witness says which step.
        text = witness.describe()
        assert "during commit step" in text
        assert "divergence:" in text

    def test_flag_restored_after_context(self, self_test):
        assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is False


class TestFlagOffConforms:
    def test_unmutated_scenario_passes_same_bound(self):
        explorer = get_scenario("health", "artemis").explorer()
        report = explorer.explore(bound=1, budget=400)
        assert report.ok, report.summary()


class TestSelfTestRaisesWhenBlind:
    def test_zero_budget_checker_misses_the_bug(self):
        # A checker that cannot run any schedules must *fail loudly*,
        # not report success.
        with pytest.raises(ReproError, match="missed the injected"):
            run_self_test(bound=0, budget=1)

    def test_flag_restored_after_failure(self):
        assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is False


class TestBrokenCommitOrderingContext:
    def test_toggles_and_restores(self):
        assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is False
        with broken_commit_ordering():
            assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is True
        assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is False

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with broken_commit_ordering():
                raise RuntimeError("boom")
        assert CommitJournal.TEST_SKIP_RECOVERY_APPLY is False
