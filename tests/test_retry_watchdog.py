"""Retry/backoff and the livelock watchdog, across all four runtimes.

A transient peripheral fault must be absorbed by bounded re-execution
with no committed side effects from failed attempts; a permanent fault
(dead sensor) must trip the watchdog, which escalates to the property's
``onFail`` action — or a fallback skip with a marked-degraded channel —
instead of retrying forever.
"""

import pytest

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import MayflyConfig, MayflyRuntime
from repro.checkpoint.program import Block, CheckpointProgram
from repro.checkpoint.runtime import CheckpointRuntime
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import MCU_ACTIVE_POWER_W, PowerModel, TaskCost
from repro.errors import PeripheralError, RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.peripherals import PeripheralSet
from repro.peripherals.faults import SensorFault
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


class FailFirstN(SensorFault):
    """Deterministic test fault: the first ``n`` accesses time out."""

    KIND = "timeout"
    SILENT = False

    def __init__(self, n):
        super().__init__()
        self.left = n

    def fires(self, t):
        if self.left > 0:
            self.left -= 1
            return True
        return False

    def perturb(self, sensor, t, value, last_good):
        raise PeripheralError(sensor, self.KIND, t)


def _power():
    return PowerModel({}, default_cost=TaskCost(1e-3, MCU_ACTIVE_POWER_W))


def _app():
    return (
        AppBuilder("mini")
        .task("sense", body=lambda ctx: ctx.write("x", ctx.sample("adc")))
        .task("send", body=lambda ctx: ctx.append("sent", ctx.read("x", -1.0)))
        .path(1, ["sense", "send"])
        .sensor("adc", lambda t: 21.5)
        .build()
    )


def _peripherals(app, fail_first):
    peripherals = PeripheralSet(app.sensors)
    peripherals.attach("adc", FailFirstN(fail_first))
    return peripherals


def _channel(device, name, default=None):
    cell = channel_cell_name(name)
    return device.nvm.cell(cell).get() if cell in device.nvm else default


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(RuntimeConfigError):
            RetryPolicy(jitter_frac=1.0)

    def test_backoff_grows_exponentially_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0,
                             jitter_frac=0.0)
        assert policy.backoff_s("t", 1) == pytest.approx(1e-3)
        assert policy.backoff_s("t", 2) == pytest.approx(2e-3)
        assert policy.backoff_s("t", 3) == pytest.approx(4e-3)

    def test_jitter_is_bounded_and_reproducible(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter_frac=0.25, seed=9)
        values = [policy.backoff_s("task", a) for a in (1, 2, 3)]
        again = [policy.backoff_s("task", a) for a in (1, 2, 3)]
        assert values == again
        for attempt, value in enumerate(values, start=1):
            raw = 1e-3 * 2.0 ** (attempt - 1)
            assert raw * 0.75 <= value <= raw * 1.25

    def test_zero_base_means_no_backoff(self):
        assert RetryPolicy(backoff_base_s=0.0).backoff_s("t", 3) == 0.0


class TestRetrySupervisor:
    def test_counters_survive_a_new_supervisor_on_same_nvm(self):
        nvm = NonVolatileMemory()
        supervisor = RetrySupervisor(nvm, RetryPolicy(max_attempts=3))
        assert supervisor.record_failure("sense") == 1
        assert supervisor.record_failure("sense") == 2
        # Reboot: a fresh supervisor sees the durable counters.
        again = RetrySupervisor(nvm, RetryPolicy(max_attempts=3))
        assert again.attempts("sense") == 2
        assert not again.exhausted("sense")
        assert again.record_failure("sense") == 3
        assert again.exhausted("sense")

    def test_cleared_returns_staging_value_without_mutating(self):
        nvm = NonVolatileMemory()
        supervisor = RetrySupervisor(nvm, RetryPolicy())
        supervisor.record_failure("a")
        supervisor.record_failure("b")
        assert supervisor.cleared("a") == {"b": 1}
        assert supervisor.attempts("a") == 1  # unchanged until commit
        supervisor.clear("a")
        assert supervisor.attempts("a") == 0


class TestArtemisRetry:
    def test_transient_fault_retried_to_success(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties("send { maxTries: 5 onFail: skipPath; }", app)
        runtime = ArtemisRuntime(
            app, props, device, _power(),
            peripherals=_peripherals(app, 2),
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1e-3),
        )
        result = device.run(runtime)
        assert result.completed
        assert result.task_retries == 2
        assert result.watchdog_trips == 0
        assert result.sensor_faults == 2
        assert device.trace.count("task_retry") == 2
        assert _channel(device, "sent") == [21.5]  # real reading, exactly once
        # Successful retry cleared its counter atomically with the commit.
        assert device.nvm.cell("rt.retry.attempts").get() == {}

    def test_backoff_charged_to_runtime_category(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties("send { maxTries: 5 onFail: skipPath; }", app)
        runtime = ArtemisRuntime(
            app, props, device, _power(),
            peripherals=_peripherals(app, 1),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=50e-3,
                                     jitter_frac=0.0),
        )
        baseline_device = Device(EnergyEnvironment.continuous())
        baseline_app = _app()
        baseline = ArtemisRuntime(
            baseline_app,
            load_properties("send { maxTries: 5 onFail: skipPath; }",
                            baseline_app),
            baseline_device, _power())
        device.run(runtime)
        baseline_device.run(baseline)
        extra = (device.result.busy_time_s["runtime"]
                 - baseline_device.result.busy_time_s["runtime"])
        assert extra >= 50e-3  # the backoff shows up as runtime time

    def test_dead_sensor_escalates_to_spec_on_fail(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties("sense { maxTries: 9 onFail: skipPath; }", app)
        runtime = ArtemisRuntime(
            app, props, device, _power(),
            peripherals=_peripherals(app, 10 ** 9),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1e-3),
            audit_capacity=8,
        )
        result = device.run(runtime)
        assert result.completed
        assert result.watchdog_trips == 1
        assert result.task_retries == 2  # max_attempts - 1 true retries
        trips = device.trace.of_kind("watchdog_trip")
        assert len(trips) == 1
        assert trips[0].detail["task"] == "sense"
        assert trips[0].detail["sensor"] == "adc"
        # Escalation used the property's own onFail: the path was
        # skipped, so send never ran.
        actions = device.trace.of_kind("monitor_action")
        assert any(a.detail["action"] == "skipPath"
                   and a.detail["source"].startswith("watchdog")
                   for a in actions)
        assert _channel(device, "sent") is None
        # The livelock landed in the persistent audit log.
        assert any(e.action == "watchdog:livelock"
                   for e in runtime.audit.entries())

    def test_unguarded_task_falls_back_to_skip_with_degraded_marker(self):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        props = load_properties("send { maxTries: 9 onFail: skipPath; }", app)
        runtime = ArtemisRuntime(
            app, props, device, _power(),
            peripherals=_peripherals(app, 10 ** 9),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        result = device.run(runtime)
        assert result.completed
        assert result.watchdog_trips == 1
        # Fallback skipTask: send still ran, with the default value, and
        # the degraded flag is durably set for the consumer to see.
        assert _channel(device, "sent") == [-1.0]
        assert _channel(device, "degraded.sense") is True

    def test_fault_free_run_identical_with_and_without_retry_layer(self):
        """The robustness layer is pay-as-you-go: no faults, no change."""
        results = []
        for peripherals in (None, "healthy"):
            device = Device(EnergyEnvironment.continuous())
            app = _app()
            props = load_properties(
                "send { maxTries: 5 onFail: skipPath; }", app)
            kwargs = {}
            if peripherals == "healthy":
                kwargs["peripherals"] = PeripheralSet(app.sensors)
                kwargs["retry_policy"] = RetryPolicy(max_attempts=5)
            runtime = ArtemisRuntime(app, props, device, _power(), **kwargs)
            results.append(device.run(runtime))
        assert results[0].task_retries == results[1].task_retries == 0
        assert results[0].runs_completed == results[1].runs_completed
        # Identical commit structure: the journaled step count must not
        # depend on whether the retry layer is armed.
        assert (results[0].busy_time_s["commit"]
                == pytest.approx(results[1].busy_time_s["commit"]))


class TestMayflyRetry:
    def _run(self, fail_first, max_attempts=3):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        runtime = MayflyRuntime(
            app, MayflyConfig(), device, _power(),
            peripherals=_peripherals(app, fail_first),
            retry_policy=RetryPolicy(max_attempts=max_attempts,
                                     backoff_base_s=1e-3),
        )
        result = device.run(runtime)
        return device, result

    def test_transient_fault_retried(self):
        device, result = self._run(fail_first=1)
        assert result.completed
        assert result.task_retries == 1
        assert result.watchdog_trips == 0
        assert _channel(device, "sent") == [21.5]
        assert device.nvm.cell("mf.retry.attempts").get() == {}

    def test_dead_sensor_skips_task_and_marks_degraded(self):
        device, result = self._run(fail_first=10 ** 9)
        assert result.completed
        assert result.watchdog_trips == 1
        assert device.trace.count("task_skip") == 1
        assert _channel(device, "degraded.sense") is True
        assert _channel(device, "sent") == [-1.0]


class TestChainRetry:
    def _run(self, fail_first):
        device = Device(EnergyEnvironment.continuous())
        app = _app()
        runtime = ChainRuntime(
            app, {}, device, _power(),
            peripherals=_peripherals(app, fail_first),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1e-3),
        )
        result = device.run(runtime)
        return device, result

    def test_transient_fault_retried(self):
        device, result = self._run(fail_first=2)
        assert result.completed
        assert result.task_retries == 2
        assert _channel(device, "sent") == [21.5]
        assert device.nvm.cell("ch.retry.attempts").get() == {}

    def test_dead_sensor_skips_task_and_marks_degraded(self):
        device, result = self._run(fail_first=10 ** 9)
        assert result.completed
        assert result.watchdog_trips == 1
        assert _channel(device, "degraded.sense") is True


class TestCheckpointRetry:
    def _program(self, fail_first):
        remaining = [fail_first]

        def sense(state):
            if remaining[0] > 0:
                remaining[0] -= 1
                raise PeripheralError("adc", "timeout", 0.0)
            state["x"] = 21.5

        def send(state):
            state["sent"] = state.get("x", -1.0)

        return CheckpointProgram(
            "ckpt",
            [Block("sense", 1e-3, 1e-3, body=sense),
             Block("send", 1e-3, 1e-3, body=send)],
            checkpoint_after=["sense", "send"],
        )

    def _run(self, fail_first):
        device = Device(EnergyEnvironment.continuous())
        runtime = CheckpointRuntime(
            self._program(fail_first), device,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1e-3),
        )
        result = device.run(runtime)
        return device, runtime, result

    def test_transient_fault_retried_without_state_damage(self):
        device, runtime, result = self._run(fail_first=2)
        assert result.completed
        assert result.task_retries == 2
        assert runtime._state["sent"] == 21.5
        assert "degraded.sense" not in runtime._state

    def test_dead_block_skipped_with_degraded_state(self):
        device, runtime, result = self._run(fail_first=10 ** 9)
        assert result.completed
        assert result.watchdog_trips == 1
        assert runtime._state["degraded.sense"] is True
        assert runtime._state["sent"] == -1.0
        assert device.trace.count("task_skip") == 1

    def test_failed_attempt_rolls_back_partial_mutation(self):
        calls = [0]

        def flaky(state):
            calls[0] += 1
            state["partial"] = calls[0]  # mutate, then die on attempt 1
            if calls[0] == 1:
                raise PeripheralError("adc", "timeout", 0.0)
            state["done"] = True

        program = CheckpointProgram(
            "ckpt", [Block("flaky", 1e-3, 1e-3, body=flaky)],
            checkpoint_after=["flaky"])
        device = Device(EnergyEnvironment.continuous())
        runtime = CheckpointRuntime(program, device,
                                    retry_policy=RetryPolicy(max_attempts=3))
        result = device.run(runtime)
        assert result.completed
        # The retry saw a clean snapshot, not the failed attempt's edit.
        assert runtime._state == {"partial": 2, "done": True}
