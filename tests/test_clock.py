"""Unit tests for simulation and persistent clocks."""

import pytest

from repro.clock.clock import PersistentClock, SimClock
from repro.errors import ReproError


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(10.0).now() == 10.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ReproError):
            SimClock().advance(-1.0)


class TestPersistentClock:
    def test_perfect_clock_tracks_sim_time(self, nvm):
        sim = SimClock()
        pclock = PersistentClock(sim, nvm)
        sim.advance(100.0)
        assert pclock.now() == pytest.approx(100.0)

    def test_reading_is_persisted(self, nvm):
        sim = SimClock()
        pclock = PersistentClock(sim, nvm)
        sim.advance(42.0)
        pclock.now()
        assert pclock.last_persisted == pytest.approx(42.0)

    def test_on_reboot_without_error_is_exact(self, nvm):
        sim = SimClock()
        pclock = PersistentClock(sim, nvm)
        pclock.now()
        sim.advance(600.0)  # outage
        pclock.on_reboot()
        assert pclock.now() == pytest.approx(600.0)

    def test_error_bounded_by_outage_fraction(self, nvm):
        sim = SimClock()
        pclock = PersistentClock(sim, nvm, max_rel_error=0.05, seed=7)
        pclock.now()
        sim.advance(1000.0)
        pclock.on_reboot()
        reading = pclock.now()
        assert abs(reading - 1000.0) <= 0.05 * 1000.0 + 1e-9

    def test_error_is_deterministic_per_seed(self):
        readings = []
        for _ in range(2):
            from repro.nvm.memory import NonVolatileMemory

            sim = SimClock()
            pclock = PersistentClock(sim, NonVolatileMemory(), max_rel_error=0.1, seed=3)
            pclock.now()
            sim.advance(500.0)
            pclock.on_reboot()
            readings.append(pclock.now())
        assert readings[0] == readings[1]

    def test_invalid_error_bound_rejected(self, nvm):
        with pytest.raises(ReproError):
            PersistentClock(SimClock(), nvm, max_rel_error=1.5)

    def test_state_survives_reconstruction(self, nvm):
        sim = SimClock()
        pclock = PersistentClock(sim, nvm, name="pc")
        sim.advance(5.0)
        pclock.now()
        rebuilt = PersistentClock(sim, nvm, name="pc")
        assert rebuilt.last_persisted == pytest.approx(5.0)
