"""Property-based tests (hypothesis) on core data structures and
invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ActionType
from repro.core.events import MonitorEvent
from repro.core.generator import generate_machine
from repro.core.properties import Collect, MaxTries, MITD
from repro.energy.capacitor import Capacitor
from repro.errors import PowerFailure
from repro.immortal.continuations import ImmortalRoutine
from repro.nvm.memory import NonVolatileMemory
from repro.spec.units import format_duration, parse_duration
from repro.statemachine.interpreter import MachineInstance
from repro.statemachine.textual import parse_machine, print_machine


class TestNVMInvariants:
    @given(st.lists(st.tuples(st.sampled_from("abcdefgh"),
                              st.integers(-1000, 1000)), max_size=60))
    def test_last_write_wins(self, writes):
        nvm = NonVolatileMemory()
        shadow = {}
        for name, value in writes:
            nvm.alloc(name, None, 8).set(value)
            shadow[name] = value
        for name, value in shadow.items():
            assert nvm.cell(name).get() == value

    @given(st.lists(st.sampled_from("abcd"), max_size=30))
    def test_used_bytes_matches_live_cells(self, names):
        nvm = NonVolatileMemory()
        live = set()
        for name in names:
            if name in live:
                nvm.free(name)
                live.remove(name)
            else:
                nvm.alloc(name, 0, 10)
                live.add(name)
        assert nvm.used_bytes == 10 * len(live)


class TestCapacitorInvariants:
    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(0, 5e-3, allow_nan=False)),
                    max_size=50))
    def test_voltage_always_within_physical_bounds(self, ops):
        cap = Capacitor(1e-3, v_max=3.3, v_on=3.0, v_off=1.8, v_initial=3.0)
        for is_charge, amount in ops:
            if is_charge:
                cap.charge(amount)
            else:
                cap.discharge(amount)
            assert 1.8 - 1e-9 <= cap.voltage <= 3.3 + 1e-9

    @given(st.floats(0, 1e-2, allow_nan=False))
    def test_charge_conserves_or_clamps(self, amount):
        cap = Capacitor(1e-3, v_initial=2.5)
        before = cap.energy
        stored = cap.charge(amount)
        assert stored <= amount + 1e-15
        assert cap.energy == pytest.approx(before + stored)


class TestDurationRoundTrip:
    @given(st.floats(min_value=0.001, max_value=10_000.0,
                     allow_nan=False, allow_infinity=False))
    def test_format_then_parse_preserves_value(self, seconds):
        text = format_duration(seconds)
        assert parse_duration(text) == pytest.approx(seconds, rel=1e-9)


@st.composite
def machine_properties(draw):
    kind = draw(st.sampled_from(["maxTries", "collect", "mitd"]))
    action = draw(st.sampled_from([ActionType.SKIP_PATH, ActionType.RESTART_PATH,
                                   ActionType.SKIP_TASK]))
    if kind == "maxTries":
        return MaxTries(task="A", on_fail=action,
                        limit=draw(st.integers(1, 20)))
    if kind == "collect":
        return Collect(task="A", on_fail=action, dep_task="B",
                       count=draw(st.integers(1, 10)))
    max_attempt = draw(st.one_of(st.none(), st.integers(1, 5)))
    return MITD(task="A", on_fail=action, dep_task="B",
                limit_s=draw(st.floats(0.5, 50.0)),
                max_attempt=max_attempt,
                max_attempt_action=ActionType.SKIP_PATH if max_attempt else None)


class TestTextualRoundTripProperty:
    @given(machine_properties())
    @settings(max_examples=80, deadline=None)
    def test_generated_machines_roundtrip_text(self, prop):
        machine = generate_machine(prop)
        printed = print_machine(machine)
        assert print_machine(parse_machine(printed)) == printed

    @given(machine_properties(),
           st.lists(st.tuples(st.sampled_from(["startTask", "endTask"]),
                              st.sampled_from(["A", "B"]),
                              st.floats(0, 10, allow_nan=False)),
                    max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_reparsed_machine_behaves_identically(self, prop, steps):
        machine = generate_machine(prop)
        reparsed = parse_machine(print_machine(machine))
        a, b = MachineInstance(machine), MachineInstance(reparsed)
        t = 0.0
        for kind, task, dt in steps:
            t += dt
            event = MonitorEvent(kind, task, t)
            assert a.on_event(event) == b.on_event(event)
            assert a.state == b.state


class TestMaxTriesInvariant:
    @given(st.integers(1, 15),
           st.lists(st.sampled_from(["start", "end"]), max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_never_more_than_limit_consecutive_unreported_starts(
            self, limit, ops):
        prop = MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=limit)
        inst = MachineInstance(generate_machine(prop))
        consecutive = 0
        t = 0.0
        for op in ops:
            t += 1.0
            if op == "start":
                verdicts = inst.on_event(MonitorEvent("startTask", "A", t))
                if verdicts:
                    consecutive = 0
                else:
                    consecutive += 1
                assert consecutive <= limit
            else:
                inst.on_event(MonitorEvent("endTask", "A", t))
                consecutive = 0


class TestMITDEscalationInvariant:
    @given(st.integers(1, 4),
           st.lists(st.tuples(st.sampled_from(["endB", "startA"]),
                              st.floats(0.1, 20.0, allow_nan=False)),
                    max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_escalation_only_after_exactly_max_attempt_violations(
            self, max_attempt, ops):
        prop = MITD(task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
                    limit_s=5.0, max_attempt=max_attempt,
                    max_attempt_action=ActionType.SKIP_PATH)
        inst = MachineInstance(generate_machine(prop))
        t = 0.0
        streak = 0
        for op, dt in ops:
            t += dt
            if op == "endB":
                inst.on_event(MonitorEvent("endTask", "B", t))
            else:
                verdicts = inst.on_event(MonitorEvent("startTask", "A", t))
                for v in verdicts:
                    if v.action == "restartPath":
                        streak += 1
                        assert streak <= max_attempt - 1 or max_attempt == 1
                    elif v.action == "skipPath":
                        streak += 1
                        assert streak == max_attempt
                        streak = 0
                if not verdicts and inst.get("att") == 0:
                    # property satisfied via completion elsewhere; keep
                    # tracking from the machine's own notion
                    streak = inst.get("att")


class TestImmortalRoutineInvariant:
    @given(st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_each_step_effect_applied_exactly_once(self, n_steps, data):
        """Random brown-outs between payment and effect never duplicate
        or drop a step's effect."""
        nvm = NonVolatileMemory()
        routine = ImmortalRoutine(nvm, "r")
        executed = [0] * n_steps
        fail_plan = data.draw(st.lists(st.booleans(), min_size=n_steps,
                                       max_size=n_steps))
        remaining_failures = list(fail_plan)

        def make_step(i):
            def step():
                if remaining_failures[i]:
                    remaining_failures[i] = False
                    raise PowerFailure(0.0)
                executed[i] += 1
            return step

        steps = [make_step(i) for i in range(n_steps)]
        try:
            routine.run(steps)
        except PowerFailure:
            pass
        while routine.in_progress:
            try:
                routine.resume(steps)
            except PowerFailure:
                pass
        assert executed == [1] * n_steps


class TestCollectInvariant:
    @given(st.integers(1, 8),
           st.lists(st.sampled_from(["endB", "startA", "endA"]), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_start_accepted_iff_enough_collected(self, count, ops):
        prop = Collect(task="A", on_fail=ActionType.RESTART_PATH,
                       dep_task="B", count=count)
        inst = MachineInstance(generate_machine(prop))
        collected = 0
        t = 0.0
        for op in ops:
            t += 1.0
            if op == "endB":
                inst.on_event(MonitorEvent("endTask", "B", t))
                collected += 1
            elif op == "startA":
                verdicts = inst.on_event(MonitorEvent("startTask", "A", t))
                if collected >= count:
                    # Accepted, but the count stays banked until A
                    # completes: a crash-repeated StartTask for the same
                    # attempt must pass again (crash consistency).
                    assert verdicts == []
                else:
                    assert [v.action for v in verdicts] == ["restartPath"]
            else:  # endA — completion consumes the banked samples
                inst.on_event(MonitorEvent("endTask", "A", t))
                collected = 0
            assert inst.get("i") == collected
