"""Tests for the audit log and NVM wear accounting."""

import pytest

from repro.core.actions import Action, ActionType
from repro.core.audit import AuditLog
from repro.errors import ReproError
from repro.nvm.memory import NonVolatileMemory


class TestAuditLog:
    def test_records_in_order(self, nvm):
        log = AuditLog(nvm, capacity=4)
        log.record(1.0, "a", 1, Action(ActionType.RESTART_PATH, source="m1"))
        log.record(2.0, "b", 2, Action(ActionType.SKIP_PATH, source="m2"))
        entries = log.entries()
        assert [(e.task, e.action) for e in entries] == [
            ("a", "restartPath"), ("b", "skipPath")]
        assert entries[0].seq == 0 and entries[1].seq == 1

    def test_ring_rotation(self, nvm):
        log = AuditLog(nvm, capacity=3)
        for i in range(5):
            log.record(float(i), f"t{i}", 1, Action(ActionType.SKIP_TASK))
        entries = log.entries()
        assert len(entries) == 3
        assert [e.task for e in entries] == ["t2", "t3", "t4"]
        assert log.total_recorded == 5
        assert log.dropped == 2

    def test_last_n(self, nvm):
        log = AuditLog(nvm, capacity=5)
        for i in range(4):
            log.record(float(i), "t", 1, Action(ActionType.RESTART_TASK))
        assert [e.seq for e in log.last(2)] == [2, 3]

    def test_survives_reconstruction(self, nvm):
        AuditLog(nvm, capacity=4).record(
            1.0, "a", 1, Action(ActionType.SKIP_PATH))
        revived = AuditLog(nvm, capacity=4)
        assert revived.total_recorded == 1
        assert revived.entries()[0].task == "a"

    def test_invalid_capacity_rejected(self, nvm):
        with pytest.raises(ReproError):
            AuditLog(nvm, capacity=0)

    def test_clear_and_dump(self, nvm):
        log = AuditLog(nvm, capacity=4)
        assert log.dump() == "(audit log empty)"
        log.record(1.0, "a", 1, Action(ActionType.SKIP_PATH, source="m"))
        assert "skipPath" in log.dump()
        log.clear()
        assert log.entries() == []


class TestRuntimeAuditIntegration:
    def test_runtime_records_actions(self):
        from repro.workloads.health import (
            BENCHMARK_SPEC,
            build_health_app,
            health_power_model,
            make_intermittent_device,
        )
        from repro.core.runtime import ArtemisRuntime
        from repro.spec.validator import load_properties

        device = make_intermittent_device(420.0)
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        runtime = ArtemisRuntime(app, props, device, health_power_model(),
                                 audit_capacity=16)
        result = device.run(runtime, max_time_s=4 * 3600)
        assert result.completed
        actions = [e.action for e in runtime.audit.entries()]
        # The Figure 13 story, readable from the persistent log.
        assert actions.count("restartPath") >= 2
        assert actions.count("skipPath") == 1
        mitd_entries = [e for e in runtime.audit.entries()
                        if e.source.startswith("MITD")]
        assert [e.action for e in mitd_entries] == [
            "restartPath", "restartPath", "skipPath"]

    def test_audit_disabled_by_default(self, continuous_device):
        from repro.workloads.health import build_artemis

        runtime = build_artemis(continuous_device)
        assert runtime.audit is None


class TestWearAccounting:
    def test_per_cell_counts(self):
        nvm = NonVolatileMemory()
        hot = nvm.alloc("hot", 0)
        cold = nvm.alloc("cold", 0)
        for i in range(10):
            hot.set(i)
        cold.set(1)
        assert nvm.writes_to("hot") == 10
        assert nvm.writes_to("cold") == 1
        assert nvm.writes_to("never") == 0

    def test_wear_report_hottest_first(self):
        nvm = NonVolatileMemory()
        a, b = nvm.alloc("a", 0), nvm.alloc("b", 0)
        for i in range(3):
            b.set(i)
        a.set(1)
        report = nvm.wear_report()
        assert list(report) == ["b", "a"]
        assert nvm.wear_report(top=1) == {"b": 3}

    def test_benchmark_run_wear_is_bounded(self):
        """No cell should be written absurdly often in one run — a
        regression guard against accidental per-event rewrites of cold
        state."""
        from repro.workloads.health import build_artemis, make_continuous_device

        device = make_continuous_device()
        device.run(build_artemis(device))
        report = device.nvm.wear_report()
        hottest = next(iter(report.values()))
        events = device.trace.count("task_start") + device.trace.count("task_end")
        # The hottest cell is the monitor continuation's program counter,
        # stepped once per machine per call (~2 calls/event x 5 machines).
        assert hottest <= 12 * events
        assert next(iter(report)) == "imm.monitor.call.pc"
