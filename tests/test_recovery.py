"""Tests for the boot-time RecoveryManager and its runtime wiring."""

import pytest

from repro.core.actions import Action, ActionType
from repro.core.audit import AuditLog
from repro.core.recovery import RecoveryManager
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import PowerModel, TaskCost
from repro.sim.device import Device
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder

POWER = PowerModel({}, default_cost=TaskCost(0.05, 1e-3))

SPEC = """
b { maxTries: 3 onFail: skipPath; }
"""


def build_app():
    return (
        AppBuilder("recov")
        .task("a", body=lambda ctx: ctx.append("log", "a"))
        .task("b", body=lambda ctx: ctx.append("log", "b"))
        .path(1, ["a", "b"])
        .build()
    )


def make_runtime(audit_capacity=0):
    device = Device(EnergyEnvironment.continuous())
    app = build_app()
    props = load_properties(SPEC, app)
    runtime = ArtemisRuntime(app, props, device, POWER,
                             audit_capacity=audit_capacity)
    return device, runtime


class TestRecoveryManagerCore:
    def test_clean_boot_reports_clean(self):
        device, runtime = make_runtime()
        report = runtime.recovery.on_boot(device)
        assert report.clean
        assert report.journal == "clean"
        assert device.result.recoveries == 0
        assert device.trace.count("recovery") == 0

    def test_unguarded_cells_are_not_scanned(self):
        device = Device(EnergyEnvironment.continuous())
        device.nvm.alloc("scratch", initial=0)
        device.nvm.corrupt("scratch")
        manager = RecoveryManager(device.nvm)
        manager.guard("other.")
        report = manager.on_boot(device)
        assert report.clean  # "scratch" matches no guard prefix

    def test_guarded_corruption_restored_to_initial(self):
        device = Device(EnergyEnvironment.continuous())
        cell = device.nvm.alloc("g.x", initial=11)
        cell.set(22)
        device.nvm.corrupt("g.x")
        manager = RecoveryManager(device.nvm)
        manager.guard("g.")
        report = manager.on_boot(device)
        assert report.corrupted_cells == ["g.x"]
        assert cell.get() == 11  # alloc-time initial, not the last write
        assert device.result.corruptions_detected == 1
        assert device.result.corruptions_repaired == 1

    def test_component_repairer_runs_after_restore(self):
        device = Device(EnergyEnvironment.continuous())
        device.nvm.alloc("g.x", initial=0)
        device.nvm.corrupt("g.x")
        seen = []

        def repairer(cell_name):
            seen.append((cell_name, device.nvm.cell(cell_name).get()))
            return "component reinitialised"

        manager = RecoveryManager(device.nvm)
        manager.guard("g.", repair=repairer)
        report = manager.on_boot(device)
        assert seen == [("g.x", 0)]  # already reset when repairer runs
        assert "component reinitialised" in report.repairs[0]

    def test_invariant_violation_repaired_and_counted(self):
        device = Device(EnergyEnvironment.continuous())
        cell = device.nvm.alloc("v", initial=1)
        cell.set(-5)  # legitimate write, semantically impossible value
        manager = RecoveryManager(device.nvm)
        manager.add_invariant("v positive", lambda: cell.get() > 0,
                              lambda: cell.set(1))
        report = manager.on_boot(device)
        assert report.invariant_repairs == ["v positive"]
        assert cell.get() == 1
        assert device.result.invariant_repairs == 1
        assert device.trace.count("invariant_repair") == 1

    def test_invariant_check_exception_counts_as_violation(self):
        device = Device(EnergyEnvironment.continuous())
        manager = RecoveryManager(device.nvm)
        manager.add_invariant("always raises",
                              lambda: 1 // 0 > 0, lambda: None)
        report = manager.on_boot(device)
        assert report.invariant_repairs == ["always raises"]


class TestRuntimeRecoveryWiring:
    def test_corrupted_runtime_cell_repaired_on_boot(self):
        device, runtime = make_runtime()
        result = device.run(runtime)
        assert result.completed
        device.nvm.corrupt("rt.cur_path")
        report = runtime.recovery.on_boot(device)
        assert "rt.cur_path" in report.corrupted_cells
        assert device.nvm.verify("rt.cur_path")

    def test_out_of_range_path_index_repaired_by_invariant(self):
        device, runtime = make_runtime()
        device.nvm.cell("rt.cur_path").set(99)  # legit write, bad value
        report = runtime.recovery.on_boot(device)
        assert any("cur_path" in name for name in report.invariant_repairs)
        assert runtime.current_path_number == 1

    def test_corrupted_monitor_cell_resets_owning_machine(self):
        device, runtime = make_runtime()
        machine = runtime.monitor.machines[0]
        instance = runtime.monitor.instances[0]
        state_cell = f"monitor.{machine.name}.state"
        assert state_cell in device.nvm
        device.nvm.corrupt(state_cell)
        report = runtime.recovery.on_boot(device)
        assert state_cell in report.corrupted_cells
        assert any(machine.name in r for r in report.repairs)
        assert instance.state in machine.states

    def test_illegal_monitor_state_reset_via_validate(self):
        device, runtime = make_runtime()
        machine = runtime.monitor.machines[0]
        instance = runtime.monitor.instances[0]
        # A legitimate write of a semantically impossible state: the
        # checksum matches, only validate() can catch it.
        device.nvm.cell(f"monitor.{machine.name}.state").set("Bogus")
        assert runtime.monitor.validate() == [machine.name]
        report = runtime.recovery.on_boot(device)
        assert report.monitor_resets == [machine.name]
        assert instance.state in machine.states
        assert device.result.monitor_resets == 1
        assert device.trace.count("monitor_reset") == 1

    def test_run_completes_after_mid_run_corruption(self):
        """Corruption + repair must not wedge the main loop."""
        device, runtime = make_runtime()
        device.nvm.cell("rt.cur_path").set(7)
        result = device.run(runtime)
        assert result.completed
        assert result.invariant_repairs >= 1

    def test_recovery_entries_reach_the_audit_log(self):
        device, runtime = make_runtime(audit_capacity=8)
        device.nvm.corrupt("rt.status")
        runtime.recovery.on_boot(device)
        actions = [e.action for e in runtime.audit.entries()]
        assert any(a.startswith("recovery:") for a in actions)


class TestAuditClearTruthfulness:
    def test_clear_does_not_inflate_dropped(self, nvm):
        log = AuditLog(nvm, capacity=3)
        for i in range(5):
            log.record(float(i), f"t{i}", 1, Action(ActionType.SKIP_TASK))
        assert log.dropped == 2  # rotation only
        log.clear()
        assert log.entries() == []
        assert log.cleared == 3
        assert log.dropped == 2  # clearing is deliberate, not loss
        log.record(9.0, "new", 1, Action(ActionType.SKIP_TASK))
        assert log.dropped == 2
        assert log.total_recorded == 6

    def test_record_event_free_form(self, nvm):
        log = AuditLog(nvm, capacity=4)
        entry = log.record_event(3.0, "recovery:corruption", "rt.cur_path",
                                 task="<boot>")
        assert entry.action == "recovery:corruption"
        assert log.entries()[0].source == "rt.cur_path"
        assert log.entries()[0].path == -1
