"""Unit tests for the task-based application model."""

import pytest

from repro.errors import RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.transaction import Transaction
from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import TaskContext, channel_cell_name
from repro.taskgraph.path import Path
from repro.taskgraph.task import Task, TaskStatus


class TestTask:
    def test_valid_task(self):
        task = Task("sense")
        assert task.name == "sense"
        assert task.body is None

    def test_invalid_name_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Task("not a name")
        with pytest.raises(RuntimeConfigError):
            Task("")

    def test_equality_by_name(self):
        assert Task("a") == Task("a")
        assert Task("a") != Task("b")
        assert hash(Task("a")) == hash(Task("a"))

    def test_monitored_vars_stored_as_tuple(self):
        task = Task("t", monitored_vars=["x", "y"])
        assert task.monitored_vars == ("x", "y")

    def test_status_enum_values_match_paper(self):
        assert TaskStatus.READY.value == "TASK_READY"
        assert TaskStatus.FINISHED.value == "TASK_FINISHED"


class TestPath:
    def test_index_of(self):
        path = Path(1, ["a", "b", "c"])
        assert path.index_of("b") == 1

    def test_index_of_missing_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Path(1, ["a"]).index_of("z")

    def test_contains_and_len(self):
        path = Path(2, ["a", "b"])
        assert "a" in path
        assert "z" not in path
        assert len(path) == 2

    def test_zero_number_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Path(0, ["a"])

    def test_empty_path_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Path(1, [])

    def test_duplicate_task_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Path(1, ["a", "a"])


class TestApplication:
    def test_path_numbers_must_be_contiguous(self):
        with pytest.raises(RuntimeConfigError):
            Application("x", [Task("a")], [Path(2, ["a"])])

    def test_paths_sorted_by_number(self):
        app = Application(
            "x", [Task("a"), Task("b")], [Path(2, ["b"]), Path(1, ["a"])]
        )
        assert [p.number for p in app.paths] == [1, 2]

    def test_unknown_task_in_path_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Application("x", [Task("a")], [Path(1, ["ghost"])])

    def test_duplicate_task_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Application("x", [Task("a"), Task("a")], [Path(1, ["a"])])

    def test_no_tasks_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Application("x", [], [])

    def test_no_paths_rejected(self):
        with pytest.raises(RuntimeConfigError):
            Application("x", [Task("a")], [])

    def test_paths_containing_merge_task(self, health_app):
        assert [p.number for p in health_app.paths_containing("send")] == [1, 2, 3]
        assert [p.number for p in health_app.paths_containing("accel")] == [2]

    def test_task_lookup(self, health_app):
        assert health_app.task("accel").name == "accel"
        with pytest.raises(RuntimeConfigError):
            health_app.task("ghost")

    def test_path_lookup_bounds(self, health_app):
        assert health_app.path(1).number == 1
        with pytest.raises(RuntimeConfigError):
            health_app.path(4)
        with pytest.raises(RuntimeConfigError):
            health_app.path(0)


class TestBuilder:
    def test_build_simple_app(self, two_task_app):
        assert two_task_app.task_names == ["sense", "send"]
        assert len(two_task_app.paths) == 1

    def test_decorator_registration(self):
        builder = AppBuilder("deco")

        @builder.task_fn()
        def sense(ctx):
            pass

        app = builder.path(1, ["sense"]).build()
        assert app.task("sense").body is sense

    def test_decorator_custom_name(self):
        builder = AppBuilder("deco")

        @builder.task_fn(name="other")
        def fn(ctx):
            pass

        app = builder.path(1, ["other"]).build()
        assert app.has_task("other")

    def test_builder_single_use(self, two_task_app):
        builder = AppBuilder("x").task("a").path(1, ["a"])
        builder.build()
        with pytest.raises(RuntimeConfigError):
            builder.build()


class TestTaskContext:
    def make_ctx(self, nvm, sensors=None, now=lambda: 0.0):
        txn = Transaction(nvm)
        return TaskContext("t", nvm, txn, sensors or {}, now), txn

    def test_write_then_read_sees_staged(self, nvm):
        ctx, _ = self.make_ctx(nvm)
        ctx.write("x", 5)
        assert ctx.read("x") == 5

    def test_write_not_durable_until_commit(self, nvm):
        ctx, txn = self.make_ctx(nvm)
        ctx.write("x", 5)
        fresh_ctx, _ = self.make_ctx(nvm)
        assert fresh_ctx.read("x") is None
        txn.commit()
        assert fresh_ctx.read("x") == 5

    def test_read_default_for_missing(self, nvm):
        ctx, _ = self.make_ctx(nvm)
        assert ctx.read("missing", default=7) == 7

    def test_append_builds_list(self, nvm):
        ctx, txn = self.make_ctx(nvm)
        ctx.append("log", 1)
        ctx.append("log", 2)
        txn.commit()
        assert nvm.cell(channel_cell_name("log")).get() == [1, 2]

    def test_sample_unknown_sensor_rejected(self, nvm):
        ctx, _ = self.make_ctx(nvm)
        with pytest.raises(RuntimeConfigError):
            ctx.sample("ghost")

    def test_sample_uses_time(self, nvm):
        times = iter([1.0, 2.0])
        ctx, _ = self.make_ctx(
            nvm, sensors={"adc": lambda t: t * 10}, now=lambda: next(times)
        )
        assert ctx.sample("adc") == 10.0
        assert ctx.sample("adc") == 20.0

    def test_emit_collects_monitored_values(self, nvm):
        ctx, _ = self.make_ctx(nvm)
        ctx.emit("avgTemp", 36.8)
        assert ctx.emitted == {"avgTemp": 36.8}

    def test_now_delegates(self, nvm):
        ctx, _ = self.make_ctx(nvm, now=lambda: 123.0)
        assert ctx.now() == 123.0
