"""Every example must run to completion — examples are part of the
deliverable and must not rot."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5  # quickstart + at least four scenarios
