"""Fuzzing over synthetic applications, properties, and fault patterns.

The guarded-by-construction property generator plus random fault
injection gives a strong end-to-end invariant: *every* generated
deployment terminates, on every fault pattern, with a quiescent monitor
and a well-formed trace. Each case is deterministic per seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import generate_machines
from repro.core.runtime import ArtemisRuntime
from repro.errors import ReproError
from repro.sim.faults import FailRandomly
from repro.statemachine.analysis import lint
from repro.workloads.synthetic import synthetic_app, synthetic_properties


class TestGenerators:
    def test_app_deterministic_per_seed(self):
        app1, power1 = synthetic_app(seed=7)
        app2, power2 = synthetic_app(seed=7)
        assert app1.task_names == app2.task_names
        for name in app1.task_names:
            assert power1.cost_of(name) == power2.cost_of(name)

    def test_app_shape_bounds(self):
        app, _ = synthetic_app(n_paths=4, tasks_per_path=(2, 3), seed=1)
        assert len(app.paths) == 4
        for path in app.paths:
            assert 2 <= len(path) <= 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            synthetic_app(n_paths=0)
        with pytest.raises(ReproError):
            synthetic_app(tasks_per_path=(5, 2))
        app, _ = synthetic_app(seed=0)
        with pytest.raises(ReproError):
            synthetic_properties(app, density=1.5)

    def test_properties_bind_to_app(self):
        app, _ = synthetic_app(seed=3)
        props = synthetic_properties(app, density=0.8, seed=3)
        for prop in props:
            assert app.has_task(prop.task)

    def test_generated_machines_are_lint_clean(self):
        for seed in range(5):
            app, _ = synthetic_app(seed=seed)
            props = synthetic_properties(app, density=0.7, seed=seed)
            for machine in generate_machines(props):
                report = lint(machine, samples=150)
                assert report.clean, str(report)


class TestFuzzDeployments:
    @given(app_seed=st.integers(0, 500),
           prop_seed=st.integers(0, 500),
           fault_seed=st.integers(0, 500),
           density=st.floats(0.0, 0.9),
           p_fail=st.floats(0.0, 0.12))
    @settings(max_examples=30, deadline=None)
    def test_every_guarded_deployment_terminates(
            self, app_seed, prop_seed, fault_seed, density, p_fail):
        app, power = synthetic_app(seed=app_seed)
        props = synthetic_properties(app, density=density, seed=prop_seed)
        device = FailRandomly(p=p_fail, seed=fault_seed)
        runtime = ArtemisRuntime(app, props, device, power)
        result = device.run(runtime, max_time_s=1800.0)
        assert result.completed, (
            f"non-termination: app_seed={app_seed} prop_seed={prop_seed} "
            f"fault_seed={fault_seed} density={density} p={p_fail}")
        assert not runtime.monitor.in_progress
        # Every path was either completed or explicitly skipped.
        completed = {e.detail["path"]
                     for e in device.trace.of_kind("path_complete")}
        skipped = {e.detail["path"] for e in device.trace.of_kind("path_skip")}
        assert completed | skipped >= {p.number for p in app.paths} or (
            # completePath runs can legitimately end early; synthetic
            # specs never use completePath, so all paths must be covered.
            False
        )

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_differential_backends_on_synthetic_apps(self, seed):
        app, power = synthetic_app(seed=seed)
        props = synthetic_properties(app, density=0.6, seed=seed)
        traces = []
        for backend in ("generated", "interpreted"):
            device = FailRandomly(p=0.05, seed=seed)
            runtime = ArtemisRuntime(app, props, device, power,
                                     monitor_backend=backend)
            device.run(runtime, max_time_s=1800.0)
            traces.append([(e.kind, e.detail.get("task"))
                           for e in device.trace])
        assert traces[0] == traces[1]
