"""Anticipatory (forecast-driven) degradation: the HarvestForecaster,
the PredictiveDegradationController, and the acceptance scenario the
issue pins — a Fig. 12-style harvest washout where the predictive
controller completes paths the reactive controller livelocks on, with
zero shed events when energy is ample."""

import math

import pytest

from repro.analysis import HarvestForecaster, analyze
from repro.core.actions import ActionType
from repro.core.degradation import (
    DegradationController,
    PredictiveDegradationController,
)
from repro.core.properties import MaxDuration, MaxTries, Period
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.energy.harvester import TraceHarvester
from repro.energy.power import PowerModel, TaskCost
from repro.energy.traces import washout_trace
from repro.errors import ReproError, RuntimeConfigError
from repro.fleet.telemetry import shed_lead_time_s
from repro.sim.device import Device
from repro.sim.tracer import Tracer
from repro.taskgraph.builder import AppBuilder

CYCLE_J = default_capacitor().usable_energy_per_cycle


# ---------------------------------------------------------------------------
# HarvestForecaster
# ---------------------------------------------------------------------------


class TestHarvestForecaster:
    def test_knob_validation(self):
        with pytest.raises(ReproError):
            HarvestForecaster(window_s=0.0)
        with pytest.raises(ReproError):
            HarvestForecaster(alpha=0.0)
        with pytest.raises(ReproError):
            HarvestForecaster(alpha=1.5)
        with pytest.raises(ReproError):
            HarvestForecaster(min_samples=0)

    def test_not_ready_until_min_samples(self):
        forecaster = HarvestForecaster(min_samples=3)
        assert not forecaster.ready
        for i in range(3):
            forecaster.observe(float(i), 0.001)
        assert forecaster.ready

    def test_constant_power_estimates_itself(self):
        forecaster = HarvestForecaster()
        for i in range(10):
            forecaster.observe(float(i), 0.002)
        assert forecaster.estimate_w == pytest.approx(0.002)
        assert forecaster.forecast_energy_j(10.0, 5.0) == \
            pytest.approx(0.002 * 5.0)
        assert forecaster.forecast_power_w(10.0, 5.0) == \
            pytest.approx(0.002)

    def test_ewma_tracks_a_regime_change(self):
        forecaster = HarvestForecaster(alpha=0.5)
        for i in range(5):
            forecaster.observe(float(i), 0.010)
        for i in range(5, 10):
            forecaster.observe(float(i), 0.001)
        # Recent samples dominate: the estimate has left the old regime.
        assert forecaster.estimate_w < 0.002

    def test_window_prunes_old_samples(self):
        forecaster = HarvestForecaster(window_s=5.0)
        forecaster.observe(0.0, 1.0)
        forecaster.observe(100.0, 0.001)
        assert forecaster.sample_count == 1
        assert forecaster.estimate_w == pytest.approx(0.001)

    def test_out_of_order_samples_are_dropped(self):
        forecaster = HarvestForecaster()
        forecaster.observe(10.0, 0.001)
        forecaster.observe(5.0, 9.0)
        assert forecaster.sample_count == 1

    def test_trace_lookahead_is_exact(self):
        """With a known profile the forecast integrates the trace
        itself — including an upcoming outage EWMA cannot see."""
        forecaster = HarvestForecaster.from_trace(
            [(0.0, 0.010), (50.0, 0.0)], loop=False)
        assert forecaster.ready  # profile-backed, no samples needed
        # 40..60s spans the washout edge: 10s at 10mW, then nothing
        # (to the harvester's trapezoid-integration resolution).
        assert forecaster.forecast_energy_j(40.0, 20.0) == \
            pytest.approx(0.010 * 10.0, rel=0.01)

    def test_washout_trace_composes(self):
        samples = washout_trace(duration_s=600.0, base_power_w=0.010,
                                dead_start_s=100.0, dead_length_s=200.0)
        forecaster = HarvestForecaster.from_trace(samples, loop=True)
        # The dead window is visible to the lookahead...
        assert forecaster.forecast_energy_j(150.0, 100.0) == \
            pytest.approx(0.0, abs=1e-3)
        # ...and the live window integrates the base power.
        assert forecaster.forecast_energy_j(400.0, 100.0) == \
            pytest.approx(1.0, rel=0.05)

    def test_zero_horizon_is_zero_energy(self):
        forecaster = HarvestForecaster()
        forecaster.observe(0.0, 0.5)
        forecaster.observe(1.0, 0.5)
        assert forecaster.forecast_energy_j(1.0, 0.0) == 0.0
        assert forecaster.forecast_power_w(1.0, 0.0) == \
            pytest.approx(forecaster.estimate_w)


# ---------------------------------------------------------------------------
# Acceptance scenario: reactive livelocks, predictive completes
# ---------------------------------------------------------------------------
#
# One path, one 12 mJ task, and three sheddable monitors whose combined
# per-event cost pushes the task's re-executed unit past one capacitor
# cycle (~15 mJ): with all monitors live every attempt browns out
# mid-body, and because the capacitor is always *full* at each loop top
# the reactive watermarks never trip — the device livelocks. The
# predictive controller sees the same arithmetic statically and sheds
# the unaffordable set at the path boundary, after which the body fits.

FAT_POWER = PowerModel(
    {"work": TaskCost(1.2, 0.010)},  # 12 mJ body
    monitor_call_base_s=0.05,
    monitor_per_property_s=4.0,  # ~1.4 mJ per live machine per event
)


def _fat_app():
    return AppBuilder("fat").task("work").path(1, ["work"]).build()


def _fat_props():
    # Limits are unreachable: the monitors are pure overhead, which is
    # exactly the Fig. 12 "monitoring tips the app into
    # non-termination" regime.
    return [
        MaxTries(limit=10**6, task="work", on_fail=ActionType.RESTART_PATH),
        MaxDuration(limit_s=10.0**9, task="work",
                    on_fail=ActionType.RESTART_PATH),
        Period(period_s=10.0**9, task="work",
               on_fail=ActionType.RESTART_PATH),
    ]


def _watermarks():
    return (0.35 * CYCLE_J, 0.85 * CYCLE_J)


def _predictive(env, shed_margin=1.2, restore_margin=2.0):
    report = analyze(_fat_app(), _fat_props(), FAT_POWER)
    low_j, high_j = _watermarks()

    def build(monitor, audit):
        forecaster = HarvestForecaster(trace=env.harvester)
        return PredictiveDegradationController(
            monitor, low_j, high_j, report, forecaster=forecaster,
            audit=audit, shed_margin=shed_margin,
            restore_margin=restore_margin)

    return build


def _run(degradation, env, runs=1, max_time_s=4 * 3600.0):
    device = Device(env)
    runtime = ArtemisRuntime(_fat_app(), _fat_props(), device, FAT_POWER,
                             degradation=degradation)
    result = device.run(runtime, runs=runs, max_time_s=max_time_s)
    return device, result


class TestAnticipatorySheddingAcceptance:
    def test_static_analysis_confirms_the_scenario_shape(self):
        report = analyze(_fat_app(), _fat_props(), FAT_POWER)
        budget = report.path(1)
        # With everything live the task unit exceeds one cycle...
        assert budget.energy_threshold_s is not None
        # ...and with the sheddable set gone it fits again.
        shed = frozenset(m.machine for m in report.monitors if m.sheddable)
        assert report.path_energy_j(1, shed) < CYCLE_J

    def test_reactive_controller_livelocks(self):
        _, result = _run(_watermarks(),
                         EnergyEnvironment.for_charging_delay(
                             600.0, default_capacitor()))
        assert not result.completed
        assert result.monitors_shed == 0
        assert result.reboots > 3

    def test_predictive_controller_completes_the_same_scenario(self):
        env = EnergyEnvironment.for_charging_delay(
            600.0, default_capacitor())
        device, result = _run(_predictive(env), env)
        assert result.completed
        assert result.monitors_shed == 3
        assert result.predictive_sheds == 3
        sheds = device.trace.of_kind("monitor_shed")
        assert all(e.detail.get("predictive") for e in sheds)
        assert all(e.detail.get("soc_j") is not None for e in sheds)

    def test_zero_sheds_when_energy_is_ample(self):
        # A one-second charging delay means harvest outpaces every
        # draw; the forecast budget covers the full monitor set and
        # nothing is shed.
        env = EnergyEnvironment.for_charging_delay(
            1.0, default_capacitor())
        _, result = _run(_predictive(env), env)
        assert result.completed
        assert result.monitors_shed == 0
        assert result.predictive_sheds == 0

    def test_continuous_power_is_a_noop(self):
        env = EnergyEnvironment.continuous()
        _, result = _run(_predictive(env), env)
        assert result.completed
        assert result.monitors_shed == 0

    def test_restores_on_forecast_recovery(self):
        """Washout then recovery: monitors shed during the washout come
        back once the forecast budget covers them again."""
        # 0.05 mW washout: over the ~25 s path horizon the forecast adds
        # ~1.3 mJ, far short of the 24.5 mJ shed threshold, so all three
        # sheddable monitors go at the first boundary. At 60 s the trace
        # recovers to 20 mW and the forecast budget covers restores.
        samples = [(0.0, 0.00005), (60.0, 0.020)]
        env = EnergyEnvironment(
            harvester=TraceHarvester(samples, loop=False),
            capacitor=default_capacitor())
        device, result = _run(_predictive(env), env, runs=6,
                              max_time_s=3600.0)
        assert result.completed
        assert result.predictive_sheds >= 3
        assert result.monitors_restored >= 1
        restores = device.trace.of_kind("monitor_restored")
        assert restores and all(e.detail.get("predictive")
                                for e in restores)

    def test_reactive_fallback_when_forecaster_not_ready(self):
        """A blind (EWMA) forecaster below min_samples leaves the
        reactive hysteresis in charge — behaviour matches the plain
        controller."""
        report = analyze(_fat_app(), _fat_props(), FAT_POWER)
        low_j, high_j = _watermarks()

        def build(monitor, audit):
            return PredictiveDegradationController(
                monitor, low_j, high_j, report,
                forecaster=HarvestForecaster(min_samples=10**6),
                audit=audit)

        env = EnergyEnvironment.for_charging_delay(
            600.0, default_capacitor())
        _, result = _run(build, env, max_time_s=2 * 3600.0)
        # Same livelock as the reactive run: the fallback is faithful.
        assert not result.completed
        assert result.monitors_shed == 0

    def test_margin_validation(self):
        report = analyze(_fat_app(), _fat_props(), FAT_POWER)
        with pytest.raises(RuntimeConfigError):
            PredictiveDegradationController(
                object(), 1.0, 2.0, report,
                shed_margin=1.5, restore_margin=1.5)
        with pytest.raises(RuntimeConfigError):
            PredictiveDegradationController(
                object(), 1.0, 2.0, report,
                shed_margin=0.5, restore_margin=2.0)


class TestShedLeadTelemetry:
    def test_lead_time_measures_shed_to_next_failure(self):
        trace = Tracer()
        trace.record(10.0, "monitor_shed", machine="a", predictive=True)
        trace.record(25.0, "power_failure", category="app")
        trace.record(100.0, "monitor_shed", machine="b", predictive=True)
        trace.record(160.0, "power_failure", category="app")
        assert shed_lead_time_s(trace) == pytest.approx((15.0 + 60.0) / 2)

    def test_reactive_sheds_do_not_count(self):
        trace = Tracer()
        trace.record(10.0, "monitor_shed", machine="a")
        trace.record(25.0, "power_failure", category="app")
        assert shed_lead_time_s(trace) == 0.0

    def test_shed_with_no_subsequent_failure_contributes_nothing(self):
        trace = Tracer()
        trace.record(10.0, "monitor_shed", machine="a", predictive=True)
        assert shed_lead_time_s(trace) == 0.0
