"""Bounded model checking of the generated property templates."""

import pytest

from repro.core.actions import ActionType
from repro.core.generator import generate_machine
from repro.core.properties import Collect, DpData, MITD, MaxDuration, MaxTries
from repro.errors import StateMachineError
from repro.statemachine.explore import Letter, alphabet_for, explore
from repro.statemachine.model import StateMachine


class TestMaxTriesModelChecked:
    def machine(self, limit):
        return generate_machine(
            MaxTries(task="A", on_fail=ActionType.SKIP_PATH, limit=limit))

    @pytest.mark.parametrize("limit", [1, 2, 3, 5])
    def test_shortest_failure_needs_limit_plus_one_starts(self, limit):
        machine = self.machine(limit)
        alphabet = alphabet_for(machine, deltas=[1.0])
        result = explore(machine, alphabet, depth=limit + 2)
        witness = result.shortest_witness("skipPath")
        assert witness is not None
        assert len(witness) == limit + 1
        assert all(w.kind == "startTask" for w in witness)

    def test_no_failure_within_limit(self):
        machine = self.machine(4)
        alphabet = alphabet_for(machine, deltas=[1.0])
        result = explore(machine, alphabet, depth=4)
        assert not result.can_fail_with("skipPath")

    def test_all_states_reachable(self):
        machine = self.machine(3)
        result = explore(machine, alphabet_for(machine, deltas=[1.0]), depth=3)
        assert result.reachable_states == {"NotStarted", "Started"}


class TestMITDModelChecked:
    def machine(self, max_attempt=None):
        return generate_machine(MITD(
            task="A", on_fail=ActionType.RESTART_PATH, dep_task="B",
            limit_s=5.0, max_attempt=max_attempt,
            max_attempt_action=ActionType.SKIP_PATH if max_attempt else None))

    def alphabet(self, machine):
        # Deltas straddling the 5 s window cover both guard branches.
        return alphabet_for(machine, deltas=[1.0, 10.0])

    def test_violation_requires_dependency_first(self):
        machine = self.machine()
        result = explore(machine, self.alphabet(machine), depth=2)
        witness = result.shortest_witness("restartPath")
        assert witness is not None
        assert witness[0].kind == "endTask" and witness[0].task == "B"
        assert witness[1].kind == "startTask" and witness[1].delta == 10.0

    def test_no_violation_without_dependency(self):
        machine = self.machine()
        only_a = [l for l in self.alphabet(machine) if l.task == "A"]
        result = explore(machine, only_a, depth=4)
        assert not result.witnesses

    @pytest.mark.parametrize("max_attempt", [2, 3])
    def test_escalation_depth_is_exactly_max_attempt_violations(
            self, max_attempt):
        machine = self.machine(max_attempt)
        result = explore(machine, self.alphabet(machine),
                         depth=max_attempt + 2)
        witness = result.shortest_witness("skipPath")
        assert witness is not None
        # Shortest escalation: one dependency completion, then
        # max_attempt violating start attempts (the explorer is free to
        # realise later violations with short deltas — once late,
        # re-starts without a fresh dependency completion stay late).
        assert len(witness) == max_attempt + 1
        assert witness[0].kind == "endTask" and witness[0].task == "B"
        starts = witness[1:]
        assert all(l.kind == "startTask" and l.task == "A" for l in starts)
        assert starts[0].delta == 10.0  # the first violation must be late

    def test_restart_action_reachable_before_escalation(self):
        machine = self.machine(3)
        result = explore(machine, self.alphabet(machine), depth=3)
        assert result.can_fail_with("restartPath")
        assert not result.can_fail_with("skipPath")


class TestMaxDurationModelChecked:
    def test_failure_needs_start_then_late_event(self):
        machine = generate_machine(MaxDuration(
            task="A", on_fail=ActionType.SKIP_TASK, limit_s=3.0))
        alphabet = alphabet_for(machine, deltas=[1.0, 5.0])
        result = explore(machine, alphabet, depth=3)
        witness = result.shortest_witness("skipTask")
        assert witness is not None
        assert len(witness) == 2
        assert witness[0].kind == "startTask"
        assert witness[1].delta == 5.0


class TestCollectModelChecked:
    def test_failure_on_early_start_success_after_enough(self):
        machine = generate_machine(Collect(
            task="A", on_fail=ActionType.RESTART_PATH, dep_task="B", count=2))
        alphabet = alphabet_for(machine, deltas=[1.0])
        result = explore(machine, alphabet, depth=3)
        witness = result.shortest_witness("restartPath")
        assert witness is not None
        assert len(witness) == 1  # an immediate start violates


class TestDpDataModelChecked:
    def test_only_out_of_range_values_fail(self):
        machine = generate_machine(DpData(
            task="A", on_fail=ActionType.COMPLETE_PATH, var="v",
            low=0.0, high=1.0))
        alphabet = alphabet_for(machine, deltas=[1.0],
                                data_values={"v": [0.5, 2.0]})
        result = explore(machine, alphabet, depth=1)
        witness = result.shortest_witness("completePath")
        assert witness is not None
        assert dict(witness[0].data)["v"] == 2.0

    def test_in_range_only_alphabet_never_fails(self):
        machine = generate_machine(DpData(
            task="A", on_fail=ActionType.COMPLETE_PATH, var="v",
            low=0.0, high=1.0))
        alphabet = alphabet_for(machine, deltas=[1.0],
                                data_values={"v": [0.2, 0.9]})
        result = explore(machine, alphabet, depth=3)
        assert not result.witnesses


class TestExplorerMechanics:
    def test_negative_depth_rejected(self):
        machine = generate_machine(MaxTries(
            task="A", on_fail=ActionType.SKIP_PATH, limit=2))
        with pytest.raises(StateMachineError):
            explore(machine, alphabet_for(machine, deltas=[1.0]), depth=-1)

    def test_configuration_budget_enforced(self):
        machine = generate_machine(MaxTries(
            task="A", on_fail=ActionType.SKIP_PATH, limit=50))
        with pytest.raises(StateMachineError):
            explore(machine, alphabet_for(machine, deltas=[1.0]),
                    depth=60, max_configurations=10)

    def test_configurations_deduplicated(self):
        # maxTries(3) over one letter has only ~5 distinct configs.
        machine = generate_machine(MaxTries(
            task="A", on_fail=ActionType.SKIP_PATH, limit=3))
        alphabet = [Letter("startTask", "A", 1.0)]
        result = explore(machine, alphabet, depth=20)
        assert result.configurations <= 6
