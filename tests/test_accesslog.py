"""Unit tests for the NVM access logger.

The logger is the evidence stream the memory-model oracles run on
(tests/test_memmodel.py): per-cell read/write/stage events with epoch
(reboot) and region (commit) boundaries, the ``via`` context separating
program accesses from journal roll-forward and boot recovery, and
value signatures with time-cell masking.
"""

from repro.nvm.accesslog import (
    OP_CLEAR,
    OP_READ,
    OP_RECOVER,
    OP_STAGE,
    OP_WRITE,
    VIA_APPLY,
    VIA_RECOVERY,
    VIA_TASK,
    AccessLog,
)
from repro.nvm.journal import CommitJournal
from repro.nvm.memory import NonVolatileMemory, namespaced, value_checksum
from repro.nvm.transaction import Transaction
from repro.verify.oracle import is_time_cell, mask_time_fields


def _logged(nvm=None):
    nvm = nvm or NonVolatileMemory()
    log = AccessLog()
    nvm.attach_access_log(log)
    return nvm, log


class TestCellEvents:
    def test_read_write_recorded_with_context(self):
        nvm, log = _logged()
        cell = nvm.alloc("x", 1)
        cell.get()
        cell.set(2)
        ops = [(e.op, e.cell) for e in log.events]
        assert (OP_READ, "x") in ops
        assert (OP_WRITE, "x") in ops
        for event in log.events:
            assert event.epoch == 0
            assert event.via == VIA_TASK

    def test_write_records_value_signature(self):
        nvm, log = _logged()
        nvm.alloc("x", 0).set({"v": 7})
        write = [e for e in log.events if e.op == OP_WRITE][-1]
        assert write.value_sig == value_checksum({"v": 7})

    def test_detached_log_records_nothing(self):
        nvm, log = _logged()
        nvm.detach_access_log()
        nvm.alloc("x", 1).set(2)
        assert log.events == []

    def test_raw_accessors_do_not_log(self):
        nvm, log = _logged()
        nvm.alloc("x", 1)
        before = len(log.events)
        nvm.raw_get("x")
        dict(nvm.raw_items())
        nvm.state_fingerprint()
        assert len(log.events) == before


class TestBoundaries:
    def test_reboot_advances_epoch_and_region(self):
        nvm, log = _logged()
        cell = nvm.alloc("x", 1)
        cell.set(2)
        log.mark_reboot()
        cell.set(3)
        first, second = [e for e in log.events if e.op == OP_WRITE]
        assert (first.epoch, second.epoch) == (0, 1)
        assert second.region > first.region
        assert log.epochs == 2

    def test_commit_clear_starts_new_region(self):
        nvm, log = _logged()
        journal = CommitJournal(nvm)
        nvm.alloc("x", 1).get()
        pre = log.events[-1].region
        journal.begin()
        journal.append("x", 2)
        journal.seal()
        journal.apply()
        journal.clear()
        nvm.cell("x").get()
        assert log.events[-1].region == pre + 1

    def test_journal_names_collected(self):
        nvm, log = _logged()
        journal = CommitJournal(nvm, name="mylog")
        journal.begin()
        journal.seal()
        journal.apply()
        journal.clear()
        assert log.journal_prefixes() == ("mylog.",)


class TestViaContext:
    def test_apply_writes_are_via_apply(self):
        nvm, log = _logged()
        nvm.alloc("x", 1)
        journal = CommitJournal(nvm)
        journal.begin()
        journal.append("x", 2)
        journal.seal()
        journal.apply()
        journal.clear()
        applied = [e for e in log.events
                   if e.op == OP_WRITE and e.cell == "x"]
        assert applied and all(e.via == VIA_APPLY for e in applied)

    def test_recovery_events_are_via_recovery_with_outcome(self):
        nvm, log = _logged()
        nvm.alloc("x", 1)
        journal = CommitJournal(nvm)
        journal.begin()
        journal.append("x", 2)
        # Crash before seal: recovery must roll back.
        outcome = journal.recover()
        assert outcome == "rolled_back"
        recovery = [e for e in log.events if e.via == VIA_RECOVERY]
        assert recovery
        marker = [e for e in log.events if e.op == OP_RECOVER][-1]
        assert marker.detail == "rolled_back"


class TestStagingAndMasking:
    def test_stage_events_recorded(self):
        nvm, log = _logged()
        nvm.alloc("x", 1)
        txn = Transaction(nvm)
        txn.stage("x", 5)
        staged = [e for e in log.events if e.op == OP_STAGE]
        assert [(e.cell, e.value_sig) for e in staged] == \
            [("x", value_checksum(5))]

    def test_mask_cells_suppresses_value_signature(self):
        nvm = NonVolatileMemory()
        log = AccessLog(mask_cells=is_time_cell)
        nvm.attach_access_log(log)
        nvm.alloc("rt.end_ts", 0.0).set(12.5)
        nvm.alloc("plain", 0).set(12.5)
        sigs = {e.cell: e.value_sig for e in log.events if e.op == OP_WRITE}
        assert sigs["rt.end_ts"] is None
        assert sigs["plain"] is not None

    def test_normalize_applied_before_signature(self):
        nvm = NonVolatileMemory()
        log = AccessLog(normalize=mask_time_fields)
        nvm.attach_access_log(log)
        cell = nvm.alloc("c", None)
        cell.set({"t": 1.0, "v": 9})
        cell.set({"t": 2.0, "v": 9})
        sigs = [e.value_sig for e in log.events if e.op == OP_WRITE]
        assert sigs[0] == sigs[1], "timestamp drift must not change sigs"


class TestProgressCells:
    def test_progress_flag_is_sticky_and_namespaced(self):
        nvm = NonVolatileMemory()
        nvm.alloc("cursor", 0, progress=True)
        nvm.alloc("plain", 0)
        ns_alloc = namespaced(nvm, "sub")
        ns_alloc("pc", 0, progress=True)
        assert nvm.is_progress("cursor")
        assert not nvm.is_progress("plain")
        assert "sub.pc" in nvm.progress_cells
        # Re-alloc without the flag must not clear it (crash replay
        # re-runs alloc on every boot).
        nvm.alloc("cursor", 0)
        assert nvm.is_progress("cursor")
