"""Static energy/latency analyzer: per-monitor bounds, per-path
budgets, the closed-form non-termination predicate (cross-checked
against the Figure 12 sweep semantics), auto-derived priorities, and
the ``analyze energy`` CLI."""

import json

import pytest

from repro.analysis import (
    analyze,
    derive_priorities,
    with_derived_priorities,
)
from repro.analysis.energy import livelock_risks
from repro.cli import main
from repro.core.generator import generate_machines
from repro.energy.environment import default_capacitor
from repro.energy.power import PowerModel, TaskCost
from repro.errors import ReproError
from repro.spec.validator import load_properties
from repro.statemachine.codegen_c import generate_c_bundle
from repro.statemachine.codegen_python import generate_python_source
from repro.taskgraph.builder import AppBuilder
from repro.workloads.health import (
    BENCHMARK_SPEC,
    build_artemis,
    build_health_app,
    health_power_model,
    make_intermittent_device,
)

#: BENCHMARK_SPEC's MITD stripped of its ``maxAttempt`` escape — the
#: Mayfly-equivalent shape whose Figure 12 column DNFs at delays of
#: five minutes and beyond.
MAYFLY_SHAPE_SPEC = """
accel { maxTries: 10 onFail: skipPath Path: 2; }
send { MITD: 5min dpTask: accel onFail: restartPath Path: 2; }
"""


def _report(spec=BENCHMARK_SPEC):
    app = build_health_app()
    return analyze(app, load_properties(spec, app), health_power_model())


class TestMonitorBounds:
    def test_every_machine_gets_a_bound(self):
        report = _report()
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        assert {m.machine for m in report.monitors} == {
            p.machine_name() for p in props
        }

    def test_event_bound_matches_subscription_tables(self):
        """The per-event bound is base + |subscribers| x per-property —
        the exact quantity the dispatch fast path charges."""
        report = _report()
        power = health_power_model()
        # MITD_send_p2 subscribes send and accel; maxTries_accel_p2
        # subscribes accel: two machines inspect accel events.
        assert report.subscribers("accel") == 2
        expected = (power.monitor_call_base_s
                    + 2 * power.monitor_per_property_s)
        assert report.event_time_bound_s("accel") == pytest.approx(expected)
        assert report.event_energy_bound_j("accel") == pytest.approx(
            expected * power.overhead_power_w)

    def test_shedding_lowers_the_event_bound(self):
        report = _report()
        full = report.event_energy_bound_j("accel")
        reduced = report.event_energy_bound_j(
            "accel", shed=frozenset({"maxTries_accel_p2"}))
        assert reduced < full

    def test_path_scoping_is_path_sensitive(self):
        """A path-2-scoped machine scans fewer transitions for events
        on other paths (the generated ``event.path == 2`` conjunct
        folds false)."""
        report = _report()
        bound = report.monitor("maxTries_accel_p2")
        assert bound.path == 2
        assert bound.wc_transitions >= 1
        assert bound.wc_ops >= 1

    def test_run_energy_counts_both_event_kinds(self):
        report = _report()
        bound = report.monitor("maxTries_accel_p2")
        # accel appears once, on path 2: one StartTask + one EndTask.
        assert bound.events_per_run == 2
        assert bound.run_energy_j == pytest.approx(2 * bound.wc_event_j)

    def test_unknown_machine_and_path_raise(self):
        report = _report()
        with pytest.raises(ReproError):
            report.monitor("nope")
        with pytest.raises(ReproError):
            report.path(99)


class TestPathBudgets:
    def test_budget_composes_all_tasks_on_the_path(self):
        report = _report()
        budget = report.path(2)
        assert [row.task for row in budget.tasks] == [
            "accel", "classify", "send"]
        assert budget.energy_j == pytest.approx(
            sum(row.total_j for row in budget.tasks))
        assert budget.on_time_s == pytest.approx(
            sum(row.total_s for row in budget.tasks))

    def test_live_set_budget_shrinks_when_shedding(self):
        report = _report()
        full = report.path_energy_j(2)
        assert full == pytest.approx(report.path(2).energy_j)
        reduced = report.path_energy_j(
            2, shed=frozenset({"maxTries_accel_p2"}))
        assert reduced < full

    def test_monitor_energy_is_separated_out(self):
        report = _report()
        budget = report.path(1)
        assert 0 < budget.monitor_energy_j < budget.energy_j


class TestNonTerminationPredicate:
    """Cross-check against the pinned Figure 12 sweep semantics
    (benchmarks/test_fig12_nontermination.py): ARTEMIS completes every
    charging delay on the 1-10 minute axis; the Mayfly-shape MITD
    (no maxAttempt escape) completes 1-4 minutes and DNFs at 5+."""

    FIG12_DELAYS_S = [60 * m for m in range(1, 11)]

    def test_artemis_benchmark_terminates_at_every_fig12_delay(self):
        report = _report(BENCHMARK_SPEC)
        assert report.threshold_s() is None
        for delay in self.FIG12_DELAYS_S:
            assert report.nonterminating_paths(delay) == []

    def test_mayfly_shape_threshold_matches_fig12_ordering(self):
        report = _report(MAYFLY_SHAPE_SPEC)
        threshold = report.threshold_s()
        # The MITD window is 300s; execution on-time eats a few seconds
        # of it, so the critical delay sits just under five minutes —
        # between the last completing (4min) and first DNF (5min)
        # Figure 12 grid points.
        assert threshold is not None
        assert 240 < threshold <= 300
        for delay in self.FIG12_DELAYS_S:
            flagged = report.nonterminating_paths(delay)
            if delay >= 300:
                assert flagged == [2], f"delay {delay}"
            else:
                assert flagged == [], f"delay {delay}"

    def test_predicate_agrees_with_simulation_on_both_sides(self):
        """No-escape MITD simulated at the grid points either side of
        the static threshold: the predicate must not call a
        sim-non-terminating delay terminating."""
        report = _report(MAYFLY_SHAPE_SPEC)
        for delay, expect_complete in ((240.0, True), (300.0, False)):
            device = make_intermittent_device(delay)
            runtime = build_artemis(device, spec=MAYFLY_SHAPE_SPEC)
            result = device.run(runtime, runs=1, max_time_s=4 * 3600.0)
            assert result.completed is expect_complete, f"delay {delay}"
            predicted_nonterm = bool(report.nonterminating_paths(delay))
            if not result.completed:
                assert predicted_nonterm, (
                    f"simulation DNFs at {delay}s but the predicate "
                    f"calls it terminating")

    def test_energy_leg_flags_tasks_fatter_than_a_cycle(self):
        app = AppBuilder("fat").task("work").path(1, ["work"]).build()
        cycle = default_capacitor().usable_energy_per_cycle
        # One attempt costs ~2x the usable cycle energy: below the
        # critical delay harvesting tops it up fast enough, above it
        # the attempt can never finish.
        power = PowerModel({"work": TaskCost(1.0, 2.0 * cycle)})
        report = analyze(app, [], power)
        budget = report.path(1)
        assert budget.energy_threshold_s is not None
        assert budget.nonterminating_at(budget.energy_threshold_s)
        assert not budget.nonterminating_at(
            budget.energy_threshold_s * 0.99)

    def test_livelock_detection_requires_no_escape(self):
        app = build_health_app()
        shape = load_properties(MAYFLY_SHAPE_SPEC, app)
        benchmark = load_properties(BENCHMARK_SPEC, app)
        shape_machine = next(
            m for m in generate_machines(shape) if "MITD" in m.name)
        escaped_machine = next(
            m for m in generate_machines(benchmark) if "MITD" in m.name)
        assert livelock_risks(shape_machine, app)
        # maxAttempt escalates to skipPath: bounded restarts, no risk.
        assert livelock_risks(escaped_machine, app) == []


class TestDerivedPriorities:
    def test_ranking_is_cost_per_coverage_descending(self):
        report = _report()
        ranks = derive_priorities(report)
        sheddable = [m for m in report.monitors if m.sheddable]
        assert set(ranks) == {m.machine for m in sheddable}
        ordered = sorted(ranks, key=ranks.get)
        costs = [report.monitor(n).cost_per_coverage_j for n in ordered]
        assert costs == sorted(costs, reverse=True)

    def test_substitution_skips_authored_priorities(self):
        app = build_health_app()
        spec = """
        accel { maxTries: 10 onFail: skipPath priority: 3 Path: 2; }
        micSense { maxTries: 10 onFail: skipPath Path: 3; }
        """
        props = load_properties(spec, app)
        assert with_derived_priorities(
            props, app, health_power_model()) is props

    def test_substitution_applies_and_flows_to_both_codegens(self):
        app = build_health_app()
        props = load_properties(BENCHMARK_SPEC, app)
        assert all(p.priority == 0 for p in props)
        derived = with_derived_priorities(props, app, health_power_model())
        ranked = {p.machine_name(): p.priority for p in derived
                  if type(p).SUPPORTS_PRIORITY}
        assert sorted(ranked.values()) == list(range(len(ranked)))
        machines = generate_machines(derived)
        nonzero = [m for m in machines if m.priority > 0]
        assert nonzero
        sample = nonzero[0]
        assert f"PRIORITY = {sample.priority}" in \
            generate_python_source(sample)
        assert f"{sample.name}_PRIORITY {sample.priority}" in \
            generate_c_bundle(machines)

    def test_force_overrules_authored_priorities(self):
        app = build_health_app()
        spec = """
        accel { maxTries: 10 onFail: skipPath priority: 3 Path: 2; }
        micSense { maxTries: 10 onFail: skipPath Path: 3; }
        """
        props = load_properties(spec, app)
        derived = with_derived_priorities(props, app, health_power_model(),
                                          force=True)
        assert derived is not props


class TestAnalyzeCli:
    APP_JSON = {
        "name": "health",
        "tasks": [{"name": n} for n in
                  ["bodyTemp", "calcAvg", "heartRate", "send", "accel",
                   "classify", "micSense", "filter"]],
        "paths": {"1": ["bodyTemp", "calcAvg", "heartRate", "send"],
                  "2": ["accel", "classify", "send"],
                  "3": ["micSense", "filter", "send"]},
        "costs": {"bodyTemp": {"duration_s": 0.2, "power_w": 0.0018},
                  "send": {"duration_s": 1.0, "power_w": 0.006},
                  "accel": {"duration_s": 1.2, "power_w": 0.0035}},
    }

    @pytest.fixture
    def paths(self, tmp_path):
        app = tmp_path / "app.json"
        app.write_text(json.dumps(self.APP_JSON))
        good = tmp_path / "good.spec"
        good.write_text(BENCHMARK_SPEC)
        bad = tmp_path / "bad.spec"
        bad.write_text(MAYFLY_SHAPE_SPEC)
        return app, good, bad

    def test_terminating_spec_exits_zero(self, paths, capsys):
        app, good, _ = paths
        code = main(["analyze", "energy", str(good), "--app", str(app)])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-monitor worst-case bounds" in out
        assert "terminates at any charging delay" in out

    def test_livelocking_spec_exits_three(self, paths, capsys):
        app, _, bad = paths
        code = main(["analyze", "energy", str(bad), "--app", str(app)])
        out = capsys.readouterr().out
        assert code == 3
        assert "non-terminating for delay >=" in out
        assert "livelock" in out

    def test_delay_below_threshold_exits_zero(self, paths, capsys):
        app, _, bad = paths
        code = main(["analyze", "energy", str(bad), "--app", str(app),
                     "--charging-delay", "240"])
        assert code == 0
        assert "all paths terminate" in capsys.readouterr().out

    def test_delay_beyond_threshold_exits_three(self, paths, capsys):
        app, _, bad = paths
        code = main(["analyze", "energy", str(bad), "--app", str(app),
                     "--charging-delay", "300"])
        assert code == 3
        assert "non-terminating paths: [2]" in capsys.readouterr().out

    def test_json_output_carries_thresholds_and_priorities(self, paths,
                                                           capsys):
        app, _, bad = paths
        code = main(["analyze", "energy", str(bad), "--app", str(app),
                     "--charging-delay", "600", "--json"])
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["nonterminating_paths"] == [2]
        assert payload["threshold_s"] is not None
        assert "auto_priorities" in payload
        assert {m["machine"] for m in payload["monitors"]} == {
            "MITD_send_p2", "maxTries_accel_p2"}

    def test_compile_auto_priorities_flag(self, paths, tmp_path, capsys):
        app, good, _ = paths
        out_dir = tmp_path / "gen"
        code = main(["compile", str(good), "--app", str(app),
                     "-o", str(out_dir), "--auto-priorities"])
        assert code == 0
        out = capsys.readouterr().out
        assert "auto-priority" in out
        assert "PRIORITY = 1" in (out_dir / "monitors.py").read_text()
