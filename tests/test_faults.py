"""Tests for the fault-injection device library."""

import pytest

from repro.core.runtime import ArtemisRuntime
from repro.energy.power import PowerModel, TaskCost
from repro.errors import PowerFailure, SimulationError
from repro.sim.faults import (
    BitFlipDevice,
    FailAtCategoryIndices,
    FailAtIndices,
    FailDuringCommit,
    FailDuringTasks,
    FailRandomly,
)
from repro.spec.validator import load_properties
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import channel_cell_name


def power():
    return PowerModel({}, default_cost=TaskCost(0.1, 1e-3))


def pipeline_app():
    return (
        AppBuilder("pipe")
        .task("a", body=lambda ctx: ctx.append("log", "a"))
        .task("b", body=lambda ctx: ctx.append("log", "b"))
        .task("c", body=lambda ctx: ctx.append("log", "c"))
        .path(1, ["a", "b", "c"])
        .build()
    )


def make_runtime(device):
    app = pipeline_app()
    return ArtemisRuntime(app, load_properties("", app), device, power())


class TestFailAtIndices:
    def test_fails_at_exact_calls(self):
        device = FailAtIndices({1, 3})
        with pytest.raises(PowerFailure):
            device.consume(0.1, 1e-3, "app")
        device.reboot()
        device.consume(0.1, 1e-3, "app")
        with pytest.raises(PowerFailure):
            device.consume(0.1, 1e-3, "app")

    def test_run_completes_through_failures(self):
        device = FailAtIndices({2, 5})
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        assert result.reboots == 2
        assert device.nvm.cell(channel_cell_name("log")).get() == ["a", "b", "c"]

    def test_injected_failures_marked_in_trace(self):
        device = FailAtIndices({1})
        device.run(make_runtime(device), max_time_s=600)
        failures = device.trace.of_kind("power_failure")
        assert failures and failures[0].detail.get("injected")


class TestFailAtCategoryIndices:
    def test_category_scoped(self):
        device = FailAtCategoryIndices({"monitor": {1}})
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        failure = device.trace.of_kind("power_failure")[0]
        assert failure.detail["category"] == "monitor"


class TestFailRandomly:
    def test_deterministic_per_seed(self):
        logs = []
        for _ in range(2):
            device = FailRandomly(p=0.05, seed=11)
            device.run(make_runtime(device), max_time_s=600)
            logs.append([e.kind for e in device.trace])
        assert logs[0] == logs[1]

    def test_completes_despite_random_failures(self):
        device = FailRandomly(p=0.10, seed=3)
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        assert device.nvm.cell(channel_cell_name("log")).get() == ["a", "b", "c"]

    def test_max_failures_cap(self):
        device = FailRandomly(p=0.9, seed=1, max_failures=4)
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        assert result.reboots <= 4

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            FailRandomly(p=1.5)
        with pytest.raises(SimulationError):
            FailRandomly(p=-0.1)

    def test_boundary_probabilities_accepted(self):
        """p=1.0 (always fail) and p=0.0 (never fail) are legal."""
        always = FailRandomly(p=1.0, max_failures=1)
        with pytest.raises(PowerFailure):
            always.consume(0.1, 1e-3, "app")
        never = FailRandomly(p=0.0)
        result = never.run(make_runtime(never), max_time_s=600)
        assert result.completed and result.reboots == 0


class TestFailDuringCommit:
    def test_counts_only_commit_steps(self):
        device = FailDuringCommit({2})
        device.consume(0.1, 1e-3, "app")     # not counted
        device.consume(0.0, 1e-3, "commit")  # step 1
        with pytest.raises(PowerFailure):
            device.consume(0.0, 1e-3, "commit")  # step 2 dies
        assert device.steps == 2

    def test_recovery_resolves_the_torn_commit(self):
        """A crash inside a commit is rolled back or forward at boot and
        the run still produces the failure-free result."""
        device = FailDuringCommit({3})
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        assert result.reboots == 1
        assert result.torn_commits + result.journal_replays == 1
        assert device.nvm.cell(channel_cell_name("log")).get() == ["a", "b", "c"]


class TestBitFlipDevice:
    def test_corruption_is_silent_until_verified(self):
        device = BitFlipDevice({2: "chan.log"})
        nvm = device.nvm
        nvm.alloc("chan.log", initial=["x"])
        device.consume(0.1, 1e-3, "app")
        assert nvm.verify("chan.log")
        device.consume(0.1, 1e-3, "app")  # flip fires before this call
        assert nvm.cell("chan.log").get() != ["x"]  # reads see garbage
        assert not nvm.verify("chan.log")  # only the checksum can tell
        assert device.trace.count("bit_flip") == 1

    def test_flip_then_crash_is_detected_and_repaired_at_boot(self):
        """A channel cell corrupted mid-run is caught by the next boot's
        checksum scan, repaired, and reported in counters and trace."""
        # chan.log first exists after task a's commit applies it (call
        # 11): allocation now rides inside the journaled apply step, so
        # the flip must land after the first commit, not inside it.
        device = BitFlipDevice({12: "chan.log"}, crash_at=13)
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        assert result.corruptions_detected >= 1
        assert result.corruptions_repaired >= 1
        assert device.trace.count("corruption_detected") >= 1
        assert device.trace.count("recovery") >= 1


class TestFailDuringTasks:
    def test_named_task_dies_n_times(self):
        device = FailDuringTasks({"b": 3})
        result = device.run(make_runtime(device), max_time_s=600)
        assert result.completed
        b_starts = [e for e in device.trace.of_kind("task_start")
                    if e.detail["task"] == "b"]
        assert len(b_starts) == 4  # 3 failed attempts + the success
        assert device.nvm.cell(channel_cell_name("log")).get() == ["a", "b", "c"]

    def test_combines_with_maxtries(self):
        app = pipeline_app()
        props = load_properties("b { maxTries: 3 onFail: skipPath; }", app)
        device = FailDuringTasks({"b": 99})
        runtime = ArtemisRuntime(app, props, device, power())
        result = device.run(runtime, max_time_s=600)
        assert result.completed
        # b never completes; after 3 attempts the path is skipped.
        log = device.nvm.cell(channel_cell_name("log")).get()
        assert log == ["a"]
        assert device.trace.count("path_skip") == 1
