"""Conformance of the workload × runtime matrix (tier-1 gate).

Every scenario in the matrix is explored at a small bound and must
conform to its continuous-power oracle. Budgets keep the tier-1 cost
bounded; the CI soak matrix re-runs the same check at deeper bounds and
bigger budgets through ``artemis-repro verify``.
"""

import pytest

from repro.verify import (
    EXTRA_SCENARIOS,
    RUNTIMES,
    WORKLOADS,
    get_scenario,
    iter_scenarios,
)

#: Tier-1 execution budget per scenario. ARTEMIS baselines pay ~300
#: energy payments, so this checks a prefix of the depth-1 crash points
#: there (the report says so); the cheaper runtimes are exhaustive.
BUDGET = 120

MATRIX = [(s.workload, s.runtime) for s in iter_scenarios()]


class TestMatrixShape:
    def test_matrix_is_cross_product_plus_extras(self):
        assert len(MATRIX) == (len(WORKLOADS) * len(RUNTIMES)
                               + len(EXTRA_SCENARIOS))
        for extra in EXTRA_SCENARIOS:
            assert extra in MATRIX

    def test_extra_scenario_selectable_by_name(self):
        only = iter_scenarios(workloads=("ota",))
        assert [(s.workload, s.runtime) for s in only] == [("ota", "artemis")]

    def test_scenario_names(self):
        scenario = get_scenario("camera", "mayfly")
        assert scenario.name == "camera-mayfly"

    def test_unknown_scenario_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            get_scenario("health", "freertos")


class TestScenariosConform:
    @pytest.mark.parametrize("workload,runtime", MATRIX,
                             ids=[f"{w}-{r}" for w, r in MATRIX])
    def test_bound1_conforms(self, workload, runtime):
        explorer = get_scenario(workload, runtime).explorer()
        report = explorer.explore(bound=1, budget=BUDGET,
                                  stop_on_first=False)
        assert report.ok, "\n".join(
            [report.summary()]
            + [c.describe() for c in report.counterexamples])

    def test_checkpoint_bound2_exhaustive(self):
        # The checkpoint scenarios are small enough to exhaust two
        # crashes outright — every pair of crash points conforms.
        explorer = get_scenario("health", "checkpoint").explorer()
        report = explorer.explore(bound=2, budget=500, stop_on_first=False)
        assert report.ok and not report.truncated


class TestOracleDeterminism:
    def test_same_schedule_same_outcome(self):
        explorer = get_scenario("synthetic", "chain").explorer()
        reps = explorer.oracle_run.runner.representatives(1)
        schedule = (reps[len(reps) // 2],)
        first = explorer.execute(schedule).outcome
        second = explorer.execute(schedule).outcome
        assert first == second
