"""OTA transport: chunked delivery, crash resumability, livelock guard.

The transport stages every received chunk in NVM before advancing its
durable high-water mark, so these tests exercise the resulting
guarantees directly: a transfer survives a reboot (a *fresh* transport
object over the same NVM resumes where the old one died), a link that
keeps eating the same chunk trips the livelock guard and durably fails
the transfer, and a seeded loss model reproduces the exact same
delivery pattern run-to-run.
"""

import pytest

from repro.core.retry import RetryPolicy
from repro.energy.environment import EnergyEnvironment
from repro.errors import FleetError
from repro.fleet.bundle import build_bundle
from repro.fleet.transport import ChunkLoss, OtaTransport, split_chunks
from repro.sim.device import Device
from repro.verify.workloads import OTA_SPEC_V1, OTA_SPEC_V2, _ota_app

CHUNK = 64


def _device():
    return Device(EnergyEnvironment.continuous())


def _wire(version=1, spec=OTA_SPEC_V1):
    return build_bundle(spec, _ota_app(), version=version).to_wire()


def _drive(transport, device, max_steps=10_000):
    """Step until the transfer completes or durably fails."""
    outcomes = []
    for _ in range(max_steps):
        out = transport.step(device)
        outcomes.append(out)
        if out in ("complete", "failed", "idle"):
            break
    return outcomes


class TestChunking:
    def test_split_chunks_reassembles(self):
        wire = _wire()
        parts = split_chunks(wire, CHUNK)
        assert b"".join(parts) == wire
        assert all(len(p) == CHUNK for p in parts[:-1])
        assert 1 <= len(parts[-1]) <= CHUNK

    def test_split_rejects_bad_chunk_size(self):
        with pytest.raises(FleetError):
            split_chunks(b"abc", 0)

    def test_lossless_transfer_round_trips(self):
        device = _device()
        transport = OtaTransport(device.nvm, chunk_size=CHUNK)
        wire = _wire()
        transport.offer(wire, 1)
        outcomes = _drive(transport, device)
        assert outcomes[-1] == "complete"
        assert transport.complete and not transport.failed
        assert transport.assemble() == wire
        # One delivery trace per chunk, airtime charged to the radio.
        assert device.trace.count("ota_chunk") == len(
            split_chunks(wire, CHUNK))
        assert device.result.energy_j.get("radio", 0.0) > 0.0

    def test_assemble_before_complete_rejected(self):
        device = _device()
        transport = OtaTransport(device.nvm, chunk_size=CHUNK)
        transport.offer(_wire(), 1)
        transport.step(device)
        with pytest.raises(FleetError):
            transport.assemble()


class TestResumability:
    def test_fresh_transport_resumes_from_nvm(self):
        """A reboot (new transport object, same NVM) keeps the staged
        progress: no chunk below the high-water mark is re-sent."""
        device = _device()
        wire = _wire()
        first = OtaTransport(device.nvm, chunk_size=CHUNK)
        first.offer(wire, 1)
        for _ in range(3):
            first.step(device)
        assert first.received_chunks == 3

        resumed = OtaTransport(device.nvm, chunk_size=CHUNK)
        assert resumed.received_chunks == 3  # durable mark survived
        resumed.offer(wire, 1)  # same descriptor -> resume, not restart
        assert resumed.received_chunks == 3
        outcomes = _drive(resumed, device)
        assert outcomes[-1] == "complete"
        assert resumed.assemble() == wire
        total_chunks = len(split_chunks(wire, CHUNK))
        assert device.trace.count("ota_chunk") == total_chunks

    def test_different_offer_restarts_staging(self):
        device = _device()
        transport = OtaTransport(device.nvm, chunk_size=CHUNK)
        transport.offer(_wire(version=1), 1)
        for _ in range(3):
            transport.step(device)
        assert transport.received_chunks == 3
        transport.offer(_wire(version=2, spec=OTA_SPEC_V2), 2)
        assert transport.received_chunks == 0
        assert transport.version == 2


class TestLivelockGuard:
    def test_dead_link_durably_fails(self):
        """rate=1.0 loses every chunk: after max_attempts losses of
        chunk 0 the guard trips, the failure is durable, and further
        steps are no-ops."""
        device = _device()
        transport = OtaTransport(
            device.nvm,
            loss=ChunkLoss(rate=1.0),
            retry_policy=RetryPolicy(max_attempts=2),
            chunk_size=CHUNK,
        )
        transport.offer(_wire(), 1)
        outcomes = _drive(transport, device)
        assert outcomes[-1] == "failed"
        assert transport.failed
        assert transport.received_chunks == 0
        assert device.trace.count("ota_abort") == 1
        # The abort is durable and idles the link.
        assert transport.step(device) == "idle"
        rebooted = OtaTransport(
            device.nvm,
            loss=ChunkLoss(rate=1.0),
            retry_policy=RetryPolicy(max_attempts=2),
            chunk_size=CHUNK,
        )
        assert rebooted.failed

    def test_reset_clears_failure(self):
        device = _device()
        transport = OtaTransport(
            device.nvm,
            loss=ChunkLoss(rate=1.0),
            retry_policy=RetryPolicy(max_attempts=1),
            chunk_size=CHUNK,
        )
        transport.offer(_wire(), 1)
        _drive(transport, device)
        assert transport.failed
        transport.reset()
        assert not transport.failed and not transport.in_progress


class TestLossDeterminism:
    def test_same_seed_same_delivery_pattern(self):
        def pattern(seed):
            device = _device()
            transport = OtaTransport(
                device.nvm,
                loss=ChunkLoss(rate=0.3, seed=seed),
                chunk_size=CHUNK,
            )
            transport.offer(_wire(), 1)
            return tuple(_drive(transport, device))

        assert pattern(7) == pattern(7)
        # A lossy run still converges and stages the exact bytes.
        device = _device()
        transport = OtaTransport(
            device.nvm, loss=ChunkLoss(rate=0.3, seed=7), chunk_size=CHUNK)
        wire = _wire()
        transport.offer(wire, 1)
        assert _drive(transport, device)[-1] == "complete"
        assert transport.assemble() == wire

    def test_different_seeds_diverge(self):
        def losses(seed):
            device = _device()
            transport = OtaTransport(
                device.nvm,
                loss=ChunkLoss(rate=0.5, seed=seed),
                chunk_size=CHUNK,
            )
            transport.offer(_wire(), 1)
            _drive(transport, device)
            return device.trace.count("ota_chunk_lost")

        results = {losses(s) for s in range(6)}
        assert len(results) > 1
