"""Mayfly baseline: coupled runtime property checking.

Mayfly (Hester, Storer, Sorber — SenSys '17) executes task graphs with
*timely execution* semantics: data flowing between tasks carries an
expiration; consuming expired data restarts the task graph. It also
supports required collection counts. Both checks are wired directly
into the runtime's main loop — the paper's problem P2/P3 — and there is
no escape hatch equivalent to ARTEMIS' ``maxTries``/``maxAttempt``
(§5.1.1), which is what makes it livelock when charging delays exceed
the expiration window (Figure 12).

The implementation shares the device/NVM substrates with the ARTEMIS
runtime so measured differences come only from the checking design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.recovery import RecoveryManager
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.energy.power import PowerModel
from repro.errors import PeripheralError, RuntimeConfigError
from repro.nvm.journal import CommitJournal
from repro.nvm.transaction import Transaction
from repro.taskgraph.app import Application
from repro.taskgraph.context import TaskContext, channel_cell_name

_READY = "TASK_READY"


@dataclass(frozen=True)
class Expiration:
    """``task`` must start within ``limit_s`` of ``dep_task`` finishing.

    ``path`` scopes the rule to one path — Mayfly's rules are task-graph
    edges, so a merge-point task like ``send`` carries per-edge rules.
    """

    task: str
    dep_task: str
    limit_s: float
    path: Optional[int] = None


@dataclass(frozen=True)
class Collection:
    """``task`` needs ``count`` completions of ``dep_task`` first."""

    task: str
    dep_task: str
    count: int
    path: Optional[int] = None


@dataclass
class MayflyConfig:
    """The property vocabulary Mayfly supports (expiration + collect)."""

    expirations: List[Expiration] = field(default_factory=list)
    collections: List[Collection] = field(default_factory=list)

    def checks_for(self, task: str) -> int:
        return sum(1 for e in self.expirations if e.task == task) + sum(
            1 for c in self.collections if c.task == task
        )


class MayflyRuntime:
    """Task-graph executor with hardcoded freshness/collection checks.

    Interface-compatible with :class:`~repro.core.ArtemisRuntime` so the
    same :class:`~repro.sim.Device` drives both.
    """

    #: Extra transition cost versus the bare ARTEMIS runtime transition:
    #: Mayfly's checks are folded into its (single) runtime loop.
    TRANSITION_S = 0.55e-3
    PER_CHECK_S = 0.10e-3

    def __init__(
        self,
        app: Application,
        config: MayflyConfig,
        device,
        power_model: PowerModel,
        peripherals=None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        for rule in list(config.expirations) + list(config.collections):
            if not app.has_task(rule.task) or not app.has_task(rule.dep_task):
                raise RuntimeConfigError(f"Mayfly rule references unknown task: {rule}")
        self.app = app
        self.config = config
        self.power = power_model
        self._device = device
        self.peripherals = peripherals
        nvm = device.nvm
        self._retry = RetrySupervisor(nvm, retry_policy or RetryPolicy(),
                                      cell_name="mf.retry.attempts")
        self._retry_cell = nvm.cell(self._retry.cell_name)
        self._cur_path = nvm.alloc("mf.cur_path", 1, 2, progress=True)
        self._cur_idx = nvm.alloc("mf.cur_idx", 0, 2, progress=True)
        self._finished = nvm.alloc("mf.finished", False, 1, progress=True)
        self._end_times = nvm.alloc("mf.end_times", {}, 32)
        self._counts = nvm.alloc("mf.counts", {}, 32, progress=True)
        self._journal = CommitJournal(nvm)
        self.recovery = RecoveryManager(nvm, journal=self._journal)
        self.recovery.guard("mf.")
        self.recovery.guard("chan.")
        self.recovery.add_invariant(
            "mf.cur_path in range",
            lambda: 1 <= self._cur_path.get() <= len(app.paths),
            lambda: (self._cur_path.set(1), self._cur_idx.set(0)),
        )
        self.recovery.add_invariant(
            "mf.cur_idx in range",
            lambda: (0 <= self._cur_idx.get()
                     < len(app.path(self._cur_path.get()))),
            lambda: self._cur_idx.set(0),
        )
        self.recovery.add_invariant(
            "mf.end_times is a mapping",
            lambda: isinstance(self._end_times.get(), dict),
            lambda: self._end_times.set({}),
        )
        self.recovery.add_invariant(
            "mf.counts is a mapping",
            lambda: isinstance(self._counts.get(), dict),
            lambda: self._counts.set({}),
        )
        self.recovery.add_invariant(
            "mf.retry.attempts is a mapping",
            lambda: isinstance(self._retry_cell.get(), dict),
            lambda: self._retry_cell.set({}),
        )

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished.get()

    @property
    def current_task_name(self) -> str:
        path = self.app.path(self._cur_path.get())
        return path.task_names[self._cur_idx.get()]

    def boot(self, device) -> None:
        """Resolve any interrupted commit before the loop resumes."""
        self._device = device
        self.recovery.on_boot(device)

    def begin_run(self, device) -> None:
        self._device = device
        self._cur_path.set(1)
        self._cur_idx.set(0)
        self._finished.set(False)

    # ------------------------------------------------------------------
    def loop_iteration(self, device) -> None:
        """props_satisfied(t, p) → run(t) → commit, as in Figure 2(b)."""
        self._device = device
        if self.finished:
            return
        if self.peripherals is not None:
            self.peripherals.bind(device, sense_s=self.power.sense_s,
                                  sense_power_w=self.power.overhead_power_w)
        task = self.current_task_name
        n_checks = self.config.checks_for(task)
        device.consume(
            self.TRANSITION_S + n_checks * self.PER_CHECK_S,
            self.power.overhead_power_w,
            "runtime",
        )
        violation = self._props_satisfied(task)
        if violation is not None:
            device.trace.record(
                device.sim_clock.now(), "monitor_action",
                action="restartPath", source=violation, task=task,
                path=self._cur_path.get(),
            )
            self._restart_path()
            return
        self._run_task(task)

    # ------------------------------------------------------------------
    def _props_satisfied(self, task: str) -> Optional[str]:
        """Returns the violated rule's description, or None if all hold."""
        now = self._device.now()
        cur_path = self._cur_path.get()
        ends: Dict[str, float] = self._end_times.get()
        for rule in self.config.expirations:
            if rule.task != task or rule.path not in (None, cur_path):
                continue
            end = ends.get(rule.dep_task)
            if end is not None and now - end > rule.limit_s:
                return f"expiration({rule.dep_task}->{task})"
        counts: Dict[str, int] = self._counts.get()
        for rule in self.config.collections:
            if rule.task != task or rule.path not in (None, cur_path):
                continue
            if counts.get(rule.dep_task, 0) < rule.count:
                return f"collect({rule.dep_task}->{task})"
        return None

    def _run_task(self, name: str) -> None:
        device = self._device
        task = self.app.task(name)
        cost = self.power.cost_of(name)
        device.trace.record(device.sim_clock.now(), "task_start", task=name,
                            path=self._cur_path.get())
        if cost.fixed_energy_j:
            device.consume_energy(cost.fixed_energy_j, "app")
        device.consume(cost.duration_s, cost.power_w, "app")
        txn = Transaction(device.nvm, journal=self._journal)
        ctx = TaskContext(name, device.nvm, txn, self.app.sensors, device.now,
                          peripherals=self.peripherals)
        if task.body is not None:
            try:
                task.body(ctx)
            except PeripheralError as exc:
                txn.rollback()
                self._handle_peripheral_failure(name, exc)
                return
        # Bookkeeping (end times, collection counts) and loop advancement
        # are planned first and staged into the task's transaction, so
        # the journaled commit is all-or-nothing across data *and*
        # control state — a crash mid-commit cannot leave a committed
        # task that would re-execute and double-count.
        ends = dict(self._end_times.get())
        ends[name] = device.now()
        counts = dict(self._counts.get())
        counts[name] = counts.get(name, 0) + 1
        updates, events = self._plan_advance(counts)
        txn.stage(self._end_times.name, ends)
        txn.stage(self._counts.name, counts)
        for cell_name, value in updates:
            txn.stage(cell_name, value)
        if self._retry.attempts(name):
            txn.stage(self._retry.cell_name, self._retry.cleared(name))
        txn.commit(spend=self._spend_commit_step,
                   on_step=self._label_commit_step)
        device.trace.record(device.sim_clock.now(), "task_end", task=name,
                            path=self._cur_path.get())
        for kind, detail in events:
            device.trace.record(device.sim_clock.now(), kind, **detail)

    def _handle_peripheral_failure(self, name: str, exc: PeripheralError) -> None:
        """Retry a peripheral-failed task; skip it when retries exhaust.

        Mayfly has no ``onFail`` vocabulary (that absence is the paper's
        P3), so the watchdog's only escalation is skipping the task with
        a marked-degraded channel value — its completion is *not*
        counted toward collection rules.
        """
        device = self._device
        policy = self._retry.policy
        attempt = self._retry.record_failure(name)
        if attempt >= policy.max_attempts:
            self._retry.clear(name)
            device.result.watchdog_trips += 1
            device.trace.record(
                device.sim_clock.now(), "watchdog_trip", task=name,
                attempts=attempt, sensor=exc.sensor, fault=exc.fault,
            )
            self._mark_degraded(name)
            # Skip: advance control state without counting the task.
            counts = dict(self._counts.get())
            updates, events = self._plan_advance(counts)
            txn = Transaction(device.nvm, journal=self._journal)
            txn.stage(self._counts.name, counts)
            for cell_name, value in updates:
                txn.stage(cell_name, value)
            txn.commit(spend=self._spend_commit_step,
                   on_step=self._label_commit_step)
            device.trace.record(device.sim_clock.now(), "task_skip",
                                task=name, path=self._cur_path.get(),
                                source="watchdog")
            for kind, detail in events:
                device.trace.record(device.sim_clock.now(), kind, **detail)
            return
        device.result.task_retries += 1
        device.trace.record(
            device.sim_clock.now(), "task_retry", task=name,
            attempt=attempt, sensor=exc.sensor, fault=exc.fault,
        )
        backoff = policy.backoff_s(name, attempt)
        if backoff > 0:
            device.consume(backoff, self.power.overhead_power_w, "runtime")
        if policy.retry_energy_j:
            device.consume_energy(policy.retry_energy_j, "runtime")

    def _mark_degraded(self, name: str) -> None:
        cell_name = channel_cell_name(f"degraded.{name}")
        if cell_name not in self._device.nvm:
            self._device.nvm.alloc(cell_name, initial=False, size_bytes=8)
        self._device.nvm.cell(cell_name).set(True)

    def _spend_commit_step(self) -> None:
        """Pay one journal step; each step is a distinct crash point."""
        self._device.consume(self.power.commit_step_s,
                             self.power.overhead_power_w, "commit")

    def _label_commit_step(self, label: str) -> None:
        """Forward commit-step labels to an attached crash scheduler."""
        scheduler = getattr(self._device, "scheduler", None)
        if scheduler is not None:
            annotate = getattr(scheduler, "annotate", None)
            if annotate is not None:
                annotate(label)

    def _plan_advance(
        self, counts: Dict[str, int]
    ) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Dict[str, Any]]]]:
        """Loop-advancement updates after the current task completes.

        Pure planning; mutates ``counts`` in place when a completed path
        consumes its collection counts (per-path progress).
        """
        path = self.app.path(self._cur_path.get())
        if self._cur_idx.get() + 1 < len(path):
            return [(self._cur_idx.name, self._cur_idx.get() + 1)], []
        events: List[Tuple[str, Dict[str, Any]]] = [
            ("path_complete", {"path": path.number})
        ]
        for task_name in path.task_names:
            counts.pop(task_name, None)
        if path.number < len(self.app.paths):
            return ([(self._cur_path.name, path.number + 1),
                     (self._cur_idx.name, 0)], events)
        return [(self._finished.name, True)], events

    def _restart_path(self) -> None:
        self._device.trace.record(
            self._device.sim_clock.now(), "path_restart", path=self._cur_path.get()
        )
        self._cur_idx.set(0)
