"""Chain-style baseline: property checks inside the application code.

Represents the paper's Figure 2(a) anti-pattern: the developer hand-rolls
checks (sample counts, elapsed time) inside task bodies. There is no
monitor and no runtime checking; the check cost is indistinguishable
from application time — which is exactly the coupling problem P1. Used
by the coupling ablation to contrast against ARTEMIS' separation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.recovery import RecoveryManager
from repro.core.retry import RetryPolicy, RetrySupervisor
from repro.energy.power import PowerModel
from repro.errors import PeripheralError, RuntimeConfigError
from repro.nvm.journal import CommitJournal
from repro.nvm.transaction import Transaction
from repro.taskgraph.app import Application
from repro.taskgraph.context import TaskContext, channel_cell_name

#: An inline check runs inside the task, sees the context, and returns
#: ``None`` (proceed) or one of ``"restart_path"`` / ``"skip_path"`` /
#: ``"skip_task"`` — control flow the developer wires up by hand.
InlineCheck = Callable[[TaskContext], Optional[str]]

_CHECK_RESULTS = (None, "restart_path", "skip_path", "skip_task")


class ChainRuntime:
    """Executes paths with developer-written checks entangled in tasks."""

    TRANSITION_S = 0.40e-3  # bare transition; checks are app code
    CHECK_S = 0.15e-3  # cost of one inline check, charged as *app* time

    def __init__(
        self,
        app: Application,
        checks: Dict[str, InlineCheck],
        device,
        power_model: PowerModel,
        peripherals=None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        for task in checks:
            if not app.has_task(task):
                raise RuntimeConfigError(f"inline check for unknown task {task!r}")
        self.app = app
        self.checks = checks
        self.power = power_model
        self._device = device
        self.peripherals = peripherals
        nvm = device.nvm
        self._retry = RetrySupervisor(nvm, retry_policy or RetryPolicy(),
                                      cell_name="ch.retry.attempts")
        self._retry_cell = nvm.cell(self._retry.cell_name)
        self._cur_path = nvm.alloc("ch.cur_path", 1, 2, progress=True)
        self._cur_idx = nvm.alloc("ch.cur_idx", 0, 2, progress=True)
        self._finished = nvm.alloc("ch.finished", False, 1, progress=True)
        # Trace events owed for a committed-but-interrupted transaction.
        # Staged in the same journaled commit as the control updates, so
        # the record of a route change is exactly as durable as its
        # effect; replayed (once) at boot if the crash swallowed it.
        self._pending_trace = nvm.alloc("ch.pending_trace", [], 2)
        self._journal = CommitJournal(nvm)
        self.recovery = RecoveryManager(nvm, journal=self._journal)
        self.recovery.guard("ch.")
        self.recovery.guard("chan.")
        self.recovery.add_invariant(
            "ch.cur_path in range",
            lambda: 1 <= self._cur_path.get() <= len(app.paths),
            lambda: (self._cur_path.set(1), self._cur_idx.set(0)),
        )
        self.recovery.add_invariant(
            "ch.cur_idx in range",
            lambda: (0 <= self._cur_idx.get()
                     < len(app.path(self._cur_path.get()))),
            lambda: self._cur_idx.set(0),
        )
        self.recovery.add_invariant(
            "ch.retry.attempts is a mapping",
            lambda: isinstance(self._retry_cell.get(), dict),
            lambda: self._retry_cell.set({}),
        )

    @property
    def finished(self) -> bool:
        return self._finished.get()

    @property
    def current_task_name(self) -> str:
        path = self.app.path(self._cur_path.get())
        return path.task_names[self._cur_idx.get()]

    def boot(self, device) -> None:
        """Resolve any interrupted commit before the loop resumes."""
        self._device = device
        self.recovery.on_boot(device)
        pending = self._pending_trace.get()
        if pending:
            # The journal rolled a commit forward across the crash: its
            # route change took durable effect but the volatile trace
            # record was lost. Replay it so the observable action
            # sequence matches the durable state.
            now = device.sim_clock.now()
            for kind, detail in pending:
                device.trace.record(now, kind, replayed=True, **dict(detail))
            self._pending_trace.set([])

    def begin_run(self, device) -> None:
        self._device = device
        self._cur_path.set(1)
        self._cur_idx.set(0)
        self._finished.set(False)

    def loop_iteration(self, device) -> None:
        self._device = device
        if self.finished:
            return
        if self.peripherals is not None:
            self.peripherals.bind(device, sense_s=self.power.sense_s,
                                  sense_power_w=self.power.overhead_power_w)
        name = self.current_task_name
        device.consume(self.TRANSITION_S, self.power.overhead_power_w, "runtime")
        task = self.app.task(name)
        cost = self.power.cost_of(name)
        device.trace.record(device.sim_clock.now(), "task_start", task=name,
                            path=self._cur_path.get())
        if cost.fixed_energy_j:
            device.consume_energy(cost.fixed_energy_j, "app")
        device.consume(cost.duration_s, cost.power_w, "app")
        txn = Transaction(device.nvm, journal=self._journal)
        ctx = TaskContext(name, device.nvm, txn, self.app.sensors, device.now,
                          peripherals=self.peripherals)
        outcome: Optional[str] = None
        check = self.checks.get(name)
        if check is not None:
            # The check is part of the task body: app time, app energy.
            device.consume(self.CHECK_S, self.power.overhead_power_w, "app")
            outcome = check(ctx)
            if outcome not in _CHECK_RESULTS:
                raise RuntimeConfigError(
                    f"inline check for {name!r} returned {outcome!r}"
                )
        if task.body is not None and outcome is None:
            try:
                task.body(ctx)
            except PeripheralError as exc:
                txn.rollback()
                self._handle_peripheral_failure(name, exc)
                return
        # Route *planning* happens before the commit so the control-state
        # updates ride in the same journaled transaction as the channel
        # writes: a crash inside the commit either re-executes the whole
        # task or replays it to completion, never half of each.
        updates, events = self._plan_route(outcome)
        for cell_name, value in updates:
            txn.stage(cell_name, value)
        if self._retry.attempts(name):
            txn.stage(self._retry.cell_name, self._retry.cleared(name))
        owed = ([("task_end", {"task": name, "path": self._cur_path.get()})]
                + [(kind, dict(detail)) for kind, detail in events])
        txn.stage(self._pending_trace.name, owed)
        txn.commit(spend=self._spend_commit_step,
                   on_step=self._label_commit_step)
        # No crash point between the commit's last payment and here, so
        # the events are recorded exactly once: either now, or (after a
        # mid-commit crash that rolled forward) replayed at boot.
        for kind, detail in owed:
            device.trace.record(device.sim_clock.now(), kind, **detail)
        self._pending_trace.set([])

    def _handle_peripheral_failure(self, name: str, exc: PeripheralError) -> None:
        """Retry a peripheral-failed task; skip it when retries exhaust.

        Like the developer-written checks, the recovery code here is
        hand-wired into the runtime (problem P1): the only escalation is
        skipping the task with a marked-degraded channel value.
        """
        device = self._device
        policy = self._retry.policy
        attempt = self._retry.record_failure(name)
        if attempt >= policy.max_attempts:
            self._retry.clear(name)
            device.result.watchdog_trips += 1
            device.trace.record(
                device.sim_clock.now(), "watchdog_trip", task=name,
                attempts=attempt, sensor=exc.sensor, fault=exc.fault,
            )
            self._mark_degraded(name)
            updates, events = self._plan_route("skip_task")
            txn = Transaction(device.nvm, journal=self._journal)
            for cell_name, value in updates:
                txn.stage(cell_name, value)
            owed = ([("task_skip", {"task": name,
                                    "path": self._cur_path.get(),
                                    "source": "watchdog"})]
                    + [(kind, dict(detail)) for kind, detail in events])
            txn.stage(self._pending_trace.name, owed)
            txn.commit(spend=self._spend_commit_step,
                   on_step=self._label_commit_step)
            for kind, detail in owed:
                device.trace.record(device.sim_clock.now(), kind, **detail)
            self._pending_trace.set([])
            return
        device.result.task_retries += 1
        device.trace.record(
            device.sim_clock.now(), "task_retry", task=name,
            attempt=attempt, sensor=exc.sensor, fault=exc.fault,
        )
        backoff = policy.backoff_s(name, attempt)
        if backoff > 0:
            device.consume(backoff, self.power.overhead_power_w, "runtime")
        if policy.retry_energy_j:
            device.consume_energy(policy.retry_energy_j, "runtime")

    def _mark_degraded(self, name: str) -> None:
        cell_name = channel_cell_name(f"degraded.{name}")
        if cell_name not in self._device.nvm:
            self._device.nvm.alloc(cell_name, initial=False, size_bytes=8)
        self._device.nvm.cell(cell_name).set(True)

    def _spend_commit_step(self) -> None:
        """Pay one journal step; each step is a distinct crash point."""
        self._device.consume(self.power.commit_step_s,
                             self.power.overhead_power_w, "commit")

    def _label_commit_step(self, label: str) -> None:
        """Forward commit-step labels to an attached crash scheduler."""
        scheduler = getattr(self._device, "scheduler", None)
        if scheduler is not None:
            annotate = getattr(scheduler, "annotate", None)
            if annotate is not None:
                annotate(label)

    def _plan_route(
        self, outcome: Optional[str]
    ) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Dict[str, Any]]]]:
        """Control-state updates and trace events for this task's outcome.

        Pure planning — nothing durable changes here; the returned
        updates are staged into the task's transaction.
        """
        path_no = self._cur_path.get()
        if outcome == "restart_path":
            return ([(self._cur_idx.name, 0)],
                    [("path_restart", {"path": path_no})])
        if outcome == "skip_path":
            updates, events = self._plan_next_path()
            return updates, [("path_skip", {"path": path_no})] + events
        # None and "skip_task" both advance (the task already ran).
        path = self.app.path(path_no)
        if self._cur_idx.get() + 1 < len(path):
            return [(self._cur_idx.name, self._cur_idx.get() + 1)], []
        updates, events = self._plan_next_path()
        return updates, [("path_complete", {"path": path.number})] + events

    def _plan_next_path(
        self,
    ) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Dict[str, Any]]]]:
        """Updates that move to the next path or finish the run."""
        if self._cur_path.get() < len(self.app.paths):
            return ([(self._cur_path.name, self._cur_path.get() + 1),
                     (self._cur_idx.name, 0)], [])
        return [(self._finished.name, True)], []
