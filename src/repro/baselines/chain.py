"""Chain-style baseline: property checks inside the application code.

Represents the paper's Figure 2(a) anti-pattern: the developer hand-rolls
checks (sample counts, elapsed time) inside task bodies. There is no
monitor and no runtime checking; the check cost is indistinguishable
from application time — which is exactly the coupling problem P1. Used
by the coupling ablation to contrast against ARTEMIS' separation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.energy.power import PowerModel
from repro.errors import RuntimeConfigError
from repro.nvm.transaction import Transaction
from repro.taskgraph.app import Application
from repro.taskgraph.context import TaskContext

#: An inline check runs inside the task, sees the context, and returns
#: ``None`` (proceed) or one of ``"restart_path"`` / ``"skip_path"`` /
#: ``"skip_task"`` — control flow the developer wires up by hand.
InlineCheck = Callable[[TaskContext], Optional[str]]

_CHECK_RESULTS = (None, "restart_path", "skip_path", "skip_task")


class ChainRuntime:
    """Executes paths with developer-written checks entangled in tasks."""

    TRANSITION_S = 0.40e-3  # bare transition; checks are app code
    CHECK_S = 0.15e-3  # cost of one inline check, charged as *app* time

    def __init__(
        self,
        app: Application,
        checks: Dict[str, InlineCheck],
        device,
        power_model: PowerModel,
    ):
        for task in checks:
            if not app.has_task(task):
                raise RuntimeConfigError(f"inline check for unknown task {task!r}")
        self.app = app
        self.checks = checks
        self.power = power_model
        self._device = device
        nvm = device.nvm
        self._cur_path = nvm.alloc("ch.cur_path", 1, 2)
        self._cur_idx = nvm.alloc("ch.cur_idx", 0, 2)
        self._finished = nvm.alloc("ch.finished", False, 1)

    @property
    def finished(self) -> bool:
        return self._finished.get()

    @property
    def current_task_name(self) -> str:
        path = self.app.path(self._cur_path.get())
        return path.task_names[self._cur_idx.get()]

    def boot(self, device) -> None:
        self._device = device

    def begin_run(self, device) -> None:
        self._device = device
        self._cur_path.set(1)
        self._cur_idx.set(0)
        self._finished.set(False)

    def loop_iteration(self, device) -> None:
        self._device = device
        if self.finished:
            return
        name = self.current_task_name
        device.consume(self.TRANSITION_S, self.power.overhead_power_w, "runtime")
        task = self.app.task(name)
        cost = self.power.cost_of(name)
        device.trace.record(device.sim_clock.now(), "task_start", task=name,
                            path=self._cur_path.get())
        if cost.fixed_energy_j:
            device.consume_energy(cost.fixed_energy_j, "app")
        device.consume(cost.duration_s, cost.power_w, "app")
        txn = Transaction(device.nvm)
        ctx = TaskContext(name, device.nvm, txn, self.app.sensors, device.now)
        outcome: Optional[str] = None
        check = self.checks.get(name)
        if check is not None:
            # The check is part of the task body: app time, app energy.
            device.consume(self.CHECK_S, self.power.overhead_power_w, "app")
            outcome = check(ctx)
            if outcome not in _CHECK_RESULTS:
                raise RuntimeConfigError(
                    f"inline check for {name!r} returned {outcome!r}"
                )
        if task.body is not None and outcome is None:
            task.body(ctx)
        txn.commit()
        device.trace.record(device.sim_clock.now(), "task_end", task=name,
                            path=self._cur_path.get())
        self._route(outcome)

    def _route(self, outcome: Optional[str]) -> None:
        if outcome == "restart_path":
            self._device.trace.record(
                self._device.sim_clock.now(), "path_restart", path=self._cur_path.get()
            )
            self._cur_idx.set(0)
            return
        if outcome == "skip_path":
            self._device.trace.record(
                self._device.sim_clock.now(), "path_skip", path=self._cur_path.get()
            )
            self._next_path()
            return
        # None and "skip_task" both advance (the task already ran).
        path = self.app.path(self._cur_path.get())
        if self._cur_idx.get() + 1 < len(path):
            self._cur_idx.set(self._cur_idx.get() + 1)
        else:
            self._device.trace.record(
                self._device.sim_clock.now(), "path_complete", path=path.number
            )
            self._next_path()

    def _next_path(self) -> None:
        if self._cur_path.get() < len(self.app.paths):
            self._cur_path.set(self._cur_path.get() + 1)
            self._cur_idx.set(0)
        else:
            self._finished.set(True)
