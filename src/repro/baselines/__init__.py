"""Baseline systems the paper compares against.

* :mod:`~repro.baselines.mayfly` — Mayfly (SenSys '17): a task-based
  runtime with data-expiration and collection checks *hardcoded in the
  runtime loop* (the paper's Figure 2b coupling). No ``maxTries`` /
  ``maxAttempt``, hence the non-termination behaviour of Figure 12.
* :mod:`~repro.baselines.chain` — a Chain-style runtime where property
  checks live *inside the application tasks* (the Figure 2a coupling);
  used by the coupling/memory ablations.
"""

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import MayflyConfig, MayflyRuntime

__all__ = ["MayflyRuntime", "MayflyConfig", "ChainRuntime"]
