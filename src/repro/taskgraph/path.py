"""Ordered task sequences (paths) within an application."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import RuntimeConfigError


class Path:
    """An ordered sequence of task names executed as a unit.

    Paths are numbered from 1, matching the property language's
    ``Path: N`` references (Figure 5 uses ``Path: 2`` and ``Path: 3``).
    """

    def __init__(self, number: int, task_names: Sequence[str]):
        if number < 1:
            raise RuntimeConfigError("path numbers start at 1")
        if not task_names:
            raise RuntimeConfigError(f"path {number} has no tasks")
        if len(set(task_names)) != len(task_names):
            raise RuntimeConfigError(f"path {number} repeats a task; tasks are unique per path")
        self.number = number
        self.task_names: List[str] = list(task_names)

    def index_of(self, task_name: str) -> int:
        """Position of ``task_name`` in this path (raises if absent)."""
        try:
            return self.task_names.index(task_name)
        except ValueError:
            raise RuntimeConfigError(
                f"task {task_name!r} is not on path {self.number}"
            ) from None

    def __contains__(self, task_name: str) -> bool:
        return task_name in self.task_names

    def __len__(self) -> int:
        return len(self.task_names)

    def __repr__(self) -> str:
        return f"Path({self.number}: {' -> '.join(self.task_names)})"
