"""Atomic task definition."""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence

from repro.errors import RuntimeConfigError

TaskBody = Callable[["TaskContext"], None]  # noqa: F821 - forward ref for docs


class TaskStatus(enum.Enum):
    """Lifecycle of a task within the runtime (paper §4.1.1)."""

    READY = "TASK_READY"
    RUNNING = "TASK_RUNNING"
    FINISHED = "TASK_FINISHED"
    SKIPPED = "TASK_SKIPPED"


class Task:
    """An atomic unit of computation with all-or-nothing semantics.

    Args:
        name: unique task name (referenced by properties and paths).
        body: callable executed with a
            :class:`~repro.taskgraph.context.TaskContext`; its channel
            writes are staged and committed only on successful completion.
            ``None`` means a pure cost-model task (benchmarks that only
            care about time/energy).
        monitored_vars: names of task outputs whose *values* are shipped
            to monitors with the EndTask event — the paper's ``dpData``
            hook (Figure 4 declares ``avgTemp`` on ``calcAvg`` this way).
    """

    def __init__(
        self,
        name: str,
        body: Optional[TaskBody] = None,
        monitored_vars: Sequence[str] = (),
    ):
        if not name or not name.isidentifier():
            raise RuntimeConfigError(f"invalid task name {name!r}")
        self.name = name
        self.body = body
        self.monitored_vars = tuple(monitored_vars)

    def __repr__(self) -> str:
        return f"Task({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Task) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)
