"""Execution context handed to task bodies.

Channels are the task-to-task data mechanism of task-based intermittent
systems (Chain's channels, InK's task buffers). A task reads committed
channel values and stages its own writes; the runtime commits the stage
at the task boundary. Sensors are deterministic functions of simulation
time registered on the application, so runs are reproducible — unless
the runtime installs a :class:`~repro.peripherals.PeripheralSet`, in
which case reads route through its (still deterministic, seeded) fault
models and may raise :class:`~repro.errors.PeripheralError`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.memory import serialized_size_bytes as _serialized_size_bytes
from repro.nvm.transaction import Transaction

SensorFn = Callable[[float], Any]

#: NVM cell-name prefix for channel data.
_CHANNEL_PREFIX = "chan."

#: Channel cells are sized by serialized value but never smaller than a
#: machine word's worth of accounting.
_MIN_CELL_BYTES = 8


def channel_cell_name(key: str) -> str:
    """NVM cell name backing channel ``key``."""
    return _CHANNEL_PREFIX + key


def serialized_size_bytes(value: Any) -> int:
    """Approximate serialized size of a channel value in bytes.

    Sized from the value's ``repr`` (the same canonical form the NVM
    checksums hash), floored at 8 bytes, so memory accounting and wear
    tracking stay truthful for tuples/lists instead of pretending every
    channel is one word.
    """
    return _serialized_size_bytes(value, floor=_MIN_CELL_BYTES)


class TaskContext:
    """What a task body can touch while it runs.

    All writes go through a :class:`~repro.nvm.transaction.Transaction`
    owned by the runtime: nothing becomes durable until the task commits.
    """

    def __init__(
        self,
        task_name: str,
        nvm: NonVolatileMemory,
        txn: Transaction,
        sensors: Mapping[str, SensorFn],
        now: Callable[[], float],
        peripherals: Optional[Any] = None,
    ):
        self.task_name = task_name
        self._nvm = nvm
        self._txn = txn
        self._sensors = sensors
        self._now = now
        self._peripherals = peripherals
        #: values of monitored variables emitted this execution (dpData).
        self.emitted: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def write(self, key: str, value: Any) -> None:
        """Stage a channel write, committed when this task finishes.

        A first write to a new channel does *not* allocate the cell
        here: allocation happens inside the journaled commit, atomically
        with the value, so a crash (or rollback) mid-task leaves no
        durable trace of the write. Growing an existing cell for a
        bigger value stays eager — it is size accounting only.
        """
        cell = channel_cell_name(key)
        if cell in self._nvm:
            self._nvm.grow(cell, serialized_size_bytes(value))
        self._txn.stage(cell, value, create=True)

    def read(self, key: str, default: Any = None) -> Any:
        """Read a channel value (sees this task's own staged writes)."""
        cell = channel_cell_name(key)
        if cell in self._txn:
            value = self._txn.read(cell)
        elif cell in self._nvm:
            value = self._nvm.cell(cell).get()
        else:
            return default
        return default if value is None else value

    def append(self, key: str, value: Any) -> None:
        """Stage appending ``value`` to a list-valued channel."""
        current = list(self.read(key, default=[]))
        current.append(value)
        self.write(key, current)

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def sense(self, sensor: str) -> Any:
        """Read a sensor through the peripheral fault layer.

        With a peripheral set installed the access is charged to the
        ``sense`` energy category and may raise a typed
        :class:`~repro.errors.PeripheralError` (the runtime's retry
        policy handles re-execution). Without one this is a plain,
        infallible sensor-function call.
        """
        if self._peripherals is not None and sensor in self._peripherals:
            return self._peripherals.sense(sensor, self._now())
        try:
            fn = self._sensors[sensor]
        except KeyError:
            raise RuntimeConfigError(
                f"task {self.task_name!r} sampled unknown sensor {sensor!r}"
            ) from None
        return fn(self._now())

    def sample(self, sensor: str) -> Any:
        """Read a sensor; alias of :meth:`sense` so existing task bodies
        become fault-susceptible when a peripheral set is installed."""
        return self.sense(sensor)

    def now(self) -> float:
        """Current persistent-clock time in seconds."""
        return self._now()

    # ------------------------------------------------------------------
    # Monitoring hooks
    # ------------------------------------------------------------------
    def emit(self, var: str, value: Any) -> None:
        """Expose a value to monitors as dependent data (``dpData``).

        The value rides on this task's EndTask event; a ``dpData``
        property with a ``Range`` checks it (Figure 5, line 14).
        """
        self.emitted[var] = value
