"""Execution context handed to task bodies.

Channels are the task-to-task data mechanism of task-based intermittent
systems (Chain's channels, InK's task buffers). A task reads committed
channel values and stages its own writes; the runtime commits the stage
at the task boundary. Sensors are deterministic functions of simulation
time registered on the application, so runs are reproducible.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.errors import RuntimeConfigError
from repro.nvm.memory import NonVolatileMemory
from repro.nvm.transaction import Transaction

SensorFn = Callable[[float], Any]

#: NVM cell-name prefix for channel data.
_CHANNEL_PREFIX = "chan."


def channel_cell_name(key: str) -> str:
    """NVM cell name backing channel ``key``."""
    return _CHANNEL_PREFIX + key


class TaskContext:
    """What a task body can touch while it runs.

    All writes go through a :class:`~repro.nvm.transaction.Transaction`
    owned by the runtime: nothing becomes durable until the task commits.
    """

    def __init__(
        self,
        task_name: str,
        nvm: NonVolatileMemory,
        txn: Transaction,
        sensors: Mapping[str, SensorFn],
        now: Callable[[], float],
    ):
        self.task_name = task_name
        self._nvm = nvm
        self._txn = txn
        self._sensors = sensors
        self._now = now
        #: values of monitored variables emitted this execution (dpData).
        self.emitted: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def write(self, key: str, value: Any) -> None:
        """Stage a channel write, committed when this task finishes."""
        cell = channel_cell_name(key)
        if cell not in self._nvm:
            self._nvm.alloc(cell, initial=None, size_bytes=8)
        self._txn.stage(cell, value)

    def read(self, key: str, default: Any = None) -> Any:
        """Read a channel value (sees this task's own staged writes)."""
        cell = channel_cell_name(key)
        if cell not in self._nvm:
            return default
        value = self._txn.read(cell)
        return default if value is None else value

    def append(self, key: str, value: Any) -> None:
        """Stage appending ``value`` to a list-valued channel."""
        current = list(self.read(key, default=[]))
        current.append(value)
        self.write(key, current)

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def sample(self, sensor: str) -> Any:
        """Read a sensor; sensors are functions of simulation time."""
        try:
            fn = self._sensors[sensor]
        except KeyError:
            raise RuntimeConfigError(
                f"task {self.task_name!r} sampled unknown sensor {sensor!r}"
            ) from None
        return fn(self._now())

    def now(self) -> float:
        """Current persistent-clock time in seconds."""
        return self._now()

    # ------------------------------------------------------------------
    # Monitoring hooks
    # ------------------------------------------------------------------
    def emit(self, var: str, value: Any) -> None:
        """Expose a value to monitors as dependent data (``dpData``).

        The value rides on this task's EndTask event; a ``dpData``
        property with a ``Range`` checks it (Figure 5, line 14).
        """
        self.emitted[var] = value
