"""Task-based application model.

ARTEMIS targets task-based intermittent programs (Chain / InK / Alpaca
style): the computation is decomposed into *atomic tasks* arranged into
*paths* (ordered task sequences). The runtime executes paths in order,
committing each task's outputs to non-volatile memory only when the task
finishes; a power failure mid-task rolls everything back.

Public surface:

* :class:`~repro.taskgraph.task.Task` / :class:`~repro.taskgraph.task.TaskStatus`
* :class:`~repro.taskgraph.path.Path`
* :class:`~repro.taskgraph.app.Application`
* :class:`~repro.taskgraph.context.TaskContext` — what a task body sees
  (staged channel I/O, sensors).
* :class:`~repro.taskgraph.builder.AppBuilder` — fluent construction API
  mirroring the paper's Figure 4 task/path declarations.
"""

from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder
from repro.taskgraph.context import TaskContext
from repro.taskgraph.path import Path
from repro.taskgraph.task import Task, TaskStatus

__all__ = ["Application", "AppBuilder", "TaskContext", "Path", "Task", "TaskStatus"]
