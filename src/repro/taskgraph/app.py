"""Application: the complete task graph a runtime executes."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import RuntimeConfigError
from repro.taskgraph.context import SensorFn
from repro.taskgraph.path import Path
from repro.taskgraph.task import Task


class Application:
    """Tasks plus the paths that order them (paper Figures 4 and 6).

    One *run* of an application executes every path once, in path-number
    order; the looping deployments of the examples simply run it
    repeatedly.
    """

    def __init__(
        self,
        name: str,
        tasks: Sequence[Task],
        paths: Sequence[Path],
        sensors: Optional[Mapping[str, SensorFn]] = None,
    ):
        self.name = name
        self.tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self.tasks:
                raise RuntimeConfigError(f"duplicate task {task.name!r}")
            self.tasks[task.name] = task
        if not self.tasks:
            raise RuntimeConfigError("application has no tasks")

        numbers = [p.number for p in paths]
        if not numbers:
            raise RuntimeConfigError("application has no paths")
        if sorted(numbers) != list(range(1, len(numbers) + 1)):
            raise RuntimeConfigError(f"path numbers must be 1..N, got {sorted(numbers)}")
        self.paths: List[Path] = sorted(paths, key=lambda p: p.number)

        for path in self.paths:
            for task_name in path.task_names:
                if task_name not in self.tasks:
                    raise RuntimeConfigError(
                        f"path {path.number} references unknown task {task_name!r}"
                    )
        self.sensors: Dict[str, SensorFn] = dict(sensors or {})

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def task(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError:
            raise RuntimeConfigError(f"unknown task {name!r}") from None

    def path(self, number: int) -> Path:
        if not 1 <= number <= len(self.paths):
            raise RuntimeConfigError(f"unknown path {number}")
        return self.paths[number - 1]

    def paths_containing(self, task_name: str) -> List[Path]:
        """Paths a task appears on; >1 means the task is a merge point
        and path-scoped properties must name their path explicitly."""
        return [p for p in self.paths if task_name in p]

    def has_task(self, name: str) -> bool:
        return name in self.tasks

    @property
    def task_names(self) -> List[str]:
        return list(self.tasks)

    def __repr__(self) -> str:
        return f"Application({self.name!r}, {len(self.tasks)} tasks, {len(self.paths)} paths)"
