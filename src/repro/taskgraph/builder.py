"""Fluent construction API for applications.

Mirrors the declaration style of the paper's Figure 4::

    app = (
        AppBuilder("health")
        .task("bodyTemp", body=sense_temp)
        .task("calcAvg", body=calc_avg, monitored_vars=["avgTemp"])
        ...
        .path(1, ["bodyTemp", "calcAvg", "heartRate", "send"])
        .sensor("adc_temp", lambda t: 36.5)
        .build()
    )

The builder may also be used as a decorator factory::

    builder = AppBuilder("health")

    @builder.task_fn()
    def bodyTemp(ctx):
        ctx.write("temp", ctx.sample("adc_temp"))
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import RuntimeConfigError
from repro.taskgraph.app import Application
from repro.taskgraph.context import SensorFn
from repro.taskgraph.path import Path
from repro.taskgraph.task import Task, TaskBody


class AppBuilder:
    """Incrementally assembles an :class:`Application`."""

    def __init__(self, name: str):
        self._name = name
        self._tasks: List[Task] = []
        self._paths: List[Path] = []
        self._sensors: dict = {}
        self._built = False

    def task(
        self,
        name: str,
        body: Optional[TaskBody] = None,
        monitored_vars: Sequence[str] = (),
    ) -> "AppBuilder":
        """Declare a task; order of declaration is irrelevant."""
        self._tasks.append(Task(name, body=body, monitored_vars=monitored_vars))
        return self

    def task_fn(
        self, name: Optional[str] = None, monitored_vars: Sequence[str] = ()
    ) -> Callable[[TaskBody], TaskBody]:
        """Decorator form of :meth:`task`; task name defaults to the
        function name."""

        def decorate(fn: TaskBody) -> TaskBody:
            self.task(name or fn.__name__, body=fn, monitored_vars=monitored_vars)
            return fn

        return decorate

    def path(self, number: int, task_names: Sequence[str]) -> "AppBuilder":
        """Declare path ``number`` as the given task sequence."""
        self._paths.append(Path(number, task_names))
        return self

    def sensor(self, name: str, fn: SensorFn) -> "AppBuilder":
        """Register a sensor as a deterministic function of sim time."""
        self._sensors[name] = fn
        return self

    def build(self) -> Application:
        if self._built:
            raise RuntimeConfigError("builder already consumed")
        self._built = True
        return Application(self._name, self._tasks, self._paths, self._sensors)
