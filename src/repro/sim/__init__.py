"""Intermittent-device simulator.

Replaces the paper's MSP430FR5994 + Powercast testbed: a
:class:`~repro.sim.device.Device` executes a runtime, charging it time
and energy per task, and kills it with a
:class:`~repro.errors.PowerFailure` the instant the capacitor hits the
brown-out threshold; after the ambient source recharges the capacitor
(the *charging time*), the runtime is rebooted and continues from NVM.
"""

from repro.sim.analysis import (
    action_summary,
    inter_task_delays,
    path_attempts,
    render_timeline,
    task_statistics,
)
from repro.sim.device import Device
from repro.sim.experiments import Sweep, SweepPointError, format_rows, pivot
from repro.sim.pool import ParallelSweep, ResultCache, run_sweep
from repro.sim.result import RunResult
from repro.sim.tracer import Tracer, TraceEvent

__all__ = [
    "Device",
    "RunResult",
    "Tracer",
    "TraceEvent",
    "Sweep",
    "SweepPointError",
    "ParallelSweep",
    "ResultCache",
    "run_sweep",
    "format_rows",
    "pivot",
    "task_statistics",
    "action_summary",
    "inter_task_delays",
    "path_attempts",
    "render_timeline",
]
