"""Aggregate outcome of a simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Consumption categories the device accounts separately; app/runtime/
#: monitor map to the stacked components of Figures 14/15 (application
#: vs runtime vs monitor overhead), ``commit`` is the journaled
#: two-phase commit's per-step cost, ``sense`` is peripheral access
#: time charged by the sensor fault subsystem, and ``radio`` is wireless
#: airtime — both the §7 remote-monitor round trips and the fleet OTA
#: transport charge it, so the ablation and the update subsystem agree
#: on radio cost.
CATEGORIES = ("app", "runtime", "monitor", "commit", "sense", "radio")


@dataclass
class RunResult:
    """What happened during one :meth:`Device.run`.

    Attributes:
        completed: the application run finished (False = the paper's
            *non-termination* outcome, e.g. Mayfly at long charging
            delays in Figure 12).
        total_time_s: wall time from start to completion/abort,
            including off-time spent charging.
        on_time_s: time the device was powered and executing.
        charge_time_s: time spent dark waiting for the capacitor.
        busy_time_s: per-category MCU-busy seconds
            (app/runtime/monitor/commit).
        energy_j: per-category consumed joules.
        reboots: number of power-failure reboots.
        runs_completed: application iterations completed (loop mode).
        torn_commits: boots that found a *pending* commit journal and
            rolled it back (the crash hit before the commit point).
        journal_replays: boots that found a *committed* journal and
            rolled it forward to completion.
        corruptions_detected: checksum mismatches found at boot —
            corrupted cells plus unreplayable corrupt journals.
        corruptions_repaired: corrupted cells repaired (reset to their
            initial value and/or their owning component re-initialised).
        invariant_repairs: runtime-state invariant violations repaired
            at boot (out-of-range indices, illegal status, bad
            timestamps).
        monitor_resets: monitor machines reset by boot-time recovery
            because their persisted state was not a legal state.
        sensor_faults: peripheral fault-model activations (both raising
            faults like timeouts/dropouts and silent ones like
            stuck-at/glitch perturbations).
        task_retries: task re-executions triggered by
            :class:`~repro.errors.PeripheralError` under the retry
            policy (excludes the watchdog escalation itself).
        watchdog_trips: livelock-watchdog escalations after a task
            exhausted its retry budget (attempt counters live in NVM,
            so storms spanning reboots still trip).
        monitors_shed: monitor machines disabled by the degradation
            controller at the low-energy watermark.
        monitors_restored: previously shed machines re-enabled once
            stored energy recovered past the high watermark.
        predictive_sheds: the subset of ``monitors_shed`` decided by a
            forecast at a path boundary (anticipatory, ahead of the
            brownout) rather than by the reactive SoC watermark.
    """

    completed: bool = False
    total_time_s: float = 0.0
    on_time_s: float = 0.0
    charge_time_s: float = 0.0
    busy_time_s: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    energy_j: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    reboots: int = 0
    runs_completed: int = 0
    torn_commits: int = 0
    journal_replays: int = 0
    corruptions_detected: int = 0
    corruptions_repaired: int = 0
    invariant_repairs: int = 0
    monitor_resets: int = 0
    sensor_faults: int = 0
    task_retries: int = 0
    watchdog_trips: int = 0
    monitors_shed: int = 0
    monitors_restored: int = 0
    predictive_sheds: int = 0

    @property
    def app_time_s(self) -> float:
        return self.busy_time_s["app"]

    @property
    def runtime_overhead_s(self) -> float:
        return self.busy_time_s["runtime"]

    @property
    def monitor_overhead_s(self) -> float:
        return self.busy_time_s["monitor"]

    @property
    def commit_overhead_s(self) -> float:
        """MCU time spent in journaled commit steps."""
        return self.busy_time_s["commit"]

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def overhead_fraction(self) -> float:
        """Share of busy time spent outside application code."""
        busy = sum(self.busy_time_s.values())
        if busy == 0:
            return 0.0
        overhead = (self.runtime_overhead_s + self.monitor_overhead_s
                    + self.commit_overhead_s)
        return overhead / busy

    @property
    def recoveries(self) -> int:
        """Total boot-time recovery interventions of any kind."""
        return (self.torn_commits + self.journal_replays
                + self.corruptions_detected + self.invariant_repairs
                + self.monitor_resets)

    def summary(self) -> str:
        state = "completed" if self.completed else "DID NOT FINISH"
        text = (
            f"{state}: total={self.total_time_s:.2f}s "
            f"(on={self.on_time_s:.2f}s charge={self.charge_time_s:.2f}s) "
            f"app={self.app_time_s:.2f}s rt={self.runtime_overhead_s * 1e3:.2f}ms "
            f"mon={self.monitor_overhead_s * 1e3:.2f}ms "
            f"energy={self.total_energy_j * 1e3:.2f}mJ reboots={self.reboots}"
        )
        if self.recoveries:
            text += (
                f" recov={self.recoveries}"
                f" (torn={self.torn_commits} replay={self.journal_replays}"
                f" corrupt={self.corruptions_detected}"
                f" invariant={self.invariant_repairs}"
                f" monreset={self.monitor_resets})"
            )
        robustness = (self.sensor_faults + self.task_retries
                      + self.watchdog_trips + self.monitors_shed
                      + self.monitors_restored)
        if robustness:
            text += (
                f" faults={self.sensor_faults} retries={self.task_retries}"
                f" watchdog={self.watchdog_trips}"
                f" shed={self.monitors_shed}/{self.monitors_restored}"
            )
        return text
