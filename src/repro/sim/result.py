"""Aggregate outcome of a simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Consumption categories the device accounts separately; these map to
#: the stacked components of Figures 14/15 (application vs runtime vs
#: monitor overhead).
CATEGORIES = ("app", "runtime", "monitor")


@dataclass
class RunResult:
    """What happened during one :meth:`Device.run`.

    Attributes:
        completed: the application run finished (False = the paper's
            *non-termination* outcome, e.g. Mayfly at long charging
            delays in Figure 12).
        total_time_s: wall time from start to completion/abort,
            including off-time spent charging.
        on_time_s: time the device was powered and executing.
        charge_time_s: time spent dark waiting for the capacitor.
        busy_time_s: per-category MCU-busy seconds (app/runtime/monitor).
        energy_j: per-category consumed joules.
        reboots: number of power-failure reboots.
        runs_completed: application iterations completed (loop mode).
    """

    completed: bool = False
    total_time_s: float = 0.0
    on_time_s: float = 0.0
    charge_time_s: float = 0.0
    busy_time_s: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    energy_j: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    reboots: int = 0
    runs_completed: int = 0

    @property
    def app_time_s(self) -> float:
        return self.busy_time_s["app"]

    @property
    def runtime_overhead_s(self) -> float:
        return self.busy_time_s["runtime"]

    @property
    def monitor_overhead_s(self) -> float:
        return self.busy_time_s["monitor"]

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def overhead_fraction(self) -> float:
        """Share of busy time spent outside application code."""
        busy = sum(self.busy_time_s.values())
        if busy == 0:
            return 0.0
        return (self.runtime_overhead_s + self.monitor_overhead_s) / busy

    def summary(self) -> str:
        state = "completed" if self.completed else "DID NOT FINISH"
        return (
            f"{state}: total={self.total_time_s:.2f}s "
            f"(on={self.on_time_s:.2f}s charge={self.charge_time_s:.2f}s) "
            f"app={self.app_time_s:.2f}s rt={self.runtime_overhead_s * 1e3:.2f}ms "
            f"mon={self.monitor_overhead_s * 1e3:.2f}ms "
            f"energy={self.total_energy_j * 1e3:.2f}mJ reboots={self.reboots}"
        )
