"""Parallel sweep execution: persistent worker pool + result cache.

The figure-reproduction sweeps are embarrassingly parallel: every grid
point builds a fresh device + runtime and runs it to completion with no
shared state. :func:`run_sweep` shards a
:class:`~repro.sim.experiments.Sweep` grid across worker processes
while keeping the serial contract intact:

* **Determinism** — each point is executed by exactly one worker via the
  same ``Sweep.run_point`` code path as a serial run, and rows are
  reassembled in grid order, so the resulting table is identical to
  ``sweep.run()`` (simulations are deterministic functions of their
  point; randomness enters only through explicit ``seed`` factors).
* **Error attribution** — a failure in a worker comes back as a
  :class:`~repro.sim.experiments.SweepPointError` naming the offending
  point's factor values, exactly as it would serially.
* **Caching** — an optional :class:`ResultCache` keyed by a fingerprint
  of the sweep's *code* (build/metric bytecode and closures, the
  package version, and a source-tree stamp) plus the point's factor
  values. Editing any source file, changing a closure constant, or
  moving a factor level all change the key, so stale rows can never be
  replayed; re-running an unchanged sweep is pure cache hits.

Two execution backends share that contract:

* :class:`PersistentPool` — the default for *portable* (picklable)
  work. Workers are forked **once** and kept alive across calls; they
  self-schedule chunks of work from a shared task queue (chunked
  work-stealing: an idle worker pulls the next chunk, so a slow chunk
  never stalls the rest), return fixed-layout numeric rows through a
  shared-memory table (:class:`SharedRowTable`) instead of pickling
  them through a pipe, and are detected + re-forked if they die
  mid-chunk (the dead worker's claimed chunks are re-queued; chunks
  that keep killing workers fail after ``max_chunk_retries``). This is
  the execution backend of the fleet control plane
  (:mod:`repro.fleet.control`) and fixes the fork-per-call overhead
  that made small sharded sweeps *slower* than serial runs.
* **Legacy fork-per-call pool** — the fallback for sweeps whose
  ``build``/``metrics`` callables are closures (unpicklable): the sweep
  object is published in a module global before a throwaway pool forks,
  and workers receive only point indices. Each call pays the full fork
  + teardown cost; kept for compatibility and as the benchmark
  reference the persistent pool is measured against
  (``parallel_speedup`` in ``benchmarks/regression.py``).

On platforms without ``fork`` both degrade to in-process serial
execution — same table, no parallelism.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import os
import pickle
import struct
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import repro
from repro.errors import ReproError
from repro.sim.experiments import Sweep, SweepPointError

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Cache format version; bump to invalidate every existing entry.
_CACHE_FORMAT = 1


# ---------------------------------------------------------------------------
# Fingerprinting: what makes a cached row reusable
# ---------------------------------------------------------------------------


def _update_callable(h: "hashlib._Hash", fn: Any, depth: int = 0) -> None:
    """Mix a callable's behaviour into the hash.

    Covers the compiled bytecode, constants, names, defaults, and —
    recursively — closure cell contents, so two lambdas that differ only
    in a captured constant fingerprint differently. Objects without code
    (builtins, callables implementing ``__call__``) fall back to their
    repr, which at minimum distinguishes their type.
    """
    if depth > 4:  # cycle guard for pathological closure graphs
        h.update(b"<depth>")
        return
    code = getattr(fn, "__code__", None)
    if code is None:
        call = getattr(fn, "__call__", None)
        inner = getattr(call, "__func__", None)
        if inner is not None and getattr(inner, "__code__", None) is not None:
            _update_callable(h, inner, depth + 1)
        else:
            h.update(repr(fn).encode("utf-8", "backslashreplace"))
        return
    h.update(code.co_code)
    h.update(repr(code.co_consts).encode("utf-8", "backslashreplace"))
    h.update(repr(code.co_names).encode("utf-8", "backslashreplace"))
    h.update(repr(getattr(fn, "__defaults__", None)).encode(
        "utf-8", "backslashreplace"))
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell
            h.update(b"<empty>")
            continue
        if callable(contents):
            _update_callable(h, contents, depth + 1)
        else:
            h.update(repr(contents).encode("utf-8", "backslashreplace"))


def _source_tree_stamp() -> str:
    """Digest of the package source tree (path, size, mtime per file).

    Any edit under ``repro``'s package directory changes the stamp and
    therefore every cache key — coarse, but it guarantees a cached row
    can never outlive the code that produced it.
    """
    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        try:
            stat = path.stat()
        except OSError:
            continue
        rel = path.relative_to(root).as_posix()
        h.update(f"{rel}:{stat.st_size}:{stat.st_mtime_ns};".encode())
    return h.hexdigest()


def sweep_fingerprint(sweep: Sweep) -> str:
    """Stable fingerprint of everything that determines a sweep's rows
    besides the grid point itself: package version, source tree, the
    build and metric callables, and the run budget."""
    h = hashlib.sha256()
    h.update(f"format={_CACHE_FORMAT};".encode())
    h.update(f"version={getattr(repro, '__version__', '?')};".encode())
    h.update(_source_tree_stamp().encode())
    _update_callable(h, sweep.build)
    for name in sorted(sweep.metrics):
        h.update(name.encode("utf-8", "backslashreplace"))
        _update_callable(h, sweep.metrics[name])
    h.update(json.dumps(
        {"runs": sweep.runs, "max_time_s": sweep.max_time_s,
         "max_reboots": sweep.max_reboots,
         # Batched sweeps carry their struct-of-arrays layout token;
         # a layout or dtype change must invalidate every cached row.
         "batch_layout": getattr(sweep, "batch_layout", None)},
        sort_keys=True,
    ).encode())
    return h.hexdigest()


def _point_token(point: Dict[str, Any]) -> str:
    """Canonical JSON form of a grid point (sorted keys, stable reprs)."""
    try:
        return json.dumps(point, sort_keys=True)
    except (TypeError, ValueError):
        # Non-JSON factor levels (objects, tuples): fall back to repr,
        # which is stable for the value types sweeps actually use.
        return repr(sorted((k, repr(v)) for k, v in point.items()))


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed store of finished sweep rows.

    Layout: ``<root>/<key[:2]>/<key>.json``, one row per file, written
    atomically (temp file + rename) so a killed sweep never leaves a
    torn entry. Only rows that survive a JSON round-trip unchanged are
    cached — anything else silently stays uncached rather than coming
    back subtly different (e.g. tuples as lists).
    """

    def __init__(self, root: Union[str, os.PathLike] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, fingerprint: str, point: Dict[str, Any]) -> str:
        """Cache key of one grid point under one sweep fingerprint."""
        h = hashlib.sha256()
        h.update(fingerprint.encode())
        h.update(_point_token(point).encode("utf-8", "backslashreplace"))
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached row for ``key``, or ``None`` (counts hit/miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        row = doc.get("row") if isinstance(doc, dict) else None
        if not isinstance(row, dict):
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, key: str, row: Dict[str, Any]) -> bool:
        """Store a row; returns False (and stores nothing) if the row
        does not round-trip through JSON byte-identically."""
        try:
            encoded = json.dumps({"format": _CACHE_FORMAT, "row": row})
            if json.loads(encoded)["row"] != row:
                return False
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(encoded, encoding="utf-8")
        os.replace(tmp, path)
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _normalize_cache(cache: Any) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    raise ReproError(f"cannot use {cache!r} as a result cache")


# ---------------------------------------------------------------------------
# Shared-memory result tables
# ---------------------------------------------------------------------------


class SharedRowTable:
    """Fixed-layout float64 result table in POSIX shared memory.

    One row of ``n_fields`` doubles per work item. Workers write rows
    in place (``struct.pack_into`` at their item's slot); the parent
    reads them back without any pickling or pipe traffic. Falls back to
    ``None`` (queue transport) when :mod:`multiprocessing.shared_memory`
    is unavailable.
    """

    def __init__(self, n_rows: int, n_fields: int):
        from multiprocessing import shared_memory

        self.n_rows = n_rows
        self.n_fields = n_fields
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, n_rows * n_fields * 8))
        self.name = self._shm.name

    @staticmethod
    def create(n_rows: int, n_fields: int) -> Optional["SharedRowTable"]:
        if n_rows <= 0 or n_fields <= 0:
            return None
        try:
            return SharedRowTable(n_rows, n_fields)
        except Exception:
            return None

    def read_row(self, slot: int) -> Tuple[float, ...]:
        return struct.unpack_from(f"{self.n_fields}d", self._shm.buf,
                                  slot * self.n_fields * 8)

    def destroy(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except Exception:
            pass

    @staticmethod
    def write_remote(name: str, n_fields: int, slot: int,
                     values: Sequence[float]) -> None:
        """Worker-side write into the parent's table (attach by name)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            struct.pack_into(f"{n_fields}d", shm.buf, slot * n_fields * 8,
                             *values)
        finally:
            shm.close()
            # Attaching registered the segment with this process's
            # resource tracker; the parent owns the unlink, so drop the
            # registration to avoid spurious leak warnings at exit.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass


# ---------------------------------------------------------------------------
# Persistent worker pool (chunked work-stealing)
# ---------------------------------------------------------------------------


class PoolError(ReproError):
    """The persistent pool could not complete a run."""


class PoolItemError:
    """Per-item failure returned in place of a result under
    :meth:`PersistentPool.run`'s ``return_errors`` mode.

    Carries the worker-side verdict so the caller can decide to retry
    the item (the control plane re-runs it inline) or raise.
    """

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload: Any):
        self.tag = tag
        self.payload = payload

    def to_exception(self, item: Any) -> Exception:
        if self.tag == "errsweep":
            stage, point, cause = self.payload
            return SweepPointError(stage, point, cause)
        return PoolError(f"task failed for item {item!r}: {self.payload}")

    def __repr__(self) -> str:
        return f"PoolItemError({self.tag!r}, {self.payload!r})"


def _pool_worker(task_q, result_q) -> None:
    """Worker loop: pull chunks from the shared queue until ``stop``.

    Each chunk message carries its own pickled context (small — a task
    descriptor, not the work), so a worker forked at pool creation can
    execute work that was defined afterwards. Per-item failures come
    back as verdicts; only a hard crash (signal, ``os._exit``) kills
    the worker, and the parent detects that and re-queues the chunk.
    """
    ctx_cache: Dict[bytes, Any] = {}
    pid = os.getpid()
    while True:
        msg = task_q.get()
        if msg[0] == "stop":
            return
        _, chunk_id, ctx_digest, ctx_bytes, pairs, shm_name, n_fields = msg
        result_q.put(("claim", chunk_id, pid))
        try:
            task = ctx_cache.get(ctx_digest)
            if task is None:
                task = pickle.loads(ctx_bytes)
                ctx_cache[ctx_digest] = task
        except BaseException as exc:
            result_q.put(("chunkerr", chunk_id, pid, repr(exc)))
            continue
        out: List[Tuple[Any, ...]] = []
        for slot, item in pairs:
            try:
                value = task(item)
            except SweepPointError as exc:
                out.append(("errsweep", slot,
                            (exc.stage, exc.point, exc.cause)))
                continue
            except BaseException as exc:
                out.append(("err", slot, repr(exc)))
                continue
            written = False
            if shm_name is not None:
                encode = getattr(task, "encode_row", None)
                if encode is not None:
                    try:
                        SharedRowTable.write_remote(shm_name, n_fields, slot,
                                                    encode(value))
                        written = True
                    except Exception:
                        written = False
            out.append(("okshm", slot, None) if written
                       else ("ok", slot, value))
        result_q.put(("done", chunk_id, pid, out))


class PersistentPool:
    """Long-lived fork pool with chunked work-stealing.

    Workers are forked once (lazily, on first :meth:`run`) and reused
    across calls — the fix for the fork-per-call overhead that made
    sharded sweeps slower than serial runs on small grids. Work arrives
    as (picklable) *task contexts* applied to picklable items:

    >>> pool = PersistentPool(jobs=4)
    >>> rows = pool.run(some_module_level_callable, [0, 1, 2, 3])

    Scheduling is self-balancing: the items are split into
    ``~4 x jobs`` chunks pushed onto one shared queue, and each idle
    worker steals the next chunk, so a slow chunk delays only the
    worker that claimed it. Results return through a shared-memory
    row table when the task provides ``encode_row``/``decode_row``
    (fixed float64 layout, no pickling), otherwise through the result
    queue. A worker that dies mid-chunk is detected by liveness
    polling; its claimed chunks are re-queued and a replacement is
    forked (``restarts`` counts these). A chunk that keeps killing
    workers fails the run after ``max_chunk_retries`` attempts instead
    of looping forever.
    """

    def __init__(self, jobs: int, restart: bool = True,
                 max_chunk_retries: int = 3):
        if jobs < 1:
            raise PoolError("jobs must be >= 1")
        self.jobs = jobs
        self.restart = restart
        self.max_chunk_retries = max_chunk_retries
        self.forks = 0
        self.restarts = 0
        self.chunks_dispatched = 0
        self._ctx = multiprocessing.get_context("fork")
        self._task_q = None
        self._result_q = None
        self._workers: List[Any] = []
        self._chunk_seq = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._closed:
            raise PoolError("pool is closed")
        if self._task_q is None:
            self._task_q = self._ctx.Queue()
            # Results travel over a SimpleQueue on purpose: its put()
            # is a synchronous, lock-protected pipe write, so a worker
            # that hard-crashes right after reporting cannot lose the
            # message in a feeder-thread buffer the way mp.Queue does —
            # the claim/done protocol the death detector relies on
            # would otherwise be unreliable.
            self._result_q = self._ctx.SimpleQueue()
        self._workers = [w for w in self._workers if w.is_alive()]
        while len(self._workers) < self.jobs:
            self._spawn()

    def _spawn(self) -> None:
        worker = self._ctx.Process(
            target=_pool_worker, args=(self._task_q, self._result_q),
            daemon=True)
        worker.start()
        self._workers.append(worker)
        self.forks += 1

    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.is_alive())

    def close(self) -> None:
        """Stop the workers and drop the queues (idempotent)."""
        with self._lock:
            if self._task_q is not None:
                for _ in self._workers:
                    try:
                        self._task_q.put(("stop",))
                    except Exception:
                        pass
            deadline = time.monotonic() + 2.0
            for worker in self._workers:
                worker.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.is_alive():
                    worker.terminate()
            if self._task_q is not None:
                self._task_q.close()
                self._task_q.cancel_join_thread()
            if self._result_q is not None:
                self._result_q.close()
            self._workers = []
            self._task_q = self._result_q = None
            self._closed = True

    # -- execution ---------------------------------------------------------
    def run(self, task: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: Optional[int] = None,
            timeout: Optional[float] = None,
            on_result: Optional[Callable[[int, Any], None]] = None,
            return_errors: bool = False) -> List[Any]:
        """Apply ``task`` to every item; results in item order.

        ``task`` must be picklable (a module-level callable or a
        picklable instance with ``__call__``). Per-item exceptions
        re-raise in the parent after the run drains (first item order
        wins); :class:`~repro.sim.experiments.SweepPointError` survives
        with its attribution intact. ``on_result(index, value)`` fires
        in the parent as each result lands (arrival order), which is
        what the control plane's streaming ingestion hooks into. With
        ``return_errors=True`` failed items come back as
        :class:`PoolItemError` placeholders instead of aborting the run
        (``on_result`` never fires for them).
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            return self._run_locked(task, items, chunk_size, timeout,
                                    on_result, return_errors)

    def _run_locked(self, task, items, chunk_size, timeout, on_result,
                    return_errors=False):
        self._ensure_workers()
        ctx_bytes = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        ctx_digest = hashlib.sha256(ctx_bytes).digest()
        n_fields = int(getattr(task, "shm_row_size", 0) or 0)
        table = (SharedRowTable.create(len(items), n_fields)
                 if n_fields > 0 else None)
        if chunk_size is None:
            chunk_size = max(1, -(-len(items) // (self.jobs * 4)))
        chunks: Dict[int, List[Tuple[int, Any]]] = {}
        for start in range(0, len(items), chunk_size):
            self._chunk_seq += 1
            chunks[self._chunk_seq] = [
                (slot, items[slot])
                for slot in range(start, min(start + chunk_size, len(items)))
            ]
        try:
            return self._collect(task, items, chunks, ctx_digest, ctx_bytes,
                                 table, n_fields, timeout, on_result,
                                 return_errors)
        finally:
            if table is not None:
                table.destroy()

    def _post(self, chunk_id, pairs, ctx_digest, ctx_bytes, table, n_fields):
        self._task_q.put(("chunk", chunk_id, ctx_digest, ctx_bytes, pairs,
                          table.name if table is not None else None, n_fields))
        self.chunks_dispatched += 1

    def _collect(self, task, items, chunks, ctx_digest, ctx_bytes, table,
                 n_fields, timeout, on_result, return_errors=False):
        results: List[Any] = [None] * len(items)
        done_slots = [False] * len(items)
        errors: Dict[int, Tuple[str, Any]] = {}
        outstanding = dict(chunks)
        claimed: Dict[int, int] = {}
        attempts: Dict[int, int] = {c: 1 for c in chunks}
        shm_slots: List[int] = []
        deadline = None if timeout is None else time.monotonic() + timeout
        for chunk_id, pairs in chunks.items():
            self._post(chunk_id, pairs, ctx_digest, ctx_bytes, table,
                       n_fields)
        while outstanding:
            if deadline is not None and time.monotonic() > deadline:
                raise PoolError(
                    f"pool run timed out with {len(outstanding)} chunks "
                    f"outstanding")
            if not self._result_q._reader.poll(0.05):
                self._reap_dead(outstanding, claimed, attempts, ctx_digest,
                                ctx_bytes, table, n_fields)
                continue
            msg = self._result_q.get()
            kind = msg[0]
            if kind == "claim":
                _, chunk_id, pid = msg
                claimed[chunk_id] = pid
            elif kind == "chunkerr":
                _, chunk_id, pid, cause = msg
                raise PoolError(f"worker {pid} could not load the task "
                                f"context: {cause}")
            elif kind == "done":
                _, chunk_id, pid, out = msg
                if chunk_id not in outstanding:
                    continue  # duplicate after a conservative re-queue
                del outstanding[chunk_id]
                claimed.pop(chunk_id, None)
                for verdict in out:
                    tag, slot, payload = verdict
                    if done_slots[slot]:
                        continue
                    done_slots[slot] = True
                    if tag == "ok":
                        results[slot] = payload
                    elif tag == "okshm":
                        shm_slots.append(slot)
                    else:
                        errors[slot] = (tag, payload)
                    if on_result is not None and tag in ("ok", "okshm"):
                        value = results[slot]
                        if tag == "okshm":
                            value = task.decode_row(table.read_row(slot))
                            results[slot] = value
                        on_result(slot, value)
        for slot in shm_slots:
            if results[slot] is None:
                results[slot] = task.decode_row(table.read_row(slot))
        if errors:
            if return_errors:
                for slot, (tag, payload) in errors.items():
                    results[slot] = PoolItemError(tag, payload)
            else:
                slot = min(errors)
                tag, payload = errors[slot]
                if tag == "errsweep":
                    stage, point, cause = payload
                    raise SweepPointError(stage, point, cause)
                raise PoolError(f"task failed for item {items[slot]!r}: "
                                f"{payload}")
        return results

    def _reap_dead(self, outstanding, claimed, attempts, ctx_digest,
                   ctx_bytes, table, n_fields) -> None:
        """Re-queue chunks claimed by dead workers; fork replacements."""
        dead = [w for w in self._workers if not w.is_alive()]
        if not dead:
            return
        dead_pids = {w.pid for w in dead}
        self._workers = [w for w in self._workers if w.is_alive()]
        if not self.restart and not self._workers:
            raise PoolError("all pool workers died and restart is disabled")
        lost = [cid for cid, pid in claimed.items()
                if pid in dead_pids and cid in outstanding]
        for chunk_id in lost:
            attempts[chunk_id] += 1
            if attempts[chunk_id] > self.max_chunk_retries:
                raise PoolError(
                    f"chunk {chunk_id} crashed its worker "
                    f"{self.max_chunk_retries} times; giving up")
            claimed.pop(chunk_id, None)
            self._post(chunk_id, outstanding[chunk_id], ctx_digest,
                       ctx_bytes, table, n_fields)
        if self.restart:
            while len(self._workers) < self.jobs:
                self._spawn()
                self.restarts += 1


#: Shared persistent pools, one per worker count; reused across sweeps,
#: fleet waves, and benchmark trials so the fork cost is paid once.
_POOLS: Dict[int, PersistentPool] = {}


def get_pool(jobs: int) -> PersistentPool:
    """The shared :class:`PersistentPool` for ``jobs`` workers."""
    pool = _POOLS.get(jobs)
    if pool is None or pool._closed:
        pool = PersistentPool(jobs)
        _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Close every shared pool (atexit hook; also handy in tests)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Sweep execution strategies
# ---------------------------------------------------------------------------

#: ``(sweep, points)`` published for forked workers; the callables
#: inside travel by address-space inheritance, not pickling.
_ACTIVE_SWEEP: Optional[Tuple[Sweep, List[Dict[str, Any]]]] = None


def _run_index(idx: int) -> Tuple[Any, ...]:
    """Worker entry: run one grid point, return a picklable verdict."""
    sweep, points = _ACTIVE_SWEEP
    try:
        return ("ok", idx, sweep.run_point(points[idx]))
    except SweepPointError as exc:
        return ("err", idx, exc.stage, exc.point, exc.cause)
    except BaseException as exc:  # never let a worker die silently
        return ("err", idx, "run", points[idx], repr(exc))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _SweepTask:
    """Picklable task context running one sweep's grid points by index.

    Only sweeps whose ``build``/``metrics`` are themselves picklable
    (module-level callables, no closures) can travel this way; the
    pickle probe in :func:`_execute_points` decides per sweep.
    """

    def __init__(self, sweep: Sweep):
        self.sweep = sweep
        self._points: Optional[List[Dict[str, Any]]] = None

    def __call__(self, idx: int) -> Dict[str, Any]:
        if self._points is None:
            self._points = self.sweep.points()
        return self.sweep.run_point(self._points[idx])

    def __getstate__(self):
        return {"sweep": self.sweep}

    def __setstate__(self, state):
        self.sweep = state["sweep"]
        self._points = None


def _execute_fork(sweep: Sweep, points: List[Dict[str, Any]],
                  pending: Sequence[int], jobs: int) -> List[Tuple[Any, ...]]:
    """Legacy strategy: fork a throwaway pool for this one call."""
    global _ACTIVE_SWEEP
    _ACTIVE_SWEEP = (sweep, points)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            return list(pool.imap(_run_index, pending))
    finally:
        _ACTIVE_SWEEP = None


def _execute_points(sweep: Sweep, points: List[Dict[str, Any]],
                    pending: Sequence[int], jobs: int,
                    strategy: str = "auto") -> List[Tuple[Any, ...]]:
    """Run the pending point indices under the selected strategy.

    ``auto`` prefers the persistent pool when the sweep is portable
    (picklable), falling back to the legacy fork-per-call pool, then to
    serial execution when ``fork`` is unavailable.
    """
    if strategy not in ("auto", "persistent", "fork", "serial"):
        raise ReproError(f"unknown pool strategy {strategy!r}")
    if (strategy == "serial" or jobs <= 1 or len(pending) <= 1
            or not _fork_available()):
        if strategy == "persistent" and not _fork_available():
            raise PoolError("persistent pool needs the fork start method")
        return [_run_index_serial(sweep, points, i) for i in pending]
    if strategy in ("auto", "persistent"):
        task = _SweepTask(sweep)
        try:
            pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
            portable = True
        except Exception:
            portable = False
        if portable:
            pool = get_pool(jobs)
            verdicts: List[Tuple[Any, ...]] = []
            try:
                rows = pool.run(task, list(pending))
            except SweepPointError as exc:
                return [("err", -1, exc.stage, exc.point, exc.cause)]
            for idx, row in zip(pending, rows):
                verdicts.append(("ok", idx, row))
            return verdicts
        if strategy == "persistent":
            raise PoolError(
                "sweep is not portable (closures in build/metrics); the "
                "persistent pool needs picklable callables")
    return _execute_fork(sweep, points, pending, jobs)


def _run_index_serial(sweep: Sweep, points: List[Dict[str, Any]],
                      idx: int) -> Tuple[Any, ...]:
    try:
        return ("ok", idx, sweep.run_point(points[idx]))
    except SweepPointError as exc:
        return ("err", idx, exc.stage, exc.point, exc.cause)


class ParallelSweep:
    """A :class:`~repro.sim.experiments.Sweep` bound to a worker count
    and (optionally) a result cache.

    Thin declarative wrapper for harness code that wants to configure
    parallelism once and call :meth:`run` repeatedly::

        runner = ParallelSweep(sweep, jobs=4, cache=True)
        table = runner.run()          # identical to sweep.run()
    """

    def __init__(self, sweep: Sweep, jobs: int = 1, cache: Any = None,
                 strategy: str = "auto"):
        if jobs < 1:
            raise ReproError("jobs must be >= 1")
        self.sweep = sweep
        self.jobs = jobs
        self.cache = _normalize_cache(cache)
        self.strategy = strategy

    def run(self) -> List[Dict[str, Any]]:
        return run_sweep(self.sweep, jobs=self.jobs, cache=self.cache,
                         strategy=self.strategy)


def run_sweep(sweep: Sweep, jobs: int = 1, cache: Any = None,
              strategy: str = "auto") -> List[Dict[str, Any]]:
    """Execute a sweep grid across ``jobs`` workers, through ``cache``.

    Returns the same row list, in the same order, as ``sweep.run()``.
    Raises :class:`~repro.sim.experiments.SweepPointError` for the first
    (grid-order) failing point. ``strategy`` picks the execution
    backend: ``auto`` (persistent pool for portable sweeps, else the
    legacy fork pool), ``persistent``, ``fork``, or ``serial``.
    """
    cache = _normalize_cache(cache)
    points = sweep.points()
    rows: List[Optional[Dict[str, Any]]] = [None] * len(points)
    keys: Dict[int, str] = {}
    pending: List[int] = []
    if cache is not None:
        fingerprint = sweep_fingerprint(sweep)
        for idx, point in enumerate(points):
            key = cache.key_for(fingerprint, point)
            keys[idx] = key
            cached = cache.get(key)
            if cached is not None:
                rows[idx] = cached
            else:
                pending.append(idx)
    else:
        pending = list(range(len(points)))

    if pending:
        verdicts = _execute_points(sweep, points, pending, jobs, strategy)
        failure: Optional[Tuple[int, str, Dict[str, Any], str]] = None
        for verdict in verdicts:
            if verdict[0] == "ok":
                _, idx, row = verdict
                rows[idx] = row
                if cache is not None:
                    cache.put(keys[idx], row)
            else:
                _, idx, stage, point, cause = verdict
                if failure is None or idx < failure[0]:
                    failure = (idx, stage, point, cause)
        if failure is not None:
            _, stage, point, cause = failure
            raise SweepPointError(stage, point, cause)
    return rows  # type: ignore[return-value]
