"""Parallel sweep execution with a content-addressed result cache.

The figure-reproduction sweeps are embarrassingly parallel: every grid
point builds a fresh device + runtime and runs it to completion with no
shared state. :func:`run_sweep` shards a
:class:`~repro.sim.experiments.Sweep` grid across a process pool while
keeping the serial contract intact:

* **Determinism** — each point is executed by exactly one worker via the
  same ``Sweep.run_point`` code path as a serial run, and rows are
  reassembled in grid order, so the resulting table is identical to
  ``sweep.run()`` (simulations are deterministic functions of their
  point; randomness enters only through explicit ``seed`` factors).
* **Error attribution** — a failure in a worker comes back as a
  :class:`~repro.sim.experiments.SweepPointError` naming the offending
  point's factor values, exactly as it would serially.
* **Caching** — an optional :class:`ResultCache` keyed by a fingerprint
  of the sweep's *code* (build/metric bytecode and closures, the
  package version, and a source-tree stamp) plus the point's factor
  values. Editing any source file, changing a closure constant, or
  moving a factor level all change the key, so stale rows can never be
  replayed; re-running an unchanged sweep is pure cache hits.

Worker handoff uses the ``fork`` start method: the sweep object (whose
``build``/``metrics`` callables are typically closures and therefore
unpicklable) is published in a module global before the pool forks, and
workers receive only picklable point indices. On platforms without
``fork`` the pool degrades to in-process serial execution — same table,
no parallelism.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.errors import ReproError
from repro.sim.experiments import Sweep, SweepPointError

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Cache format version; bump to invalidate every existing entry.
_CACHE_FORMAT = 1


# ---------------------------------------------------------------------------
# Fingerprinting: what makes a cached row reusable
# ---------------------------------------------------------------------------


def _update_callable(h: "hashlib._Hash", fn: Any, depth: int = 0) -> None:
    """Mix a callable's behaviour into the hash.

    Covers the compiled bytecode, constants, names, defaults, and —
    recursively — closure cell contents, so two lambdas that differ only
    in a captured constant fingerprint differently. Objects without code
    (builtins, callables implementing ``__call__``) fall back to their
    repr, which at minimum distinguishes their type.
    """
    if depth > 4:  # cycle guard for pathological closure graphs
        h.update(b"<depth>")
        return
    code = getattr(fn, "__code__", None)
    if code is None:
        call = getattr(fn, "__call__", None)
        inner = getattr(call, "__func__", None)
        if inner is not None and getattr(inner, "__code__", None) is not None:
            _update_callable(h, inner, depth + 1)
        else:
            h.update(repr(fn).encode("utf-8", "backslashreplace"))
        return
    h.update(code.co_code)
    h.update(repr(code.co_consts).encode("utf-8", "backslashreplace"))
    h.update(repr(code.co_names).encode("utf-8", "backslashreplace"))
    h.update(repr(getattr(fn, "__defaults__", None)).encode(
        "utf-8", "backslashreplace"))
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell
            h.update(b"<empty>")
            continue
        if callable(contents):
            _update_callable(h, contents, depth + 1)
        else:
            h.update(repr(contents).encode("utf-8", "backslashreplace"))


def _source_tree_stamp() -> str:
    """Digest of the package source tree (path, size, mtime per file).

    Any edit under ``repro``'s package directory changes the stamp and
    therefore every cache key — coarse, but it guarantees a cached row
    can never outlive the code that produced it.
    """
    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        try:
            stat = path.stat()
        except OSError:
            continue
        rel = path.relative_to(root).as_posix()
        h.update(f"{rel}:{stat.st_size}:{stat.st_mtime_ns};".encode())
    return h.hexdigest()


def sweep_fingerprint(sweep: Sweep) -> str:
    """Stable fingerprint of everything that determines a sweep's rows
    besides the grid point itself: package version, source tree, the
    build and metric callables, and the run budget."""
    h = hashlib.sha256()
    h.update(f"format={_CACHE_FORMAT};".encode())
    h.update(f"version={getattr(repro, '__version__', '?')};".encode())
    h.update(_source_tree_stamp().encode())
    _update_callable(h, sweep.build)
    for name in sorted(sweep.metrics):
        h.update(name.encode("utf-8", "backslashreplace"))
        _update_callable(h, sweep.metrics[name])
    h.update(json.dumps(
        {"runs": sweep.runs, "max_time_s": sweep.max_time_s,
         "max_reboots": sweep.max_reboots,
         # Batched sweeps carry their struct-of-arrays layout token;
         # a layout or dtype change must invalidate every cached row.
         "batch_layout": getattr(sweep, "batch_layout", None)},
        sort_keys=True,
    ).encode())
    return h.hexdigest()


def _point_token(point: Dict[str, Any]) -> str:
    """Canonical JSON form of a grid point (sorted keys, stable reprs)."""
    try:
        return json.dumps(point, sort_keys=True)
    except (TypeError, ValueError):
        # Non-JSON factor levels (objects, tuples): fall back to repr,
        # which is stable for the value types sweeps actually use.
        return repr(sorted((k, repr(v)) for k, v in point.items()))


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed store of finished sweep rows.

    Layout: ``<root>/<key[:2]>/<key>.json``, one row per file, written
    atomically (temp file + rename) so a killed sweep never leaves a
    torn entry. Only rows that survive a JSON round-trip unchanged are
    cached — anything else silently stays uncached rather than coming
    back subtly different (e.g. tuples as lists).
    """

    def __init__(self, root: Union[str, os.PathLike] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, fingerprint: str, point: Dict[str, Any]) -> str:
        """Cache key of one grid point under one sweep fingerprint."""
        h = hashlib.sha256()
        h.update(fingerprint.encode())
        h.update(_point_token(point).encode("utf-8", "backslashreplace"))
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached row for ``key``, or ``None`` (counts hit/miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        row = doc.get("row") if isinstance(doc, dict) else None
        if not isinstance(row, dict):
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, key: str, row: Dict[str, Any]) -> bool:
        """Store a row; returns False (and stores nothing) if the row
        does not round-trip through JSON byte-identically."""
        try:
            encoded = json.dumps({"format": _CACHE_FORMAT, "row": row})
            if json.loads(encoded)["row"] != row:
                return False
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(encoded, encoding="utf-8")
        os.replace(tmp, path)
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _normalize_cache(cache: Any) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    raise ReproError(f"cannot use {cache!r} as a result cache")


# ---------------------------------------------------------------------------
# Process-pool execution
# ---------------------------------------------------------------------------

#: ``(sweep, points)`` published for forked workers; the callables
#: inside travel by address-space inheritance, not pickling.
_ACTIVE_SWEEP: Optional[Tuple[Sweep, List[Dict[str, Any]]]] = None


def _run_index(idx: int) -> Tuple[Any, ...]:
    """Worker entry: run one grid point, return a picklable verdict."""
    sweep, points = _ACTIVE_SWEEP
    try:
        return ("ok", idx, sweep.run_point(points[idx]))
    except SweepPointError as exc:
        return ("err", idx, exc.stage, exc.point, exc.cause)
    except BaseException as exc:  # never let a worker die silently
        return ("err", idx, "run", points[idx], repr(exc))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _execute_points(sweep: Sweep, points: List[Dict[str, Any]],
                    pending: Sequence[int], jobs: int) -> List[Tuple[Any, ...]]:
    """Run the pending point indices, serially or across a fork pool."""
    global _ACTIVE_SWEEP
    if jobs <= 1 or len(pending) <= 1 or not _fork_available():
        return [_run_index_serial(sweep, points, i) for i in pending]
    _ACTIVE_SWEEP = (sweep, points)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            return list(pool.imap(_run_index, pending))
    finally:
        _ACTIVE_SWEEP = None


def _run_index_serial(sweep: Sweep, points: List[Dict[str, Any]],
                      idx: int) -> Tuple[Any, ...]:
    try:
        return ("ok", idx, sweep.run_point(points[idx]))
    except SweepPointError as exc:
        return ("err", idx, exc.stage, exc.point, exc.cause)


class ParallelSweep:
    """A :class:`~repro.sim.experiments.Sweep` bound to a worker count
    and (optionally) a result cache.

    Thin declarative wrapper for harness code that wants to configure
    parallelism once and call :meth:`run` repeatedly::

        runner = ParallelSweep(sweep, jobs=4, cache=True)
        table = runner.run()          # identical to sweep.run()
    """

    def __init__(self, sweep: Sweep, jobs: int = 1, cache: Any = None):
        if jobs < 1:
            raise ReproError("jobs must be >= 1")
        self.sweep = sweep
        self.jobs = jobs
        self.cache = _normalize_cache(cache)

    def run(self) -> List[Dict[str, Any]]:
        return run_sweep(self.sweep, jobs=self.jobs, cache=self.cache)


def run_sweep(sweep: Sweep, jobs: int = 1,
              cache: Any = None) -> List[Dict[str, Any]]:
    """Execute a sweep grid across ``jobs`` workers, through ``cache``.

    Returns the same row list, in the same order, as ``sweep.run()``.
    Raises :class:`~repro.sim.experiments.SweepPointError` for the first
    (grid-order) failing point.
    """
    cache = _normalize_cache(cache)
    points = sweep.points()
    rows: List[Optional[Dict[str, Any]]] = [None] * len(points)
    keys: Dict[int, str] = {}
    pending: List[int] = []
    if cache is not None:
        fingerprint = sweep_fingerprint(sweep)
        for idx, point in enumerate(points):
            key = cache.key_for(fingerprint, point)
            keys[idx] = key
            cached = cache.get(key)
            if cached is not None:
                rows[idx] = cached
            else:
                pending.append(idx)
    else:
        pending = list(range(len(points)))

    if pending:
        verdicts = _execute_points(sweep, points, pending, jobs)
        failure: Optional[Tuple[int, str, Dict[str, Any], str]] = None
        for verdict in verdicts:
            if verdict[0] == "ok":
                _, idx, row = verdict
                rows[idx] = row
                if cache is not None:
                    cache.put(keys[idx], row)
            else:
                _, idx, stage, point, cause = verdict
                if failure is None or idx < failure[0]:
                    failure = (idx, stage, point, cause)
        if failure is not None:
            _, stage, point, cause = failure
            raise SweepPointError(stage, point, cause)
    return rows  # type: ignore[return-value]
