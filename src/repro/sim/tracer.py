"""Execution trace recording.

Every notable occurrence — task starts/ends, power failures, reboots,
monitor actions — is recorded with its simulation timestamp. Benchmarks
derive figures directly from traces (e.g. the Figure 13 timeline), and
tests assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace record. ``kind`` vocabulary used by the package:

    ``boot``, ``power_failure``, ``charge_wait``, ``task_start``,
    ``task_end``, ``task_skip``, ``monitor_action``, ``path_restart``,
    ``path_skip``, ``path_complete``, ``run_complete``, ``gave_up``,
    ``checkpoint``; fault injection and boot-time recovery add
    ``bit_flip`` (injected silent corruption), ``torn_commit`` (pending
    journal rolled back, or a corrupt journal discarded),
    ``journal_replay`` (committed journal rolled forward),
    ``corruption_detected`` (per-cell checksum mismatch repaired),
    ``invariant_repair``, ``monitor_reset``, and ``recovery`` (one
    summary per boot whose recovery pass had to intervene).
    """

    t: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.t:12.3f}] {self.kind:<15} {extras}"


class Tracer:
    """Append-only event log with query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, t: float, kind: str, **detail: Any) -> None:
        if self.enabled:
            self.events.append(TraceEvent(t, kind, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def task_events(self, task: str) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if e.kind in ("task_start", "task_end", "task_skip")
            and e.detail.get("task") == task
        ]

    def last(self, kind: str) -> Optional[TraceEvent]:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def dump(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(e) for e in events)
