"""Lockstep struct-of-arrays fleet stepping (the vectorized mega-fleet
core). See :mod:`repro.sim.batch.core` for the execution model and the
byte-equivalence argument."""

from repro.sim.batch.core import (BatchFleetCore, BatchResult, CohortRun,
                                  LaneResult, run_with_boundaries,
                                  state_digest, weighted_summary)
from repro.sim.batch.fsm import BatchMachineSet, CompiledMachineTable
from repro.sim.batch.layout import (DTYPES, HAVE_NUMPY, BatchArrays, SoAImage,
                                    resolve_backend)

__all__ = [
    "BatchArrays",
    "BatchFleetCore",
    "BatchMachineSet",
    "BatchResult",
    "CohortRun",
    "CompiledMachineTable",
    "DTYPES",
    "HAVE_NUMPY",
    "LaneResult",
    "SoAImage",
    "resolve_backend",
    "run_with_boundaries",
    "state_digest",
    "weighted_summary",
]
