"""Struct-of-arrays layouts for the batched fleet core.

Two containers live here:

* :class:`BatchArrays` — a typed column store over a *lane* axis (one
  lane per device). Columns are numpy arrays when numpy is importable
  and plain Python lists otherwise; either way the public interface is
  identical, so the batched core and its tests never branch on the
  backend. The :meth:`BatchArrays.layout_token` string names the exact
  column layout **and** element dtypes — the sweep result cache mixes it
  into its fingerprint (see :func:`repro.sim.pool.sweep_fingerprint`),
  so a cached row produced under one layout can never be replayed under
  another.

* :class:`SoAImage` — a columnar snapshot of a
  :class:`~repro.nvm.memory.NonVolatileMemory`: cell names, values,
  sizes, checksums, initials and progress flags as parallel tuples.
  ``restore()`` rebuilds a live NVM holding byte-identical durable
  state (checksums are carried over verbatim, *not* recomputed, so a
  silently corrupted cell stays detectably corrupt after the round
  trip). The batched core uses it to share one final NVM image across a
  cohort's lanes, and the journal property tests use it to prove that
  commit/recovery behaves identically on imaged state.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.nvm.memory import NonVolatileMemory

try:  # pragma: no cover - exercised through both backends in tests
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy is baked into the image
    _np = None
    HAVE_NUMPY = False

#: Logical column dtypes understood by both backends.
DTYPES = ("int64", "float64", "bool")

_PY_DEFAULTS = {"int64": 0, "float64": 0.0, "bool": False}


def resolve_backend(backend: str = "auto") -> str:
    """Normalise a backend request to ``"numpy"`` or ``"python"``."""
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if backend == "numpy" and not HAVE_NUMPY:
        raise ReproError("numpy backend requested but numpy is unavailable")
    if backend not in ("numpy", "python"):
        raise ReproError(f"unknown batch backend {backend!r}")
    return backend


class BatchArrays:
    """Typed per-field arrays over a device (lane) axis.

    Args:
        n_lanes: number of devices in the batch.
        backend: ``"numpy"``, ``"python"``, or ``"auto"`` (numpy when
            available).
    """

    def __init__(self, n_lanes: int, backend: str = "auto"):
        if n_lanes < 1:
            raise ReproError("a batch needs at least one lane")
        self.n_lanes = n_lanes
        self.backend = resolve_backend(backend)
        self._columns: Dict[str, Any] = {}
        self._dtypes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def add_column(self, name: str, dtype: str = "float64",
                   fill: Optional[Any] = None) -> None:
        """Allocate one named column, filled with ``fill`` (or the
        dtype's zero value)."""
        if dtype not in DTYPES:
            raise ReproError(f"column {name!r}: unknown dtype {dtype!r}")
        if name in self._columns:
            raise ReproError(f"column {name!r} already exists")
        value = _PY_DEFAULTS[dtype] if fill is None else fill
        if self.backend == "numpy":
            self._columns[name] = _np.full(self.n_lanes, value,
                                           dtype=_np.dtype(dtype))
        else:
            self._columns[name] = [value] * self.n_lanes
        self._dtypes[name] = dtype

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Any:
        """The raw backing column (numpy array or list)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ReproError(f"no column {name!r}") from None

    def columns(self) -> List[str]:
        return list(self._columns)

    def dtype_of(self, name: str) -> str:
        return self._dtypes[name]

    # ------------------------------------------------------------------
    def get(self, name: str, lane: int) -> Any:
        value = self.column(name)[lane]
        dtype = self._dtypes[name]
        # Return native Python scalars so callers never see numpy types
        # leak into telemetry or NVM cells.
        if dtype == "bool":
            return bool(value)
        if dtype == "int64":
            return int(value)
        return float(value)

    def set(self, name: str, lane: int, value: Any) -> None:
        self.column(name)[lane] = value

    def fill(self, name: str, value: Any,
             lanes: Optional[List[int]] = None) -> None:
        """Assign ``value`` to every lane (or just ``lanes``)."""
        col = self.column(name)
        if lanes is None:
            if self.backend == "numpy":
                col[:] = value
            else:
                for i in range(self.n_lanes):
                    col[i] = value
        elif self.backend == "numpy":
            col[_np.asarray(lanes, dtype=_np.intp)] = value
        else:
            for i in lanes:
                col[i] = value

    def tolist(self, name: str) -> List[Any]:
        col = self.column(name)
        if self.backend == "numpy":
            return col.tolist()
        return list(col)

    # ------------------------------------------------------------------
    def layout_token(self) -> str:
        """Stable string naming backend + column layout + dtypes.

        Two batches whose tokens differ must never share cached sweep
        rows: the token is mixed into the sweep fingerprint.
        """
        cols = ",".join(f"{n}:{self._dtypes[n]}" for n in sorted(self._columns))
        return f"soa/v1;backend={self.backend};lanes={self.n_lanes};{cols}"

    def __repr__(self) -> str:
        return (f"BatchArrays(lanes={self.n_lanes}, backend={self.backend}, "
                f"columns={len(self._columns)})")


# ---------------------------------------------------------------------------
# Columnar NVM snapshot
# ---------------------------------------------------------------------------


class SoAImage:
    """Columnar image of a non-volatile memory's durable state.

    Parallel tuples (sorted by cell name) of names, values, accounted
    sizes, recorded checksums, allocation-time initials, progress flags
    and write limits — the exact durable state Surbatovich-style
    intermittence semantics says must be preserved bit-for-bit across
    the batched/scalar boundary.
    """

    def __init__(self, names: Tuple[str, ...], values: Tuple[Any, ...],
                 sizes: Tuple[int, ...], checksums: Tuple[int, ...],
                 initials: Tuple[Any, ...], progress: Tuple[bool, ...],
                 write_limits: Dict[str, Tuple[int, bool]],
                 capacity_bytes: int):
        self.names = names
        self.values = values
        self.sizes = sizes
        self.checksums = checksums
        self.initials = initials
        self.progress = progress
        self.write_limits = dict(write_limits)
        self.capacity_bytes = capacity_bytes

    @classmethod
    def from_nvm(cls, nvm: NonVolatileMemory) -> "SoAImage":
        names = tuple(sorted(nvm._cells))
        return cls(
            names=names,
            values=tuple(copy.deepcopy(nvm._data[n]) for n in names),
            sizes=tuple(nvm._cells[n].size_bytes for n in names),
            checksums=tuple(nvm._checksums[n] for n in names),
            initials=tuple(copy.deepcopy(nvm._initials[n]) for n in names),
            progress=tuple(n in nvm._progress_cells for n in names),
            write_limits=dict(nvm._write_limits),
            capacity_bytes=nvm.capacity_bytes,
        )

    def restore(self) -> NonVolatileMemory:
        """Rebuild a live NVM holding this image's durable state.

        Values, recorded checksums, initials, sizes, progress flags and
        wear limits all come back verbatim; write counters start from
        zero (they are observability metadata, not durable state — the
        journal recovery path never reads them).
        """
        nvm = NonVolatileMemory(capacity_bytes=self.capacity_bytes)
        for i, name in enumerate(self.names):
            nvm.alloc(name, initial=copy.deepcopy(self.initials[i]),
                      size_bytes=self.sizes[i], progress=self.progress[i])
            nvm._data[name] = copy.deepcopy(self.values[i])
            nvm._checksums[name] = self.checksums[i]
        for name, limit in self.write_limits.items():
            if name in nvm._cells:
                nvm._write_limits[name] = limit
        return nvm

    def fingerprint(self) -> int:
        """Same CRC as ``NonVolatileMemory.state_fingerprint`` over the
        imaged cells (names sorted at capture time)."""
        import zlib

        acc = 0
        for name, value in zip(self.names, self.values):
            acc = zlib.crc32(
                repr((name, value)).encode("utf-8", "backslashreplace"), acc)
        return acc

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:
        return f"SoAImage({len(self.names)} cells)"
