"""Lockstep batched fleet stepping core.

The scalar fleet path simulates every device independently at ~18
devices/s. This module gets to 10k+ devices/s on one core by exploiting
what the paper's deployment model guarantees: a lockstep fleet is
*homogeneous* — devices differ only in identity, not behaviour — so the
fleet partitions into **cohorts** of byte-identical devices (energy
class × treatment, under the rollout plan's ``per_cohort`` seed mode).

Per cohort the core runs **one instrumented scalar representative**
through the unmodified ``Device``/``ArtemisRuntime``/``UpdatableRuntime``
stack — byte-equivalence with the scalar path holds *by construction*
for every lane of the cohort — while:

* a machine-op tap (:func:`repro.core.monitor.tap_machine_ops`) records
  the representative's monitor stream, which is replayed across the
  cohort's device axis through the vectorized
  :class:`~repro.sim.batch.fsm.BatchMachineSet` (struct-of-arrays FSM
  state, table-driven transitions, the existing dispatch subscription
  tables). Lane 0 of the replay is self-checked against the
  representative's NVM-backed machine stores; a mismatch (possible when
  a brown-out interrupts ``on_event`` mid-write) makes the affected
  lanes fall back to the authoritative scalar state — counted in
  :attr:`BatchResult.kernel_fallbacks`, never silent;
* a **boundary ledger** snapshots full durable state at every run
  boundary (NVM fingerprint, simulated clock, capacitor energy, loss
  RNG state, result counters, trace position);
* per-device state lands in struct-of-arrays telemetry columns
  (:class:`~repro.sim.batch.layout.BatchArrays`) and the final NVM
  image is shared across lanes as one
  :class:`~repro.sim.batch.layout.SoAImage`.

**Divergence handling**: a lane with per-device perturbation (an
injected crash schedule — the test battery's fault seeds) drops out of
the lockstep batch and runs the scalar path individually; at every run
boundary its state digest is compared against the ledger, and on a
match the lane **rejoins** — it stops simulating and adopts the
representative's suffix (trace tail, result deltas, final NVM image),
which is byte-identical by determinism. The digest necessarily pins the
simulated clock (the persistent clock writes its absolute reading into
NVM, so the NVM fingerprint alone encodes time): a perturbation with
*any* lasting observable effect — including extra elapsed time — keeps
the digests apart, and the lane runs scalar to completion. That is not
a limitation but what byte-equivalence demands; rejoin accelerates
exactly the perturbations the device fully absorbed.

Cohort-representative rows are keyed into the content-addressed sweep
cache through the standard :mod:`repro.sim.pool` machinery with the
batch layout token mixed into the fingerprint, so rows computed under
one struct-of-arrays layout/dtype can never be replayed under another.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import tap_machine_ops
from repro.errors import FleetError, PowerFailure
from repro.fleet.telemetry import DeviceTelemetry, FleetSummary, aggregate
from repro.sim.batch.fsm import BatchMachineSet
from repro.sim.batch.layout import BatchArrays, SoAImage, resolve_backend
from repro.sim.experiments import Sweep
from repro.sim.tracer import Tracer

#: Telemetry fields laid out as per-lane struct-of-arrays columns.
_SOA_COLUMNS = (
    ("completed", "bool"),
    ("runs_completed", "int64"),
    ("reboots", "int64"),
    ("total_time_s", "float64"),
    ("total_energy_mj", "float64"),
    ("radio_energy_mj", "float64"),
    ("violations_before", "int64"),
    ("violations_after", "int64"),
    ("soc_j", "float64"),
    ("task_retries", "int64"),
    ("degradation_shed", "int64"),
    ("degradation_restored", "int64"),
)


def run_with_boundaries(device, runtime, runs: int = 1,
                        max_time_s: Optional[float] = None,
                        max_reboots: Optional[int] = None,
                        on_boundary=None):
    """``Device.run`` with a hook at every run boundary.

    Mirrors :meth:`repro.sim.device.Device.run` statement for statement
    (the differential suite holds it to that); ``on_boundary(k)`` fires
    immediately after the ``run_complete`` trace record for run ``k``
    and may return True to stop early (the rejoin path — the caller
    composes the remainder from the representative's suffix).
    """
    start = device.sim_clock.now()
    device.trace.record(start, "boot", first=True)
    while device.result.runs_completed < runs:
        try:
            runtime.boot(device)
            while not runtime.finished:
                if device._budget_exhausted(start, max_time_s, max_reboots):
                    return device._give_up(start)
                runtime.loop_iteration(device)
            device.result.runs_completed += 1
            device.trace.record(device.sim_clock.now(), "run_complete",
                                run=device.result.runs_completed)
            if on_boundary is not None and on_boundary(
                    device.result.runs_completed):
                return device.result
            if device.result.runs_completed < runs:
                runtime.begin_run(device)
        except PowerFailure:
            if device._budget_exhausted(start, max_time_s, max_reboots):
                return device._give_up(start)
            device.reboot()
    device.result.completed = True
    device.result.total_time_s = device.sim_clock.now() - start
    return device.result


def state_digest(device, runtime) -> Tuple:
    """Full-simulation-state digest at a run boundary.

    Two devices with equal digests at a boundary evolve identically from
    there: the digest covers every input future execution depends on —
    durable NVM state, the simulated clock, stored capacitor energy,
    liveness, and the OTA link's loss-RNG stream position (the only
    volatile random state in the fleet stack).
    """
    loss_state = None
    transport = getattr(runtime, "transport", None)
    loss = getattr(transport, "loss", None)
    if loss is not None:
        rng = getattr(loss, "_rng", None)
        if rng is not None:
            loss_state = hash(repr(rng.getstate()))
    energy = device.env.usable_energy()
    return (device.nvm.state_fingerprint(), device.sim_clock.now(),
            energy, device.alive, loss_state)


class _BoundaryLedger:
    """Per-boundary snapshots of one representative run."""

    def __init__(self):
        self.digests: Dict[int, Tuple] = {}
        self.trace_pos: Dict[int, int] = {}
        self.results: Dict[int, Any] = {}

    def record(self, k: int, device, runtime) -> None:
        self.digests[k] = state_digest(device, runtime)
        self.trace_pos[k] = len(device.trace.events)
        self.results[k] = copy.deepcopy(device.result)


class CohortRun:
    """Everything one cohort's representative run produced."""

    def __init__(self, key, device_ids: List[int], row: Dict[str, Any],
                 device=None, runtime=None, ledger: Optional[_BoundaryLedger] = None,
                 nvm_image: Optional[SoAImage] = None, from_cache: bool = False):
        self.key = key
        self.device_ids = device_ids
        self.row = row
        self.device = device
        self.runtime = runtime
        self.ledger = ledger
        self.nvm_image = nvm_image
        self.from_cache = from_cache


class LaneResult:
    """A diverged lane's scalar outcome (possibly rejoined)."""

    def __init__(self, device_id: int, row: Dict[str, Any], rejoined: bool,
                 rejoin_boundary: Optional[int], trace_events: list,
                 nvm_image: Optional[SoAImage]):
        self.device_id = device_id
        self.row = row
        self.rejoined = rejoined
        self.rejoin_boundary = rejoin_boundary
        self.trace_events = trace_events
        self.nvm_image = nvm_image


class BatchResult:
    """Outcome of one batched wave.

    ``arrays`` holds the per-lane struct-of-arrays telemetry columns
    (:data:`_SOA_COLUMNS`); ``expand()`` materialises per-device
    :class:`~repro.fleet.telemetry.DeviceTelemetry` byte-identical to
    the scalar path; ``weighted_summary()`` is the amortized per-batch
    rollup used beyond the expansion limit (numerically equivalent,
    not bitwise — multiplication replaces repeated addition).
    """

    def __init__(self, device_ids: List[int], backend: str):
        self.device_ids = list(device_ids)
        self.lane_of = {d: i for i, d in enumerate(self.device_ids)}
        self.backend = backend
        self.cohorts: List[CohortRun] = []
        self.lanes: Dict[int, LaneResult] = {}
        self.kernel_fallbacks = 0
        self.kernel_checked_machines = 0
        self.fsm: Optional[BatchMachineSet] = None
        self.arrays = BatchArrays(max(1, len(self.device_ids)),
                                  backend=backend)
        for name, dtype in _SOA_COLUMNS:
            self.arrays.add_column(name, dtype)

    # ------------------------------------------------------------------
    def _fill_lanes(self, row: Dict[str, Any], lanes: List[int],
                    soc_j: float, retries: int) -> None:
        for name, _ in _SOA_COLUMNS:
            if name == "soc_j":
                value = soc_j
            elif name == "task_retries":
                value = retries
            else:
                value = row.get(name, 0)
            self.arrays.fill(name, value, lanes)

    def rows(self) -> List[Tuple[Dict[str, Any], int]]:
        """(representative row, lane count) per cohort, divergent lanes
        as singleton rows — the amortized rollup's input."""
        out: List[Tuple[Dict[str, Any], int]] = []
        for cohort in self.cohorts:
            plain = [d for d in cohort.device_ids if d not in self.lanes]
            if plain:
                out.append((cohort.row, len(plain)))
        for lane in self.lanes.values():
            out.append((lane.row, 1))
        return out

    def expand(self) -> List[DeviceTelemetry]:
        """Per-device telemetry in input order, byte-identical to the
        scalar path (each lane's row restamped with its device id)."""
        by_id: Dict[int, Dict[str, Any]] = {}
        for cohort in self.cohorts:
            for device_id in cohort.device_ids:
                if device_id not in self.lanes:
                    by_id[device_id] = cohort.row
        out = []
        for device_id in self.device_ids:
            lane = self.lanes.get(device_id)
            row = lane.row if lane is not None else by_id[device_id]
            row = dict(row, device_id=device_id)
            out.append(DeviceTelemetry.from_row(row))
        return out

    def summary(self) -> FleetSummary:
        """Exact aggregate over the expanded telemetry."""
        return aggregate(self.expand())

    def weighted_summary(self) -> FleetSummary:
        """Amortized rollup over (cohort row × lane count)."""
        return weighted_summary(self.rows())

    def nvm_image_for(self, device_id: int) -> Optional[SoAImage]:
        lane = self.lanes.get(device_id)
        if lane is not None:
            return lane.nvm_image
        for cohort in self.cohorts:
            if device_id in cohort.device_ids:
                return cohort.nvm_image
        return None

    def trace_events_for(self, device_id: int) -> Optional[list]:
        lane = self.lanes.get(device_id)
        if lane is not None:
            return lane.trace_events
        for cohort in self.cohorts:
            if device_id in cohort.device_ids and cohort.device is not None:
                return list(cohort.device.trace.events)
        return None


def weighted_summary(rows: Sequence[Tuple[Dict[str, Any], int]]) -> FleetSummary:
    """Fold (telemetry row, device count) pairs into a FleetSummary.

    Mirrors :func:`repro.fleet.telemetry.aggregate` with each row
    weighted by its cohort size. Sums use multiplication where the
    scalar path adds ``count`` equal floats, so float totals can differ
    from the expanded aggregate in the last bits — which is why the
    expansion path (and its byte-exact aggregate) stays the default up
    to :attr:`RolloutPlan.expand_limit`.
    """
    devices = completed = rollbacks = violations = reboots = 0
    shed = restored = predictive = chunks = 0
    radio = energy = 0.0
    outcomes: Dict[str, int] = {}
    before_num = 0.0
    after_num = 0.0
    delta_num = 0.0
    installed_n = 0
    lead_num = 0.0
    lead_n = 0
    for row, count in rows:
        t = DeviceTelemetry.from_row(dict(row, device_id=0))
        devices += count
        completed += count if t.completed else 0
        outcomes[t.update_outcome] = outcomes.get(t.update_outcome, 0) + count
        rollbacks += t.rollbacks * count
        violations += (t.violations_before + t.violations_after) * count
        reboots += t.reboots * count
        shed += t.degradation_shed * count
        restored += t.degradation_restored * count
        predictive += t.predictive_sheds * count
        chunks += t.chunks_lost * count
        radio += t.radio_energy_mj * count
        energy += t.total_energy_mj * count
        before_num += t.rate_before * count
        if t.installed:
            after_num += t.rate_after * count
            delta_num += (t.rate_after - t.rate_before) * count
            installed_n += count
        if t.predictive_sheds:
            lead_num += t.shed_lead_s * count
            lead_n += count
    return FleetSummary(
        devices=devices,
        completed=completed,
        outcomes=outcomes,
        rollbacks=rollbacks,
        mean_rate_before=before_num / devices if devices else 0.0,
        mean_rate_after=after_num / installed_n if installed_n else 0.0,
        regression_delta=delta_num / installed_n if installed_n else 0.0,
        total_violations=violations,
        total_reboots=reboots,
        degradation_shed=shed,
        degradation_restored=restored,
        predictive_sheds=predictive,
        mean_shed_lead_s=lead_num / lead_n if lead_n else 0.0,
        chunks_lost=chunks,
        radio_energy_mj=radio,
        total_energy_mj=energy,
    )


class BatchFleetCore:
    """Cohort-partitioned lockstep execution of one fleet wave.

    Args:
        server: the :class:`~repro.fleet.server.FleetServer` whose
            device construction this wave uses.
        wire: the update blob (``None`` builds the paired control wave).
        version: fleet version being shipped.
        plan: the rollout plan (its ``seed_mode`` decides cohorting:
            ``per_cohort`` collapses each energy class into one cohort,
            ``per_device`` degenerates to singleton cohorts — correct,
            but with no speedup).
        backend: struct-of-arrays backend (``numpy``/``python``/``auto``).
    """

    def __init__(self, server, wire: Optional[bytes], version: int, plan,
                 backend: str = "auto"):
        self.server = server
        self.wire = wire
        self.version = version
        self.plan = plan
        self.backend = resolve_backend(backend)

    def __repr__(self) -> str:
        # The sweep fingerprint hashes closures by repr of their cell
        # contents; everything that changes a representative's behaviour
        # must show up here or cached rows could be replayed wrongly.
        wire_tag = (hashlib.sha256(self.wire).hexdigest()[:16]
                    if self.wire is not None else "control")
        return (f"BatchFleetCore(version={self.version}, wire={wire_tag}, "
                f"plan={self.plan!r}, backend={self.backend}, "
                f"base={hashlib.sha256(self.server.base_spec.encode()).hexdigest()[:16]})")

    # ------------------------------------------------------------------
    def cohort_key(self, device_id: int):
        if getattr(self.plan, "seed_mode", "per_device") == "per_cohort":
            return device_id % 4
        return device_id

    def _build(self, device_id: int):
        device, runtime = self.server.build_device(
            device_id, self.wire, self.version, self.plan)
        device._fleet_device_id = device_id
        return device, runtime

    def _sweep_for(self, cohort_reps: List[int],
                   layout_token: str) -> Sweep:
        """The Sweep whose fingerprint keys cohort rows in the result
        cache — batch-aware because ``batch_layout`` carries the
        struct-of-arrays layout token."""
        core = self

        def build(point):
            return core._build(point["device_id"])

        def metric(name):
            def extract(device, result):
                row = getattr(device, "_fleet_telemetry_row", None)
                if row is None:
                    row = DeviceTelemetry.from_device(
                        device._fleet_device_id, device, result,
                        device._fleet_runtime).to_row()
                    device._fleet_telemetry_row = row
                return row[name]
            return extract

        return Sweep(
            factors={"device_id": cohort_reps},
            build=build,
            metrics={name: metric(name)
                     for name in DeviceTelemetry.__dataclass_fields__},
            runs=self.plan.runs,
            max_time_s=self.plan.max_time_s,
            max_reboots=self.plan.max_reboots,
            batch_layout=layout_token,
        )

    # ------------------------------------------------------------------
    def run(self, device_ids: Sequence[int], cache: Any = None,
            jobs: Optional[int] = None,
            perturb: Optional[Dict[int, Sequence[int]]] = None,
            kernel_check: bool = True) -> BatchResult:
        """Simulate ``device_ids`` as a lockstep batch.

        Args:
            cache: optional sweep result cache (``True``/path/instance).
            jobs: with ``kernel_check=False`` and no perturbations,
                shard cohort representatives across a fork pool via the
                standard :func:`repro.sim.pool.run_sweep`.
            perturb: ``{device_id: crash schedule}`` — those lanes
                diverge from the batch into the scalar path (driven by
                :class:`~repro.verify.schedule.CrashScheduleRunner`)
                and rejoin at the first run boundary whose state digest
                matches the ledger.
            kernel_check: replay each representative's monitor stream
                through the vectorized FSM kernel across the cohort's
                lanes and self-check against the scalar stores.
        """
        ids = list(device_ids)
        if not ids:
            raise FleetError("batched wave needs at least one device")
        perturb = dict(perturb or {})
        unknown = set(perturb) - set(ids)
        if unknown:
            raise FleetError(f"perturbed devices not in wave: {sorted(unknown)}")

        cohorts: Dict[Any, List[int]] = {}
        for device_id in ids:
            cohorts.setdefault(self.cohort_key(device_id), []).append(device_id)
        result = BatchResult(ids, backend=self.backend)

        layout_token = result.arrays.layout_token()
        reps = [min(members) for members in cohorts.values()]
        sweep = self._sweep_for(sorted(reps), layout_token)

        if jobs and jobs > 1 and not perturb and not kernel_check:
            rows = sweep.run(parallel=jobs, cache=cache)
            rows_by_rep = {row["device_id"]: row for row in rows}
            for key in sorted(cohorts, key=repr):
                members = sorted(cohorts[key])
                row = dict(rows_by_rep[min(members)])
                cohort = CohortRun(key, members, row, from_cache=True)
                result.cohorts.append(cohort)
                lanes = [result.lane_of[d] for d in members]
                result._fill_lanes(row, lanes, soc_j=0.0,
                                   retries=int(row.get("task_retries", 0) or 0))
            return result

        from repro.sim.pool import _normalize_cache, sweep_fingerprint

        cache = _normalize_cache(cache)
        fingerprint = sweep_fingerprint(sweep) if cache is not None else None

        for key in sorted(cohorts, key=repr):
            members = sorted(cohorts[key])
            rep_id = min(members)
            divergent = [d for d in members if d in perturb]
            point = {"device_id": rep_id}
            cached_row = None
            if cache is not None and not divergent:
                cached_row = cache.get(cache.key_for(fingerprint, point))
            if cached_row is not None:
                cohort = CohortRun(key, members, dict(cached_row),
                                   from_cache=True)
                result.cohorts.append(cohort)
                lanes = [result.lane_of[d] for d in members]
                result._fill_lanes(cohort.row, lanes, soc_j=0.0,
                                   retries=int(cohort.row.get("task_retries", 0) or 0))
                continue
            cohort = self._run_representative(key, members, rep_id,
                                              kernel_check, result)
            result.cohorts.append(cohort)
            if cache is not None:
                cache.put(cache.key_for(fingerprint, point), cohort.row)
            plain_lanes = [result.lane_of[d] for d in members
                           if d not in perturb]
            result._fill_lanes(
                cohort.row, plain_lanes,
                soc_j=self._finite(cohort.device.env.usable_energy()),
                retries=int(cohort.device.result.task_retries))
            for device_id in divergent:
                lane = self._run_divergent_lane(device_id, perturb[device_id],
                                                cohort)
                result.lanes[device_id] = lane
                result._fill_lanes(lane.row, [result.lane_of[device_id]],
                                   soc_j=0.0,
                                   retries=int(lane.row.get("task_retries", 0) or 0))
        return result

    @staticmethod
    def _finite(value: float) -> float:
        return 0.0 if value in (float("inf"), float("-inf")) else float(value)

    # ------------------------------------------------------------------
    def _run_representative(self, key, members: List[int], rep_id: int,
                            kernel_check: bool,
                            result: BatchResult) -> CohortRun:
        device, runtime = self._build(rep_id)
        ledger = _BoundaryLedger()

        def on_boundary(k: int) -> bool:
            ledger.record(k, device, runtime)
            return False

        with tap_machine_ops() as ops:
            run_result = run_with_boundaries(
                device, runtime, runs=self.plan.runs,
                max_time_s=self.plan.max_time_s,
                max_reboots=self.plan.max_reboots,
                on_boundary=on_boundary)
        row = DeviceTelemetry.from_device(rep_id, device, run_result,
                                          runtime).to_row()
        row["task_retries"] = int(run_result.task_retries)
        cohort = CohortRun(key, members, row, device=device, runtime=runtime,
                           ledger=ledger, nvm_image=SoAImage.from_nvm(device.nvm))
        if kernel_check:
            self._replay_kernel(cohort, members, ops, result)
        return cohort

    def _replay_kernel(self, cohort: CohortRun, members: List[int],
                       ops: list, result: BatchResult) -> None:
        """Replay the representative's monitor stream across the cohort
        lane axis and self-check lane 0 against the scalar stores."""
        monitor = self._leaf_monitor(cohort.runtime)
        if monitor is None:
            return
        fsm = BatchMachineSet(monitor.machines, n_lanes=len(members),
                              backend=self.backend)
        for op, machine_name, event in ops:
            if machine_name not in fsm._by_name:
                continue  # ops from a pre-swap monitor generation
            if op == "reset":
                fsm.reset_machine(machine_name)
            else:
                fsm.step_machine(machine_name, event, collect=False)
        result.fsm = fsm
        for machine, instance in zip(monitor.machines, monitor.instances):
            result.kernel_checked_machines += 1
            scalar = {"state": instance.state}
            for var in machine.variables:
                scalar[f"var.{var.name}"] = instance.get(var.name)
            if fsm.lane_store(machine.name, 0) != scalar:
                # A brown-out mid-on_event left the scalar store partially
                # advanced; the completed-delivery replay cannot represent
                # that. Fall back to the authoritative scalar state for
                # every lane (the cohort is homogeneous).
                result.kernel_fallbacks += 1
                for lane in range(len(members)):
                    fsm.load_lane(machine.name, lane, scalar)

    @staticmethod
    def _leaf_monitor(runtime):
        """The active ArtemisMonitor under an UpdatableRuntime (or a
        bare runtime); None when there is nothing to mirror."""
        inner = getattr(runtime, "inner", runtime)
        monitor = getattr(inner, "monitor", None)
        if monitor is None:
            return None
        if hasattr(monitor, "monitors"):  # MonitorGroup
            return monitor.monitors[0] if monitor.monitors else None
        return monitor

    # ------------------------------------------------------------------
    def _run_divergent_lane(self, device_id: int, schedule: Sequence[int],
                            cohort: CohortRun) -> LaneResult:
        from repro.verify.schedule import CrashScheduleRunner

        device, runtime = self._build(device_id)
        CrashScheduleRunner(tuple(schedule), record=False).bind(device)
        ledger = cohort.ledger
        rejoin_at: List[int] = []

        def on_boundary(k: int) -> bool:
            rep_digest = ledger.digests.get(k)
            if rep_digest is None:
                return False
            if state_digest(device, runtime) != rep_digest:
                return False
            if not self._reboot_budget_allows_rejoin(k, device, cohort):
                return False
            rejoin_at.append(k)
            return True

        run_result = run_with_boundaries(
            device, runtime, runs=self.plan.runs,
            max_time_s=self.plan.max_time_s,
            max_reboots=self.plan.max_reboots,
            on_boundary=on_boundary)

        if not rejoin_at:
            row = DeviceTelemetry.from_device(device_id, device, run_result,
                                              runtime).to_row()
            row["task_retries"] = int(run_result.task_retries)
            return LaneResult(device_id, row, rejoined=False,
                              rejoin_boundary=None,
                              trace_events=list(device.trace.events),
                              nvm_image=SoAImage.from_nvm(device.nvm))
        k = rejoin_at[0]
        composed_result = self._compose_result(run_result,
                                               cohort.ledger.results[k],
                                               cohort.device.result)
        composed_trace = Tracer()
        composed_trace.events = (list(device.trace.events)
                                 + cohort.device.trace.events[
                                     cohort.ledger.trace_pos[k]:])

        class _TraceView:
            trace = composed_trace

        row = DeviceTelemetry.from_device(device_id, _TraceView(),
                                          composed_result,
                                          cohort.runtime).to_row()
        row["task_retries"] = int(composed_result.task_retries)
        return LaneResult(device_id, row, rejoined=True, rejoin_boundary=k,
                          trace_events=composed_trace.events,
                          nvm_image=cohort.nvm_image)

    def _reboot_budget_allows_rejoin(self, k: int, device,
                                     cohort: CohortRun) -> bool:
        """Rejoining adopts the representative's suffix verbatim, which
        is only sound if no budget check in that suffix could decide
        differently for this lane. Time budgets are identical (the
        digest pins the clock); the reboot budget is not — the lane's
        counter may differ — so require strict headroom."""
        if self.plan.max_reboots is None:
            return True
        rep_at_k = cohort.ledger.results[k].reboots
        rep_final = cohort.device.result.reboots
        lane_now = device.result.reboots
        if lane_now == rep_at_k:
            return True
        return lane_now + (rep_final - rep_at_k) < self.plan.max_reboots

    @staticmethod
    def _compose_result(lane_prefix, rep_at_k, rep_final):
        """Lane prefix counters + representative suffix deltas.

        Sound because the digest match pins the simulated clock: the
        lane and the representative stand at the same instant, so the
        suffix's durations/energies/counters apply verbatim."""
        composed = copy.deepcopy(lane_prefix)
        composed.completed = rep_final.completed
        composed.total_time_s = rep_final.total_time_s
        composed.on_time_s += rep_final.on_time_s - rep_at_k.on_time_s
        composed.charge_time_s += rep_final.charge_time_s - rep_at_k.charge_time_s
        for category in composed.busy_time_s:
            composed.busy_time_s[category] += (
                rep_final.busy_time_s[category] - rep_at_k.busy_time_s[category])
            composed.energy_j[category] += (
                rep_final.energy_j[category] - rep_at_k.energy_j[category])
        for name in ("reboots", "runs_completed", "torn_commits",
                     "journal_replays", "corruptions_detected",
                     "corruptions_repaired", "invariant_repairs",
                     "monitor_resets", "sensor_faults", "task_retries",
                     "watchdog_trips", "monitors_shed", "monitors_restored",
                     "predictive_sheds"):
            setattr(composed, name, getattr(lane_prefix, name)
                    + getattr(rep_final, name) - getattr(rep_at_k, name))
        return composed
