"""Vectorized, table-driven FSM evaluation across a device axis.

A :class:`BatchMachineSet` holds the monitor FSM state of *every lane*
(device) in a lockstep batch as struct-of-arrays columns — one int64
state column and one typed column per machine variable — and evaluates
transitions across the whole lane axis at once:

* machine dispatch reuses the **existing precompiled subscription
  tables** (:func:`repro.core.monitor.subscription_tables`), so the
  batched kernel inspects exactly the machines the scalar monitor
  charges for;
* per machine, transitions are compiled into dense per-source-state
  candidate lists evaluated with "not yet matched" lane masks, so the
  scalar semantics — *first* declared matching transition wins, one
  transition per event — hold lane-wise;
* guards and bodies evaluate as masked array programs on the numpy
  backend, with proper short-circuit masking (the right operand of
  ``and``/``or`` is only "evaluated" for lanes where it matters, so a
  division guarded by a zero check never raises spuriously). The pure
  Python backend steps lanes through the same compiled tables with the
  reference interpreter's exact evaluation order.

Semantics are differential-tested against
:class:`~repro.statemachine.interpreter.MachineInstance` (the repo's
semantic ground truth) in ``tests/test_batch_differential.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import subscription_tables
from repro.errors import StateMachineError
from repro.sim.batch.layout import BatchArrays, resolve_backend
from repro.statemachine.interpreter import Verdict
from repro.statemachine.model import (
    ANY_EVENT,
    Assign,
    BinOp,
    Const,
    EventField,
    EventIs,
    ExternRef,
    Fail,
    HasData,
    If,
    Not,
    StateMachine,
    Var,
)

try:  # pragma: no cover - both backends are exercised in tests
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

_VAR_DTYPES = {"int": "int64", "float": "float64", "bool": "bool",
               "time": "float64"}

_DIV_ZERO_MSG = "division by zero in guard/body expression"


class CompiledMachineTable:
    """Dense transition tables for one machine.

    ``by_state`` maps each state index to its transitions in declaration
    order as ``(target_idx, trigger_kind, trigger_task, guard, body)``
    tuples — the representation both backends step from.
    """

    def __init__(self, machine: StateMachine):
        self.machine = machine
        self.states = list(machine.states)
        self.state_index = {s: i for i, s in enumerate(self.states)}
        self.initial_idx = self.state_index[machine.initial]
        self.variables = list(machine.variables)
        self.var_dtypes = {v.name: _VAR_DTYPES[v.type] for v in self.variables}
        self.by_state: Dict[int, List[Tuple[int, str, Optional[str], Any, tuple]]] = {}
        for state in self.states:
            rows = [
                (self.state_index[t.target], t.trigger.kind, t.trigger.task,
                 t.guard, t.body)
                for t in machine.transitions_from(state)
            ]
            if rows:
                self.by_state[self.state_index[state]] = rows


def _event_field(event: Any, field: str) -> Any:
    """Mirror of the interpreter's event-field access."""
    if field == "timestamp":
        return event.timestamp
    if field == "task":
        return event.task
    if field == "path":
        return getattr(event, "path", 0)
    if field.startswith("data."):
        key = field[len("data."):]
        data = getattr(event, "data", None) or {}
        if key not in data:
            raise StateMachineError(f"event carries no dependent data {key!r}")
        return data[key]
    raise StateMachineError(f"unknown event field {field!r}")


class BatchMachineSet:
    """SoA monitor FSM state for ``n_lanes`` devices, stepped in bulk.

    Args:
        machines: the monitor's state machines (one per property).
        n_lanes: devices in the batch.
        backend: ``"numpy"`` / ``"python"`` / ``"auto"``.
    """

    def __init__(self, machines: Sequence[StateMachine], n_lanes: int,
                 backend: str = "auto"):
        self.machines = list(machines)
        self.n_lanes = n_lanes
        self.backend = resolve_backend(backend)
        self.tables = [CompiledMachineTable(m) for m in self.machines]
        self._by_name = {m.name: i for i, m in enumerate(self.machines)}
        # The same frozen dispatch tables the scalar monitor and the
        # static energy analyzer share.
        self.wildcard_set, self.dispatch = subscription_tables(self.machines)
        #: Amortized emission rollup: (machine, action, path) → number of
        #: lane-verdicts fired, maintained per batch-step without ever
        #: materializing per-lane Verdict objects.
        self.emitted: Dict[Tuple[str, str, Optional[int]], int] = {}
        self.arrays = BatchArrays(n_lanes, backend=self.backend)
        for machine, table in zip(self.machines, self.tables):
            self.arrays.add_column(f"{machine.name}.state", "int64",
                                   fill=table.initial_idx)
            for var in table.variables:
                self.arrays.add_column(
                    f"{machine.name}.var.{var.name}",
                    table.var_dtypes[var.name],
                    fill=var.initial_value,
                )

    # ------------------------------------------------------------------
    # Layout / lane state access
    # ------------------------------------------------------------------
    def layout_token(self) -> str:
        return self.arrays.layout_token()

    def reset_machine(self, machine_name: str,
                      lanes: Optional[List[int]] = None) -> None:
        idx = self._machine_idx(machine_name)
        table = self.tables[idx]
        self.arrays.fill(f"{machine_name}.state", table.initial_idx, lanes)
        for var in table.variables:
            self.arrays.fill(f"{machine_name}.var.{var.name}",
                             var.initial_value, lanes)

    def reset(self, lanes: Optional[List[int]] = None) -> None:
        for machine in self.machines:
            self.reset_machine(machine.name, lanes)

    def lane_store(self, machine_name: str, lane: int) -> Dict[str, Any]:
        """One lane's machine state in the scalar store's key shape
        (``state`` + ``var.<name>``) with native Python values — the
        object the self-check compares against the representative's
        NVM-backed store."""
        idx = self._machine_idx(machine_name)
        table = self.tables[idx]
        out: Dict[str, Any] = {
            "state": table.states[self.arrays.get(f"{machine_name}.state", lane)]
        }
        for var in table.variables:
            out[f"var.{var.name}"] = self.arrays.get(
                f"{machine_name}.var.{var.name}", lane)
        return out

    def load_lane(self, machine_name: str, lane: int,
                  store: Dict[str, Any]) -> None:
        """Overwrite one lane's machine state from a scalar store
        snapshot (the authoritative-state fallback path)."""
        idx = self._machine_idx(machine_name)
        table = self.tables[idx]
        state = store["state"]
        if state not in table.state_index:
            raise StateMachineError(
                f"{machine_name}: cannot load illegal state {state!r}")
        self.arrays.set(f"{machine_name}.state", lane,
                        table.state_index[state])
        for var in table.variables:
            self.arrays.set(f"{machine_name}.var.{var.name}", lane,
                            store[f"var.{var.name}"])

    def _machine_idx(self, machine_name: str) -> int:
        try:
            return self._by_name[machine_name]
        except KeyError:
            raise StateMachineError(f"no machine {machine_name!r}") from None

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, event: Any) -> Dict[int, List[Verdict]]:
        """Feed one event to every *subscribed* machine across all lanes.

        Machine relevance comes from the precompiled subscription
        tables, exactly as in ``ArtemisMonitor._steps``; machines are
        stepped in declaration order so multi-machine verdict order
        matches the scalar monitor. Returns ``{lane: [verdicts...]}``
        (lanes with no verdicts are absent).
        """
        relevant = self.dispatch.get(event.task, self.wildcard_set)
        verdicts: Dict[int, List[Verdict]] = {}
        for idx in range(len(self.machines)):
            if idx in relevant:
                self.step_machine(self.machines[idx].name, event,
                                  _out=verdicts)
        return verdicts

    def step_machine(self, machine_name: str, event: Any,
                     _out: Optional[Dict[int, List[Verdict]]] = None,
                     collect: bool = True) -> Dict[int, List[Verdict]]:
        """Feed one event to one machine across all lanes (the replay
        driver's entry point — the tap stream already encodes dispatch
        and shedding decisions).

        ``collect=False`` skips per-lane ``Verdict`` materialization and
        only maintains the amortized :attr:`emitted` rollup — the fast
        path for million-lane replay, where per-lane verdict lists would
        dominate the step cost.
        """
        idx = self._machine_idx(machine_name)
        out = _out if _out is not None else {}
        if self.backend == "numpy":
            self._step_numpy(idx, event, out, collect)
        else:
            self._step_python(idx, event, out)
        return out

    # ------------------------------------------------------------------
    # numpy backend
    # ------------------------------------------------------------------
    def _step_numpy(self, idx: int, event: Any,
                    out: Dict[int, List[Verdict]],
                    collect: bool = True) -> None:
        table = self.tables[idx]
        name = table.machine.name
        state_col = self.arrays.column(f"{name}.state")
        unmatched = _np.ones(self.n_lanes, dtype=bool)
        fired: List[Tuple[Any, str, Optional[int]]] = []
        for s_idx, rows in table.by_state.items():
            in_state = state_col == s_idx
            if not in_state.any():
                continue
            for target_idx, kind, task, guard, body in rows:
                if kind != ANY_EVENT and kind != event.kind:
                    continue
                if task is not None and task != event.task:
                    continue
                active = in_state & unmatched
                if not active.any():
                    break
                if guard is not None:
                    gval = self._eval_numpy(guard, event, name, active)
                    chosen = active & self._truthy(gval)
                else:
                    chosen = active
                if not chosen.any():
                    continue
                self._exec_numpy(body, chosen, event, name, fired)
                state_col[chosen] = target_idx
                unmatched &= ~chosen
        for mask, action, path in fired:
            key = (name, action, path)
            self.emitted[key] = self.emitted.get(key, 0) + int(mask.sum())
            if collect:
                for lane in _np.flatnonzero(mask):
                    out.setdefault(int(lane), []).append(
                        Verdict(name, action, path))

    def _truthy(self, value: Any) -> Any:
        if isinstance(value, _np.ndarray):
            return value.astype(bool)
        return _np.full(self.n_lanes, bool(value), dtype=bool)

    def _eval_numpy(self, expr: Any, event: Any, machine_name: str,
                    mask: Any) -> Any:
        """Evaluate an expression over the lane axis.

        ``mask`` marks the lanes whose value will actually be consumed;
        a division by zero only raises if it lands on one of them (the
        scalar interpreter's behaviour, lane-wise), and the right-hand
        side of ``and``/``or`` is checked only on lanes the left side
        does not already decide (short-circuit, masked).
        """
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self.arrays.column(f"{machine_name}.var.{expr.name}")
        if isinstance(expr, EventField):
            return _event_field(event, expr.field)
        if isinstance(expr, EventIs):
            return expr.kind == event.kind and (
                expr.task is None or expr.task == event.task)
        if isinstance(expr, HasData):
            return expr.key in (getattr(event, "data", None) or {})
        if isinstance(expr, ExternRef):
            # Peer machine columns live in the same SoA table; the tap
            # replay and the dispatch loop both step machines in the
            # monitor's dependency order, so the column already reflects
            # this event for upstream machines.
            return self.arrays.column(f"{expr.machine}.var.{expr.var}")
        if isinstance(expr, Not):
            return ~self._truthy(
                self._eval_numpy(expr.operand, event, machine_name, mask))
        if isinstance(expr, BinOp):
            op = expr.op
            if op in ("and", "or"):
                left = self._truthy(
                    self._eval_numpy(expr.left, event, machine_name, mask))
                rmask = mask & (left if op == "and" else ~left)
                if not rmask.any():
                    # The left side already decides every consumed lane:
                    # skip the right side entirely, so guarded reads like
                    # ``hasData(k) and data.k < v`` never touch missing
                    # event data (the scalar interpreter's behaviour).
                    return left
                right = self._truthy(
                    self._eval_numpy(expr.right, event, machine_name, rmask))
                return left & right if op == "and" else left | right
            left = self._eval_numpy(expr.left, event, machine_name, mask)
            right = self._eval_numpy(expr.right, event, machine_name, mask)
            return self._apply_numpy(op, left, right, mask)
        raise StateMachineError(f"unknown expression node {expr!r}")

    def _apply_numpy(self, op: str, left: Any, right: Any, mask: Any) -> Any:
        if op == "/":
            if isinstance(right, _np.ndarray):
                zero = right == 0
                if bool((zero & mask).any()):
                    raise StateMachineError(_DIV_ZERO_MSG)
                safe = _np.where(zero, 1, right)
                return left / safe
            if right == 0:
                if bool(_np.asarray(mask).any()):
                    raise StateMachineError(_DIV_ZERO_MSG)
                return _np.zeros(self.n_lanes)
            return left / right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        raise StateMachineError(f"unknown operator {op!r}")

    def _exec_numpy(self, body: tuple, mask: Any, event: Any,
                    machine_name: str,
                    fired: List[Tuple[Any, str, Optional[int]]]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                value = self._eval_numpy(stmt.expr, event, machine_name, mask)
                col = self.arrays.column(f"{machine_name}.var.{stmt.var}")
                if isinstance(value, _np.ndarray):
                    col[mask] = value[mask].astype(col.dtype)
                else:
                    col[mask] = value
            elif isinstance(stmt, Fail):
                fired.append((mask.copy(), stmt.action, stmt.path))
            elif isinstance(stmt, If):
                cond = self._truthy(
                    self._eval_numpy(stmt.cond, event, machine_name, mask))
                then_mask = mask & cond
                else_mask = mask & ~cond
                if then_mask.any():
                    self._exec_numpy(stmt.then, then_mask, event,
                                     machine_name, fired)
                if stmt.orelse and else_mask.any():
                    self._exec_numpy(stmt.orelse, else_mask, event,
                                     machine_name, fired)
            else:
                raise StateMachineError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # pure-Python backend (lane loop over the same compiled tables)
    # ------------------------------------------------------------------
    def _step_python(self, idx: int, event: Any,
                     out: Dict[int, List[Verdict]]) -> None:
        table = self.tables[idx]
        name = table.machine.name
        state_col = self.arrays.column(f"{name}.state")
        for lane in range(self.n_lanes):
            rows = table.by_state.get(state_col[lane])
            if not rows:
                continue
            for target_idx, kind, task, guard, body in rows:
                if kind != ANY_EVENT and kind != event.kind:
                    continue
                if task is not None and task != event.task:
                    continue
                if guard is not None and not self._eval_lane(
                        guard, event, name, lane):
                    continue
                self._exec_lane(body, event, name, lane, out)
                state_col[lane] = target_idx
                break

    def _eval_lane(self, expr: Any, event: Any, machine_name: str,
                   lane: int) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self.arrays.get(f"{machine_name}.var.{expr.name}", lane)
        if isinstance(expr, EventField):
            value = _event_field(event, expr.field)
            return value[lane] if isinstance(value, (list, tuple)) else value
        if isinstance(expr, EventIs):
            return expr.kind == event.kind and (
                expr.task is None or expr.task == event.task)
        if isinstance(expr, HasData):
            return expr.key in (getattr(event, "data", None) or {})
        if isinstance(expr, ExternRef):
            return self.arrays.get(f"{expr.machine}.var.{expr.var}", lane)
        if isinstance(expr, Not):
            return not self._eval_lane(expr.operand, event, machine_name, lane)
        if isinstance(expr, BinOp):
            op = expr.op
            if op == "and":
                return bool(self._eval_lane(expr.left, event, machine_name,
                                            lane)) and bool(
                    self._eval_lane(expr.right, event, machine_name, lane))
            if op == "or":
                return bool(self._eval_lane(expr.left, event, machine_name,
                                            lane)) or bool(
                    self._eval_lane(expr.right, event, machine_name, lane))
            left = self._eval_lane(expr.left, event, machine_name, lane)
            right = self._eval_lane(expr.right, event, machine_name, lane)
            if op == "/" and right == 0:
                raise StateMachineError(_DIV_ZERO_MSG)
            return {"+": lambda: left + right, "-": lambda: left - right,
                    "*": lambda: left * right, "/": lambda: left / right,
                    "<": lambda: left < right, "<=": lambda: left <= right,
                    ">": lambda: left > right, ">=": lambda: left >= right,
                    "==": lambda: left == right,
                    "!=": lambda: left != right}[op]()
        raise StateMachineError(f"unknown expression node {expr!r}")

    def _exec_lane(self, body: tuple, event: Any, machine_name: str,
                   lane: int, out: Dict[int, List[Verdict]]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                self.arrays.set(
                    f"{machine_name}.var.{stmt.var}", lane,
                    self._eval_lane(stmt.expr, event, machine_name, lane))
            elif isinstance(stmt, Fail):
                key = (machine_name, stmt.action, stmt.path)
                self.emitted[key] = self.emitted.get(key, 0) + 1
                out.setdefault(lane, []).append(
                    Verdict(machine_name, stmt.action, stmt.path))
            elif isinstance(stmt, If):
                branch = (stmt.then if self._eval_lane(
                    stmt.cond, event, machine_name, lane) else stmt.orelse)
                self._exec_lane(branch, event, machine_name, lane, out)
            else:
                raise StateMachineError(f"unknown statement {stmt!r}")
