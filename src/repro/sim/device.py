"""The simulated batteryless device.

Executes a runtime (ARTEMIS or a baseline) against an
:class:`~repro.energy.EnergyEnvironment`. The device is the only
component that advances simulation time and the only one that raises
:class:`~repro.errors.PowerFailure` — runtimes observe brown-outs solely
as an exception out of :meth:`Device.consume`, which is how real
firmware experiences them (execution simply stops).

Failure-atomicity contract: everything a runtime does *between* two
``consume`` calls is instantaneous and cannot be interrupted. A single
FRAM store on the real MCU is atomic; anything larger must not be. Task
commits therefore do **not** hide behind one consume call: the journaled
two-phase commit (:class:`~repro.nvm.transaction.Transaction`) pays one
``commit``-category consume per journal append, one for the checksummed
status flip, and one per apply step — so every interior step of a commit
is a distinct crash point fault injectors can target, and only the
status flip itself is atomic. ``commit``-category steps default to zero
duration (``PowerModel.commit_step_s``); fault injectors intercept the
call itself, so they can still place a brown-out inside a zero-cost
commit.

Scheduler hook: a :attr:`Device.scheduler` object (default ``None``)
sees every payment first via ``before_consume`` and may inject a
brown-out at that exact point — this is how the conformance checker
(:mod:`repro.verify`) drives exhaustive crash-schedule exploration
without subclassing. With no scheduler attached the hook is a single
``None`` check and the device behaves exactly as before.
"""

from __future__ import annotations

from typing import Optional

from repro.clock.clock import PersistentClock, SimClock
from repro.energy.environment import EnergyEnvironment
from repro.errors import PowerFailure, SimulationError
from repro.nvm.memory import NonVolatileMemory
from repro.sim.result import CATEGORIES, RunResult
from repro.sim.tracer import Tracer


class Device:
    """MCU + storage + harvester + persistent clock.

    Args:
        env: energy environment (continuous or harvested).
        nvm: non-volatile memory (fresh 256 KB FRAM by default).
        tracer: trace sink (a new one by default).
        clock_error: relative persistent-clock error after outages.
    """

    def __init__(
        self,
        env: EnergyEnvironment,
        nvm: Optional[NonVolatileMemory] = None,
        tracer: Optional[Tracer] = None,
        clock_error: float = 0.0,
        seed: int = 0,
    ):
        self.env = env
        self.nvm = nvm if nvm is not None else NonVolatileMemory()
        self.sim_clock = SimClock()
        self.clock = PersistentClock(self.sim_clock, self.nvm, clock_error, seed)
        self.trace = tracer if tracer is not None else Tracer()
        self.result = RunResult()
        self._alive = True
        #: Optional consume scheduler (see :mod:`repro.verify.schedule`).
        #: When set, every energy payment is first offered to
        #: ``scheduler.before_consume(duration_s, power_w, category)``;
        #: a True return injects a brown-out at that exact point.
        #: ``None`` (the default) leaves every code path untouched.
        self.scheduler = None

    # ------------------------------------------------------------------
    # Interface used by runtimes
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Persistent-clock time (what intermittent software can read)."""
        return self.clock.now()

    def stored_energy(self) -> float:
        """Usable energy before brown-out (the §4.2.2 energy probe)."""
        return self.env.usable_energy()

    def consume(self, duration_s: float, power_w: float, category: str) -> None:
        """Run the MCU for ``duration_s`` at ``power_w``.

        Harvesting continues while the device runs; only the net draw
        depletes the capacitor. If stored energy runs out mid-way, time
        advances to the instant of death, the partial cost is accounted,
        and :class:`~repro.errors.PowerFailure` is raised.
        """
        if self.scheduler is not None and self.scheduler.before_consume(
                duration_s, power_w, category):
            self._scheduled_failure(category)
        if category not in CATEGORIES:
            raise SimulationError(f"unknown consumption category {category!r}")
        if duration_s < 0 or power_w < 0:
            raise SimulationError("consume() arguments must be non-negative")
        if not self._alive:
            raise SimulationError("consume() on a dead device; reboot first")
        if duration_s == 0.0:
            return

        t = self.sim_clock.now()
        if self.env.is_continuous:
            self._account(duration_s, power_w, category)
            self.env.consume(duration_s * power_w)
            return

        harvest_w = self.env.harvester.power_at(t)
        net_w = power_w - harvest_w
        if net_w <= 0:
            # Harvest covers the load; surplus charges the capacitor.
            self.env.harvest(t, t + duration_s)
            self.env.consume(duration_s * power_w)
            self._account(duration_s, power_w, category)
            return

        usable = self.env.capacitor.usable_energy
        time_to_die = usable / net_w
        if time_to_die >= duration_s:
            self.env.harvest(t, t + duration_s)
            self.env.consume(duration_s * power_w)
            self._account(duration_s, power_w, category)
            return

        # Brown-out mid-step.
        self.env.harvest(t, t + time_to_die)
        self.env.consume(time_to_die * power_w)
        self._account(time_to_die, power_w, category)
        self._alive = False
        died_at = self.sim_clock.now()
        self.trace.record(died_at, "power_failure", category=category)
        raise PowerFailure(died_at)

    def consume_energy(self, energy_j: float, category: str) -> None:
        """Instantaneous draw (e.g. a radio wake burst)."""
        if self.scheduler is not None and self.scheduler.before_consume(
                0.0, 0.0, category):
            self._scheduled_failure(category)
        if category not in CATEGORIES:
            raise SimulationError(f"unknown consumption category {category!r}")
        if energy_j < 0:
            raise SimulationError("energy must be non-negative")
        self.result.energy_j[category] += min(energy_j, self.env.usable_energy())
        if not self.env.consume(energy_j):
            self._alive = False
            died_at = self.sim_clock.now()
            self.trace.record(died_at, "power_failure", category=category)
            raise PowerFailure(died_at)

    def _scheduled_failure(self, category: str) -> None:
        """Injected brown-out, placed by the attached scheduler.

        Like the :mod:`repro.sim.faults` devices, the failure lands
        *before* the payment's work happens, so the scheduler's crash
        points coincide exactly with the fault injectors'.
        """
        self._alive = False
        died_at = self.sim_clock.now()
        self.trace.record(died_at, "power_failure", category=category,
                          injected=True)
        raise PowerFailure(died_at)

    def _account(self, duration_s: float, power_w: float, category: str) -> None:
        self.sim_clock.advance(duration_s)
        self.result.on_time_s += duration_s
        self.result.busy_time_s[category] += duration_s
        self.result.energy_j[category] += duration_s * power_w

    # ------------------------------------------------------------------
    # Power-cycle management
    # ------------------------------------------------------------------
    def reboot(self) -> None:
        """Wait out the charging delay, then bring the device back up."""
        wait = self.env.recharge_to_boot(self.sim_clock.now())
        self.sim_clock.advance(wait)
        self.result.charge_time_s += wait
        self.result.reboots += 1
        self.clock.on_reboot()
        if self.nvm.access_log is not None:
            self.nvm.access_log.mark_reboot()
        self._alive = True
        self.trace.record(self.sim_clock.now(), "boot", charge_wait_s=round(wait, 3))

    @property
    def alive(self) -> bool:
        return self._alive

    # ------------------------------------------------------------------
    # Top-level execution loop
    # ------------------------------------------------------------------
    def run(
        self,
        runtime,
        runs: int = 1,
        max_time_s: Optional[float] = None,
        max_reboots: Optional[int] = None,
    ) -> RunResult:
        """Execute ``runs`` application iterations of ``runtime``.

        Stops early — with ``result.completed = False``, the paper's
        non-termination outcome — when ``max_time_s`` of simulated time
        or ``max_reboots`` power failures elapse first.
        """
        start = self.sim_clock.now()
        self.trace.record(start, "boot", first=True)
        while self.result.runs_completed < runs:
            try:
                runtime.boot(self)
                while not runtime.finished:
                    if self._budget_exhausted(start, max_time_s, max_reboots):
                        return self._give_up(start)
                    runtime.loop_iteration(self)
                self.result.runs_completed += 1
                self.trace.record(self.sim_clock.now(), "run_complete",
                                  run=self.result.runs_completed)
                if self.result.runs_completed < runs:
                    runtime.begin_run(self)
            except PowerFailure:
                if self._budget_exhausted(start, max_time_s, max_reboots):
                    return self._give_up(start)
                self.reboot()
        self.result.completed = True
        self.result.total_time_s = self.sim_clock.now() - start
        return self.result

    def _budget_exhausted(
        self, start: float, max_time_s: Optional[float], max_reboots: Optional[int]
    ) -> bool:
        if max_time_s is not None and self.sim_clock.now() - start >= max_time_s:
            return True
        if max_reboots is not None and self.result.reboots >= max_reboots:
            return True
        return False

    def _give_up(self, start: float) -> RunResult:
        self.trace.record(self.sim_clock.now(), "gave_up")
        self.result.completed = False
        self.result.total_time_s = self.sim_clock.now() - start
        return self.result
