"""Reusable fault-injection devices.

The energy model produces *organic* power failures; testing resilience
claims needs *placed* ones. These devices subclass
:class:`~repro.sim.Device` with deterministic or stochastic brown-out
injection while otherwise running on continuous power, so a failure
lands exactly where the test wants it and nowhere else.

All injected failures participate in the normal protocol: the consume
call dies *before* its work happens, the trace records ``power_failure``,
and ``reboot()`` brings the device back instantly (no charging delay —
the timing dimension is the energy model's job, not the fault
injector's; combine with real environments when both matter).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple, Union

from repro.energy.environment import EnergyEnvironment
from repro.errors import PowerFailure, SimulationError
from repro.sim.device import Device


class _InjectingDevice(Device):
    """Shared machinery: continuous power + pre-work failure injection."""

    def __init__(self):
        super().__init__(EnergyEnvironment.continuous())

    def _die(self, category: str) -> None:
        self._alive = False
        self.trace.record(self.sim_clock.now(), "power_failure",
                          category=category, injected=True)
        raise PowerFailure(self.sim_clock.now())

    def reboot(self) -> None:
        self.result.reboots += 1
        self.clock.on_reboot()
        self._alive = True
        self.trace.record(self.sim_clock.now(), "boot", injected=True)

    # Subclasses decide whether a given consume dies.
    def _should_fail(self, duration_s: float, power_w: float,
                     category: str) -> bool:
        raise NotImplementedError

    def consume(self, duration_s: float, power_w: float, category: str) -> None:
        if self._should_fail(duration_s, power_w, category):
            self._die(category)
        super().consume(duration_s, power_w, category)


class FailAtIndices(_InjectingDevice):
    """Dies at the given 1-based global consume-call indices."""

    def __init__(self, indices: Iterable[int]):
        super().__init__()
        self.indices: Set[int] = set(indices)
        self.calls = 0

    def _should_fail(self, duration_s, power_w, category) -> bool:
        self.calls += 1
        return self.calls in self.indices


class FailAtCategoryIndices(_InjectingDevice):
    """Dies at 1-based per-category consume indices, e.g.
    ``{"monitor": {3}}`` kills the third monitor-time payment."""

    def __init__(self, fail_at: Dict[str, Set[int]]):
        super().__init__()
        self.fail_at = {k: set(v) for k, v in fail_at.items()}
        self.calls: Dict[str, int] = {}

    def _should_fail(self, duration_s, power_w, category) -> bool:
        n = self.calls.get(category, 0) + 1
        self.calls[category] = n
        return n in self.fail_at.get(category, ())


class FailRandomly(_InjectingDevice):
    """Each consume call dies with probability ``p`` (seeded)."""

    def __init__(self, p: float, seed: int = 0, max_failures: Optional[int] = None):
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise SimulationError("failure probability must be in [0, 1]")
        self.p = p
        self._rng = random.Random(seed)
        self.max_failures = max_failures
        self.failures = 0

    def _should_fail(self, duration_s, power_w, category) -> bool:
        if self.max_failures is not None and self.failures >= self.max_failures:
            return False
        if self._rng.random() < self.p:
            self.failures += 1
            return True
        return False


class FailDuringCommit(_InjectingDevice):
    """Dies at the given 1-based *commit-step* indices.

    Every journal write, the checksummed status flip, and every apply
    step of a journaled two-phase commit pays energy in the ``commit``
    category; this device counts only those payments, so a test can
    place a brown-out precisely inside a commit — e.g. between the
    journal being sealed and its entries being applied — and assert
    that boot-time recovery rolls the commit back or forward correctly.
    """

    def __init__(self, indices: Iterable[int]):
        super().__init__()
        self.indices: Set[int] = set(indices)
        self.steps = 0

    def _should_fail(self, duration_s, power_w, category) -> bool:
        if category != "commit":
            return False
        self.steps += 1
        return self.steps in self.indices


class BitFlipDevice(_InjectingDevice):
    """Silently corrupts NVM cells at given 1-based consume indices.

    ``flips`` maps a consume-call index to the cell name (or names) to
    corrupt via :meth:`~repro.nvm.memory.NonVolatileMemory.corrupt` just
    before that call runs: reads keep succeeding with plausible garbage
    and only per-cell checksums can tell. The injection is recorded as a
    ``bit_flip`` trace event for test diagnostics — recovery code never
    looks at the trace. ``crash_at`` optionally adds a brown-out at a
    consume index so the next boot's recovery pass gets a chance to
    detect the damage (corruption scheduled for the crashing call lands
    before the device dies). Cells must already be allocated when their
    flip fires.
    """

    def __init__(
        self,
        flips: Dict[int, Union[str, Sequence[str]]],
        crash_at: Optional[int] = None,
        bit: int = 0,
    ):
        super().__init__()
        self.flips: Dict[int, Tuple[str, ...]] = {
            idx: (cells,) if isinstance(cells, str) else tuple(cells)
            for idx, cells in flips.items()
        }
        self.crash_at = crash_at
        self.bit = bit
        self.calls = 0

    def consume(self, duration_s: float, power_w: float, category: str) -> None:
        self.calls += 1
        for cell in self.flips.get(self.calls, ()):
            self.nvm.corrupt(cell, bit=self.bit)
            self.trace.record(self.sim_clock.now(), "bit_flip",
                              cell=cell, injected=True)
        super().consume(duration_s, power_w, category)

    def _should_fail(self, duration_s, power_w, category) -> bool:
        return self.crash_at is not None and self.calls == self.crash_at


class FailDuringTasks(_InjectingDevice):
    """Dies on the first N 'app' payments of each named task.

    Task attribution uses the most recent ``task_start`` trace record,
    so it composes with any runtime that traces task starts (all of the
    runtimes in this package do).
    """

    def __init__(self, times_per_task: Dict[str, int]):
        super().__init__()
        self.remaining = dict(times_per_task)

    def _current_task(self) -> Optional[str]:
        last = self.trace.last("task_start")
        return last.detail.get("task") if last else None

    def _should_fail(self, duration_s, power_w, category) -> bool:
        if category != "app":
            return False
        task = self._current_task()
        if task is None:
            return False
        left = self.remaining.get(task, 0)
        if left > 0:
            self.remaining[task] = left - 1
            return True
        return False
