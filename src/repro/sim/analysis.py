"""Trace analysis: statistics and timelines from execution traces.

Benchmarks and examples derive their figures from raw traces; this
module centralises the common derivations — per-task execution
statistics, attempt counts, inter-task delays (the quantity MITD
constrains), action summaries, and an ASCII timeline like Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.tracer import TraceEvent, Tracer


@dataclass
class TaskStats:
    """Execution statistics of one task across a trace."""

    task: str
    starts: int = 0
    completions: int = 0
    skips: int = 0
    total_busy_s: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def attempts_wasted(self) -> int:
        """Starts that never reached completion (power failures or
        monitor-forced redirections)."""
        return self.starts - self.completions

    @property
    def mean_duration_s(self) -> float:
        if not self.durations:
            return 0.0
        return sum(self.durations) / len(self.durations)


def task_statistics(trace: Tracer) -> Dict[str, TaskStats]:
    """Aggregate per-task start/end/skip counts and durations."""
    stats: Dict[str, TaskStats] = {}
    open_start: Dict[str, float] = {}
    for event in trace:
        task = event.detail.get("task")
        if task is None:
            continue
        entry = stats.setdefault(task, TaskStats(task))
        if event.kind == "task_start":
            entry.starts += 1
            open_start[task] = event.t
        elif event.kind == "task_end":
            entry.completions += 1
            started = open_start.pop(task, None)
            if started is not None:
                duration = event.t - started
                entry.durations.append(duration)
                entry.total_busy_s += duration
        elif event.kind == "task_skip":
            entry.skips += 1
    return stats


def action_summary(trace: Tracer) -> Dict[str, int]:
    """How many times each corrective action fired."""
    summary: Dict[str, int] = {}
    for event in trace.of_kind("monitor_action"):
        action = event.detail.get("action", "?")
        summary[action] = summary.get(action, 0) + 1
    return summary


def inter_task_delays(trace: Tracer, producer: str, consumer: str) -> List[float]:
    """Delays from each ``producer`` completion to the next ``consumer``
    start — the quantity an MITD property bounds."""
    delays: List[float] = []
    last_end: Optional[float] = None
    for event in trace:
        task = event.detail.get("task")
        if event.kind == "task_end" and task == producer:
            last_end = event.t
        elif event.kind == "task_start" and task == consumer and last_end is not None:
            delays.append(event.t - last_end)
            last_end = None
    return delays


def reboot_intervals(trace: Tracer) -> List[float]:
    """Durations between consecutive power failures (on-time windows)."""
    failure_times = [e.t for e in trace.of_kind("power_failure")]
    return [b - a for a, b in zip(failure_times, failure_times[1:])]


def charge_waits(trace: Tracer) -> List[float]:
    """Observed charging delays, from boot records."""
    return [e.detail["charge_wait_s"] for e in trace.of_kind("boot")
            if "charge_wait_s" in e.detail]


@dataclass(frozen=True)
class PathAttempt:
    """One contiguous attempt at executing a path."""

    path: int
    start_t: float
    end_t: float
    outcome: str  # "completed" | "restarted" | "skipped" | "open"


def path_attempts(trace: Tracer) -> List[PathAttempt]:
    """Segment the trace into path attempts (the rows of Figure 13)."""
    attempts: List[PathAttempt] = []
    current_path: Optional[int] = None
    start_t = 0.0
    last_t = 0.0

    def close(outcome: str, t: float) -> None:
        nonlocal current_path
        if current_path is not None:
            attempts.append(PathAttempt(current_path, start_t, t, outcome))
            current_path = None

    for event in trace:
        path = event.detail.get("path")
        last_t = event.t
        if event.kind == "task_start":
            if current_path is None or path != current_path:
                close("restarted", event.t)
                current_path = path
                start_t = event.t
        elif event.kind == "path_restart":
            if path == current_path:
                close("restarted", event.t)
        elif event.kind == "path_skip":
            if path == current_path:
                close("skipped", event.t)
        elif event.kind == "path_complete":
            if path == current_path:
                close("completed", event.t)
    close("open", last_t)
    return attempts


def render_timeline(trace: Tracer, width: int = 72) -> str:
    """ASCII rendering of path attempts over time (Figure 13 style).

    Each row is one path attempt; the bar spans its share of the total
    trace duration, annotated with the outcome.
    """
    attempts = path_attempts(trace)
    if not attempts:
        return "(empty trace)"
    t_max = max(a.end_t for a in attempts) or 1.0
    marks = {"completed": "#", "restarted": "~", "skipped": "x", "open": "?"}
    lines = [f"timeline over {t_max:.1f}s  (#=completed ~=restarted x=skipped)"]
    for a in attempts:
        left = int(width * a.start_t / t_max)
        span = max(1, int(width * (a.end_t - a.start_t) / t_max))
        bar = " " * left + marks[a.outcome] * span
        lines.append(
            f"path {a.path} |{bar:<{width}}| "
            f"{a.start_t:9.1f}-{a.end_t:9.1f}s {a.outcome}"
        )
    return "\n".join(lines)


def compare_traces(a: Tracer, b: Tracer) -> List[Tuple[int, TraceEvent, TraceEvent]]:
    """First divergences between two traces (for differential tests).

    Returns up to 10 index/event pairs where kind or task differ.
    """
    diffs = []
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea.kind != eb.kind or ea.detail.get("task") != eb.detail.get("task"):
            diffs.append((i, ea, eb))
            if len(diffs) >= 10:
                break
    return diffs
