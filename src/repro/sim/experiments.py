"""Declarative experiment sweeps.

The benchmark harness repeats one pattern constantly: build a fresh
device + runtime for each point of a parameter grid, run it under a
budget, and extract a few metrics. This module factors that pattern so
sweeps are declarative, deterministic, and tabulable::

    sweep = Sweep(
        factors={"delay_s": [60, 120, 360], "system": ["artemis", "mayfly"]},
        build=lambda p: make_deployment(p["system"], p["delay_s"]),
        metrics={
            "completed": lambda dev, res: res.completed,
            "time_s": lambda dev, res: res.total_time_s,
        },
        max_time_s=4 * 3600,
    )
    table = sweep.run()
    print(format_rows(table))

``build`` returns ``(device, runtime)``; each grid point runs exactly
once (simulations are deterministic — vary a ``seed`` factor for
replications).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.device import Device
from repro.sim.result import RunResult

BuildFn = Callable[[Dict[str, Any]], Tuple[Device, Any]]
MetricFn = Callable[[Device, RunResult], Any]


class SweepPointError(ReproError):
    """A grid point's build or run failed.

    Carries the offending point's factor values (``point``) and the
    stage that failed (``"build"``, ``"run"``, or ``"metric"``), so a
    failure deep inside a 200-point sweep names the configuration that
    caused it instead of surfacing as a bare traceback.
    """

    def __init__(self, stage: str, point: Mapping[str, Any], cause: str):
        self.stage = stage
        self.point = dict(point)
        self.cause = cause
        factors = ", ".join(f"{k}={v!r}" for k, v in self.point.items())
        super().__init__(
            f"sweep point [{factors}] failed during {stage}: {cause}"
        )


@dataclass
class Sweep:
    """A full-factorial experiment grid.

    Attributes:
        factors: factor name → list of levels; the grid is their product.
        build: constructs a fresh ``(device, runtime)`` per point.
        metrics: metric name → extractor over the finished run.
        runs / max_time_s / max_reboots: forwarded to ``Device.run``.
        batch_layout: struct-of-arrays layout token when the sweep's
            rows are produced by the batched fleet core
            (:meth:`repro.sim.batch.BatchArrays.layout_token`); mixed
            into the result-cache fingerprint so rows computed under
            one batch layout/dtype set can never be replayed under
            another. ``None`` for ordinary scalar sweeps.
    """

    factors: Mapping[str, Sequence[Any]]
    build: BuildFn
    metrics: Mapping[str, MetricFn]
    runs: int = 1
    max_time_s: Optional[float] = None
    max_reboots: Optional[int] = None
    batch_layout: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.factors:
            raise ReproError("sweep needs at least one factor")
        if not self.metrics:
            raise ReproError("sweep needs at least one metric")
        for name, levels in self.factors.items():
            if not list(levels):
                raise ReproError(f"factor {name!r} has no levels")

    def points(self) -> List[Dict[str, Any]]:
        """All grid points in deterministic (row-major) order."""
        names = list(self.factors)
        combos = itertools.product(*(self.factors[n] for n in names))
        return [dict(zip(names, combo)) for combo in combos]

    def run_point(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one grid point; returns factors + metrics as one row.

        Failures are re-raised as :class:`SweepPointError` carrying the
        point's factor values, so the offending configuration is named.
        """
        try:
            device, runtime = self.build(dict(point))
        except Exception as exc:
            raise SweepPointError("build", point, repr(exc)) from exc
        try:
            result = device.run(runtime, runs=self.runs,
                                max_time_s=self.max_time_s,
                                max_reboots=self.max_reboots)
        except Exception as exc:
            raise SweepPointError("run", point, repr(exc)) from exc
        row = dict(point)
        for name, extract in self.metrics.items():
            try:
                row[name] = extract(device, result)
            except Exception as exc:
                raise SweepPointError("metric", point,
                                      f"{name}: {exc!r}") from exc
        return row

    def run(self, parallel: Optional[int] = None,
            cache: Any = None) -> List[Dict[str, Any]]:
        """Execute the whole grid.

        Args:
            parallel: shard the grid across this many worker processes
                (``None``/``1`` = in-process serial execution). Rows come
                back in the same deterministic order as :meth:`points`
                either way, and each point is built fresh in exactly one
                process, so the table is identical to a serial run.
            cache: optional content-addressed result cache — ``True``
                for the default ``.repro_cache/`` directory, a path, or
                a :class:`repro.sim.pool.ResultCache`. Cached rows are
                keyed by the sweep's code fingerprint plus the point's
                factors; any code or configuration change misses.
        """
        if parallel in (None, 0, 1) and cache is None:
            return [self.run_point(p) for p in self.points()]
        from repro.sim.pool import run_sweep  # lazy: pool imports Sweep types

        return run_sweep(self, jobs=parallel or 1, cache=cache)


def format_rows(rows: Sequence[Mapping[str, Any]],
                columns: Optional[Sequence[str]] = None,
                float_digits: int = 3) -> str:
    """Fixed-width text table of sweep rows."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0])

    def fmt(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines = ["  ".join(col.ljust(w) for col, w in zip(columns, widths))]
    lines.append("-" * len(lines[0]))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def pivot(rows: Sequence[Mapping[str, Any]], index: str, column: str,
          value: str) -> Dict[Any, Dict[Any, Any]]:
    """Reshape rows into ``{index_level: {column_level: value}}`` —
    e.g. delay → system → time for a Figure 12-style series."""
    out: Dict[Any, Dict[Any, Any]] = {}
    for row in rows:
        out.setdefault(row[index], {})[row[column]] = row[value]
    return out


# ---------------------------------------------------------------------------
# Common metric extractors
# ---------------------------------------------------------------------------


def metric_completed(device: Device, result: RunResult) -> bool:
    """Did the run complete (False = non-termination)?"""
    return result.completed


def metric_total_time(device: Device, result: RunResult) -> float:
    """Total simulated time of the run, in seconds."""
    return result.total_time_s


def metric_total_energy_mj(device: Device, result: RunResult) -> float:
    """Total consumed energy, in millijoules."""
    return result.total_energy_j * 1e3

def metric_reboots(device: Device, result: RunResult) -> int:
    """Number of power-failure reboots during the run."""
    return result.reboots


def metric_action_count(action: str) -> MetricFn:
    """Factory: count monitor actions of one kind."""

    def extract(device: Device, result: RunResult) -> int:
        return sum(1 for e in device.trace.of_kind("monitor_action")
                   if e.detail.get("action") == action)

    return extract
