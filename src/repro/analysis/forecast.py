"""Harvest forecasting for anticipatory degradation.

The :class:`~repro.core.degradation.PredictiveDegradationController`
needs an answer to one question at each path boundary: *how much energy
will arrive over the next path traversal?* Two estimators, composed in
one object:

* **windowed EWMA** — observed ``(t, power)`` samples inside a trailing
  window, folded oldest-to-newest with exponential weighting. Always
  available once ``min_samples`` observations have landed; tracks
  regime changes (a washout, an office light switching off) with a lag
  set by ``alpha``.
* **trace-replay lookahead** — when the deployment knows its harvest
  profile (a recorded :mod:`repro.energy.traces` trace driving a
  :class:`~repro.energy.harvester.TraceHarvester`), integrate the trace
  itself over the lookahead horizon. Exact for piecewise-constant
  replay, including upcoming outages EWMA cannot see.

The forecaster is deliberately *not* given the simulator's harvester
object by default — a deployed device only sees its own charging
current. ``from_trace`` is the opt-in for profile-informed deployments
(the AURORA-style telemetry-fed loop); plain ``HarvestForecaster()``
models the blind device.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Tuple

from repro.energy.harvester import Harvester, TraceHarvester
from repro.errors import ReproError


class HarvestForecaster:
    """Windowed-EWMA harvest estimator with optional trace lookahead.

    Args:
        window_s: trailing window; samples older than this (relative to
            the newest) are dropped.
        alpha: EWMA smoothing factor in (0, 1]; higher tracks faster.
        trace: optional known harvest profile for replay lookahead.
        min_samples: observations required before the EWMA is trusted
            (:attr:`ready`); below this the controller falls back to
            reactive hysteresis.
    """

    def __init__(self, window_s: float = 60.0, alpha: float = 0.3,
                 trace: Optional[Harvester] = None, min_samples: int = 2):
        if window_s <= 0:
            raise ReproError("forecast window must be > 0")
        if not 0.0 < alpha <= 1.0:
            raise ReproError("EWMA alpha must be in (0, 1]")
        if min_samples < 1:
            raise ReproError("min_samples must be >= 1")
        self.window_s = window_s
        self.alpha = alpha
        self.trace = trace
        self.min_samples = min_samples
        self._samples: Deque[Tuple[float, float]] = deque()

    @classmethod
    def from_trace(cls, samples: Iterable[Tuple[float, float]],
                   loop: bool = True, **kwargs) -> "HarvestForecaster":
        """Forecaster with replay lookahead over a recorded trace
        (``repro.energy.traces`` sample lists)."""
        return cls(trace=TraceHarvester(list(samples), loop=loop), **kwargs)

    # -- observation ------------------------------------------------------
    def observe(self, t: float, power_w: float) -> None:
        """Record one harvest-power sample (monotone non-decreasing
        times; out-of-order samples are dropped)."""
        if self._samples and t < self._samples[-1][0]:
            return
        self._samples.append((t, power_w))
        horizon = t - self.window_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def ready(self) -> bool:
        """Enough observations to forecast? (Trace-backed forecasters
        are always ready — the profile itself is the estimate.)"""
        return (self.trace is not None
                or len(self._samples) >= self.min_samples)

    # -- estimation -------------------------------------------------------
    @property
    def estimate_w(self) -> float:
        """Current EWMA of observed harvest power (0 with no samples)."""
        if not self._samples:
            return 0.0
        value = self._samples[0][1]
        for _, power in list(self._samples)[1:]:
            value = self.alpha * power + (1.0 - self.alpha) * value
        return value

    def forecast_power_w(self, t: float, horizon_s: float) -> float:
        """Mean harvest power expected over ``[t, t + horizon]``."""
        if horizon_s <= 0:
            return self.estimate_w
        return self.forecast_energy_j(t, horizon_s) / horizon_s

    def forecast_energy_j(self, t: float, horizon_s: float) -> float:
        """Energy expected to arrive over ``[t, t + horizon]`` joules.

        Trace lookahead when a profile is known, EWMA persistence
        otherwise.
        """
        if horizon_s <= 0:
            return 0.0
        if self.trace is not None:
            return self.trace.energy_between(t, t + horizon_s)
        return self.estimate_w * horizon_s
