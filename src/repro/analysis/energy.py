"""Static worst-case energy/latency analysis of compiled monitors.

ETAP-style predictive analysis for the monitored intermittent system:
walk each compiled :class:`~repro.statemachine.model.StateMachine` plus
the :class:`~repro.energy.power.TaskCost`/`PowerModel` tables and derive

* **per-monitor bounds** — worst-case energy and latency charged per
  dispatched event, from the same per-task subscription tables the
  dispatch fast path executes (:func:`repro.core.monitor.
  subscription_tables`), refined path-sensitively over guarded
  transitions (:func:`repro.statemachine.analysis.
  worst_case_event_cost`);
* **per-path budgets** — the bounds composed with the task graph: what
  one traversal of each path costs in joules and on-seconds, with the
  full monitor set live;
* **a closed-form non-termination predicate** parameterized by charging
  delay, cross-checked against the Figure 12 sweep (see
  ``tests/test_analysis_energy.py`` and ``EXPERIMENTS.md``).

Soundness of the per-event bound: the simulator charges exactly
``monitor_call_base_s + |subscribers(task)| * monitor_per_property_s``
seconds at ``overhead_power_w`` per dispatched event (see
``ArtemisRuntime._call_monitor`` and ``ArtemisMonitor._steps``); the
analyzer computes the same quantity from the same frozen tables with
every machine live, so shedding can only make the observed cost lower —
the static bound never under-estimates (property-tested in
``tests/test_predictive_soundness.py``).

Non-termination has two statically detectable causes, and the per-path
threshold is the minimum over both:

* **energy infeasibility** — a task's gross re-executed unit (start
  and end runtime transitions + both monitor calls + fixed energy +
  duration x power + commit steps; a crash anywhere before the journal
  seals re-runs the whole task) exceeds one capacitor cycle's usable
  energy net of harvesting during the unit. With the Figure 12
  environment harvesting ``E_cycle / delay`` watts, the unit fits iff
  ``gross - h * T_unit <= E_cycle``, giving the critical delay
  ``E_cycle * T_unit / (gross - E_cycle)`` (infinite when the gross
  unit already fits a cycle).
* **timing livelock** — a machine fails a lateness-guarded start
  (``timestamp - ref > C``) with ``restartPath``/``restartTask`` and has
  no escaping failure action (``skipPath``/``skipTask``/
  ``completePath``) anywhere: once a charging gap exceeds the window,
  every retry re-violates and the path never completes. The predicate
  is conservative toward non-termination: the threshold subtracts the
  whole path's on-time (an upper bound on how much of the window
  execution itself consumes), so a delay exactly equal to the window —
  the paper's Mayfly-at-5-minutes DNF — is predicted non-terminating.

The monitor table also yields **auto-derived degradation priorities**:
rank sheddable machines by worst-case cost per covered task
(:func:`derive_priorities`), most expensive first, and substitute them
for hand-written ``priority`` modifiers when the spec carries none
(:func:`with_derived_priorities`) — the derived numbers flow through
``generate_machines`` into both code generators exactly like authored
ones.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.generator import build_monitor_plan
from repro.core.monitor import subscription_tables
from repro.core.properties import Property, PropertySet
from repro.energy.capacitor import Capacitor
from repro.energy.power import PowerModel
from repro.errors import ReproError
from repro.statemachine.analysis import worst_case_event_cost
from repro.statemachine.model import (
    START_TASK,
    BinOp,
    Const,
    EventField,
    Expr,
    Fail,
    Not,
    StateMachine,
    Var,
    failure_actions,
    _flatten,
)
from repro.taskgraph.app import Application

#: Failure actions that break a restart loop (the machine can always
#: make the runtime move past the violating task/path).
ESCAPE_ACTIONS = frozenset({"skipPath", "skipTask", "completePath"})

#: Failure actions that re-run the violating work — candidates for a
#: timing livelock when no escape exists.
RESTART_ACTIONS = frozenset({"restartPath", "restartTask"})

#: Worst-case journal steps of one task commit (stage retry-clear +
#: emitted + end_ts + status + start_checked, seal, apply each, clear).
#: Only charged when ``PowerModel.commit_step_s`` is non-zero.
COMMIT_STEPS_PER_TASK = 12


# ---------------------------------------------------------------------------
# Report structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonitorBound:
    """Worst-case per-event and per-run cost of one compiled monitor.

    ``wc_event_s``/``wc_event_j`` are the seconds/joules the engine
    charges this machine per inspected event (the sound bound the
    soundness suite checks); ``wc_transitions``/``wc_ops`` are the
    path-sensitive structural detail (transitions scanned, expression/
    statement operations) behind the latency figure.
    """

    machine: str
    kind: str
    task: str
    path: Optional[int]
    priority: int
    sheddable: bool
    wildcard: bool
    subscribed_tasks: Tuple[str, ...]
    events_per_run: int
    wc_event_s: float
    wc_event_j: float
    wc_transitions: int
    wc_ops: int
    coverage: int

    @property
    def run_time_s(self) -> float:
        """Worst-case monitor seconds attributable per application run."""
        return self.events_per_run * self.wc_event_s

    @property
    def run_energy_j(self) -> float:
        """Worst-case monitor joules attributable per application run."""
        return self.events_per_run * self.wc_event_j

    @property
    def cost_per_coverage_j(self) -> float:
        """Per-run energy divided by distinct tasks covered — the
        auto-derived degradation ranking key (most expensive per unit of
        coverage sheds first)."""
        return self.run_energy_j / max(1, self.coverage)


@dataclass(frozen=True)
class TaskBound:
    """One task occurrence on one path, with its overheads composed in."""

    task: str
    subscribers: int
    event_s: float  #: monitor-call latency per dispatched event
    event_j: float  #: monitor-call energy per dispatched event
    attempt_s: float  #: on-time of the re-executed unit (start check + body)
    attempt_j: float  #: gross energy of one attempt (start check + body)
    total_s: float  #: full on-time incl. EndTask check and commit steps
    total_j: float  #: full energy incl. EndTask check and commit steps
    nonterm_delay_s: Optional[float]  #: energy-infeasibility threshold


@dataclass(frozen=True)
class LivelockRisk:
    """A lateness-guarded restart failure with no escaping action."""

    machine: str
    task: Optional[str]
    window_s: float
    action: str
    paths: Tuple[int, ...]


@dataclass(frozen=True)
class PathBudget:
    """Worst-case budget of one path traversal with all monitors live."""

    number: int
    tasks: Tuple[TaskBound, ...]
    energy_j: float
    on_time_s: float
    monitor_energy_j: float
    energy_threshold_s: Optional[float]
    livelock_threshold_s: Optional[float]
    livelocks: Tuple[LivelockRisk, ...]

    @property
    def threshold_s(self) -> Optional[float]:
        """Smallest charging delay predicted non-terminating for this
        path (``None`` = terminates at any delay)."""
        candidates = [t for t in (self.energy_threshold_s,
                                  self.livelock_threshold_s)
                      if t is not None]
        return min(candidates) if candidates else None

    def nonterminating_at(self, delay_s: float) -> bool:
        """Closed-form predicate: is this path statically non-
        terminating at the given charging delay? Conservative at the
        boundary (a delay exactly at the threshold is flagged)."""
        threshold = self.threshold_s
        return threshold is not None and delay_s >= threshold


# ---------------------------------------------------------------------------
# Timing-livelock detection
# ---------------------------------------------------------------------------


def _lateness_windows(expr: Optional[Expr]) -> List[float]:
    """Constants ``C`` of lateness comparisons ``(timestamp - ref) > C``
    (or ``>=``) anywhere inside a guard."""
    if expr is None:
        return []
    if isinstance(expr, Not):
        return _lateness_windows(expr.operand)
    if not isinstance(expr, BinOp):
        return []
    if expr.op in (">", ">="):
        gap, bound = expr.left, expr.right
        if (isinstance(gap, BinOp) and gap.op == "-"
                and isinstance(gap.left, EventField)
                and gap.left.field == "timestamp"
                and isinstance(gap.right, Var)
                and isinstance(bound, Const)
                and isinstance(bound.value, (int, float))):
            return [float(bound.value)]
        return []
    return _lateness_windows(expr.left) + _lateness_windows(expr.right)


def livelock_risks(machine: StateMachine, app: Application,
                   guarded_task: Optional[str] = None) -> List[LivelockRisk]:
    """Timing livelocks one machine can drive the runtime into.

    A risk needs (1) a StartTask-triggered transition whose guard
    contains a lateness window, (2) a ``restartPath``/``restartTask``
    failure in that transition's body, and (3) **no** escaping failure
    action anywhere in the machine — with an escape (e.g. the MITD
    ``maxAttempt`` escalation of §5.2) restarts are bounded and the
    machine cannot loop the path forever.
    """
    if any(f.action in ESCAPE_ACTIONS for f in failure_actions(machine)):
        return []
    risks: List[LivelockRisk] = []
    for transition in machine.transitions:
        if transition.trigger.kind != START_TASK:
            continue
        windows = _lateness_windows(transition.guard)
        if not windows:
            continue
        restarts = [s for s in _flatten(transition.body)
                    if isinstance(s, Fail) and s.action in RESTART_ACTIONS]
        if not restarts:
            continue
        task = transition.trigger.task or guarded_task
        paths: set = set()
        for fail in restarts:
            if fail.path is not None:
                paths.add(fail.path)
            elif task is not None:
                paths.update(p.number for p in app.paths_containing(task))
            else:
                paths.update(p.number for p in app.paths)
        risks.append(LivelockRisk(
            machine=machine.name,
            task=task,
            window_s=min(windows),
            action=restarts[0].action,
            paths=tuple(sorted(paths)),
        ))
    return risks


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


class EnergyReport:
    """Composed result of :func:`analyze` with live-set queries.

    Beyond the static tables, :meth:`path_energy_j` recomputes a path's
    worst-case energy for a reduced live-monitor set — what the
    :class:`~repro.core.degradation.PredictiveDegradationController`
    evaluates at each path boundary to decide how much monitoring the
    forecast budget affords.
    """

    def __init__(self, app: Application, power: PowerModel,
                 capacitor: Capacitor, monitors: List[MonitorBound],
                 paths: List[PathBudget],
                 subscriptions: Dict[str, Optional[FrozenSet[str]]],
                 commit_steps_per_task: int = COMMIT_STEPS_PER_TASK,
                 sub_owners: Optional[Dict[str, List[str]]] = None):
        self.app = app
        self.power = power
        self.capacitor = capacitor
        self.cycle_j = capacitor.usable_energy_per_cycle
        self.monitors = monitors
        self.paths = paths
        #: machine name -> subscribed task set (``None`` = wildcard).
        self.subscriptions = subscriptions
        self.commit_steps_per_task = commit_steps_per_task
        #: shared temporal sub-monitor -> owning root machines (empty
        #: when the property set has no temporal properties).
        self.sub_owners: Dict[str, List[str]] = dict(sub_owners or {})
        self._by_machine = {m.machine: m for m in monitors}
        self._by_number = {p.number: p for p in paths}

    # -- lookups ----------------------------------------------------------
    def monitor(self, machine: str) -> MonitorBound:
        try:
            return self._by_machine[machine]
        except KeyError:
            raise ReproError(f"no monitor bound for machine {machine!r}") \
                from None

    def path(self, number: int) -> PathBudget:
        try:
            return self._by_number[number]
        except KeyError:
            raise ReproError(f"no path budget for path {number}") from None

    # -- the sound per-event bound ---------------------------------------
    def subscribers(self, task: str,
                    shed: FrozenSet[str] = frozenset()) -> int:
        """How many live machines inspect the task's events."""
        count = 0
        for name, tasks in self.subscriptions.items():
            if name in shed:
                continue
            if tasks is None or task in tasks:
                count += 1
        return count

    def event_time_bound_s(self, task: str,
                           shed: FrozenSet[str] = frozenset()) -> float:
        """Worst-case monitor seconds one dispatched event of ``task``
        costs — exactly the quantity the engine spends."""
        return (self.power.monitor_call_base_s
                + self.subscribers(task, shed)
                * self.power.monitor_per_property_s)

    def event_energy_bound_j(self, task: str,
                             shed: FrozenSet[str] = frozenset()) -> float:
        """Worst-case monitor joules one dispatched event of ``task``
        costs (never under-estimates the simulated spend)."""
        return self.event_time_bound_s(task, shed) * self.power.overhead_power_w

    # -- live-set path budgets -------------------------------------------
    def path_energy_j(self, number: int,
                      shed: FrozenSet[str] = frozenset()) -> float:
        """Worst-case energy of one traversal of path ``number`` with
        the given machines shed (empty set = the static budget)."""
        budget = self.path(number)
        if not shed:
            return budget.energy_j
        total = 0.0
        power = self.power
        commit_s = self.commit_steps_per_task * power.commit_step_s
        for row in budget.tasks:
            cost = power.cost_of(row.task)
            event_s = self.event_time_bound_s(row.task, shed)
            overhead_s = 2 * (power.runtime_transition_s + event_s) + commit_s
            total += (overhead_s * power.overhead_power_w
                      + cost.fixed_energy_j
                      + cost.duration_s * cost.power_w)
        return total

    # -- the predicate ----------------------------------------------------
    def threshold_s(self) -> Optional[float]:
        """Smallest predicted non-termination delay across all paths."""
        candidates = [p.threshold_s for p in self.paths
                      if p.threshold_s is not None]
        return min(candidates) if candidates else None

    def nonterminating_paths(self, delay_s: float) -> List[int]:
        """Paths statically non-terminating at the given charging delay."""
        return [p.number for p in self.paths if p.nonterminating_at(delay_s)]

    # -- presentation -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "cycle_j": self.cycle_j,
            "monitors": [dataclasses.asdict(m) | {
                "run_time_s": m.run_time_s,
                "run_energy_j": m.run_energy_j,
                "cost_per_coverage_j": m.cost_per_coverage_j,
            } for m in self.monitors],
            "paths": [dataclasses.asdict(p) | {
                "threshold_s": p.threshold_s,
            } for p in self.paths],
            "threshold_s": self.threshold_s(),
        }

    def describe(self) -> str:
        lines = [
            f"usable energy per charge cycle: {self.cycle_j * 1e3:.3f} mJ",
            "",
            "per-monitor worst-case bounds (per dispatched event):",
            "  machine                        prio shed  ev_us  ev_uJ"
            "  trans  ops  run_mJ  cost/cov_uJ",
        ]
        for m in sorted(self.monitors, key=lambda b: b.machine):
            lines.append(
                f"  {m.machine:<30} {m.priority:>4} {'yes' if m.sheddable else ' no':>4}"
                f" {m.wc_event_s * 1e6:>6.1f} {m.wc_event_j * 1e6:>6.2f}"
                f" {m.wc_transitions:>6} {m.wc_ops:>4}"
                f" {m.run_energy_j * 1e3:>7.4f}"
                f" {m.cost_per_coverage_j * 1e6:>12.2f}"
            )
        lines.append("")
        lines.append("per-path budgets and non-termination thresholds:")
        for p in self.paths:
            threshold = p.threshold_s
            verdict = ("terminates at any charging delay" if threshold is None
                       else f"non-terminating for delay >= {threshold:.1f}s")
            lines.append(
                f"  path {p.number}: energy {p.energy_j * 1e3:.3f} mJ "
                f"(monitors {p.monitor_energy_j * 1e3:.3f} mJ), "
                f"on-time {p.on_time_s:.3f}s — {verdict}"
            )
            for risk in p.livelocks:
                lines.append(
                    f"    livelock: {risk.machine} {risk.action} with no "
                    f"escape, window {risk.window_s:.0f}s"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


def analyze(app: Application, props: Iterable[Property], power: PowerModel,
            capacitor: Optional[Capacitor] = None,
            commit_steps_per_task: int = COMMIT_STEPS_PER_TASK
            ) -> EnergyReport:
    """Statically bound the monitored application's energy and latency.

    Args:
        app: the task graph the monitors observe.
        props: validated properties (a :class:`PropertySet` or any
            iterable of properties).
        power: the per-task cost tables the simulator charges.
        capacitor: energy storage (defaults to the paper's 5.2 mF bank).
        commit_steps_per_task: worst-case journal steps per task commit.
    """
    if capacitor is None:
        from repro.energy.environment import default_capacitor

        capacitor = default_capacitor()
    prop_list = list(props)
    plan = build_monitor_plan(prop_list)
    machines = plan.machines
    wildcard_set, dispatch = subscription_tables(machines)

    def subscribers(task: str) -> int:
        return len(dispatch.get(task, wildcard_set))

    all_tasks = list(app.task_names)
    cycle_j = capacitor.usable_energy_per_cycle
    p_ov = power.overhead_power_w
    commit_s = commit_steps_per_task * power.commit_step_s

    # -- per-monitor bounds ----------------------------------------------
    subscriptions: Dict[str, Optional[FrozenSet[str]]] = {}
    monitors: List[MonitorBound] = []
    for idx, machine in enumerate(machines):
        prop = plan.prop_for(machine.name)
        wildcard = idx in wildcard_set
        subscribed = (None if wildcard
                      else frozenset(machine.referenced_tasks()))
        subscriptions[machine.name] = subscribed

        def inspects(task: str) -> bool:
            return subscribed is None or task in subscribed

        events = sum(2 for path in app.paths for task in path.task_names
                     if inspects(task))
        coverage = (len(all_tasks) if subscribed is None
                    else len(subscribed & set(all_tasks)) or 1)
        wc_transitions = wc_ops = 0
        for path in app.paths:
            for task in path.task_names:
                if not inspects(task):
                    continue
                for kind in ("startTask", "endTask"):
                    scanned, ops = worst_case_event_cost(
                        machine, kind, task, path=path.number)
                    wc_transitions = max(wc_transitions, scanned)
                    wc_ops = max(wc_ops, ops)
        if prop is None:
            # Shared temporal sub-monitor: serves every owner in
            # plan.sub_owners and is never shed on its own — shedding
            # is decided at the owning root properties.
            owners = plan.sub_owners.get(machine.name, [])
            owner_props = [plan.prop_for(o) for o in owners]
            kind = "tl-sub"
            task = min(p.task for p in owner_props if p is not None) \
                if any(owner_props) else ""
            path = None
            sheddable = False
        else:
            kind, task, path = prop.kind, prop.task, prop.path
            sheddable = type(prop).SUPPORTS_PRIORITY
        monitors.append(MonitorBound(
            machine=machine.name,
            kind=kind,
            task=task,
            path=path,
            priority=machine.priority,
            sheddable=sheddable,
            wildcard=wildcard,
            subscribed_tasks=(("*",) if subscribed is None
                              else tuple(sorted(subscribed))),
            events_per_run=events,
            wc_event_s=power.monitor_per_property_s,
            wc_event_j=power.monitor_per_property_s * p_ov,
            wc_transitions=wc_transitions,
            wc_ops=wc_ops,
            coverage=coverage,
        ))

    # -- timing-livelock risks -------------------------------------------
    risks: List[LivelockRisk] = []
    for machine in machines:
        prop = plan.prop_for(machine.name)
        risks.extend(livelock_risks(
            machine, app, guarded_task=prop.task if prop else None))

    # -- per-path budgets -------------------------------------------------
    paths: List[PathBudget] = []
    for path in app.paths:
        rows: List[TaskBound] = []
        for task in path.task_names:
            cost = power.cost_of(task)
            event_s = (power.monitor_call_base_s
                       + subscribers(task) * power.monitor_per_property_s)
            start_ovh_s = power.runtime_transition_s + event_s
            attempt_s = start_ovh_s + cost.duration_s
            attempt_j = (start_ovh_s * p_ov + cost.fixed_energy_j
                         + cost.duration_s * cost.power_w)
            total_s = attempt_s + power.runtime_transition_s + event_s + commit_s
            total_j = attempt_j + (power.runtime_transition_s + event_s
                                   + commit_s) * p_ov
            # The re-executed unit runs through the end-side monitor
            # call and the commit: a crash anywhere before the journal
            # seals re-runs the whole task, so the energy leg must fit
            # the *total*, not just the start-side attempt.
            if total_j <= cycle_j:
                nonterm = None
            elif total_s <= 0.0:
                nonterm = 0.0
            else:
                nonterm = cycle_j * total_s / (total_j - cycle_j)
            rows.append(TaskBound(
                task=task,
                subscribers=subscribers(task),
                event_s=event_s,
                event_j=event_s * p_ov,
                attempt_s=attempt_s,
                attempt_j=attempt_j,
                total_s=total_s,
                total_j=total_j,
                nonterm_delay_s=nonterm,
            ))
        on_time_s = sum(r.total_s for r in rows)
        energy_thresholds = [r.nonterm_delay_s for r in rows
                             if r.nonterm_delay_s is not None]
        path_risks = tuple(r for r in risks if path.number in r.paths)
        livelock_thresholds = [max(0.0, r.window_s - on_time_s)
                               for r in path_risks]
        paths.append(PathBudget(
            number=path.number,
            tasks=tuple(rows),
            energy_j=sum(r.total_j for r in rows),
            on_time_s=on_time_s,
            monitor_energy_j=sum(2 * r.event_j for r in rows),
            energy_threshold_s=(min(energy_thresholds)
                                if energy_thresholds else None),
            livelock_threshold_s=(min(livelock_thresholds)
                                  if livelock_thresholds else None),
            livelocks=path_risks,
        ))

    return EnergyReport(app, power, capacitor, monitors, paths,
                        subscriptions,
                        commit_steps_per_task=commit_steps_per_task,
                        sub_owners=plan.sub_owners)


# ---------------------------------------------------------------------------
# Auto-derived degradation priorities
# ---------------------------------------------------------------------------


def derive_priorities(report: EnergyReport) -> Dict[str, int]:
    """Cost-per-coverage priority ranking over sheddable monitors.

    Priority 0 (shed first) goes to the machine whose worst-case per-run
    energy buys the least coverage; ties break on machine name so the
    ranking is deterministic. Non-sheddable machines get no entry.

    Shared temporal sub-monitors (``report.sub_owners``) are priced
    exactly once: each sub's per-run energy is attributed to its
    *cheapest* sheddable owning root (ties on machine name). Charging
    every owner would double-count the single shared machine and
    systematically over-rank heavily shared properties; charging the
    cheapest owner keeps the total attributed energy equal to the total
    machine energy while still making *some* owner pay for keeping the
    sub alive.
    """
    by_name = {m.machine: m for m in report.monitors}
    extra: Dict[str, float] = {}
    for sub, owners in sorted(report.sub_owners.items()):
        sub_bound = by_name.get(sub)
        if sub_bound is None:
            continue
        candidates = sorted(
            (by_name[o] for o in owners
             if o in by_name and by_name[o].sheddable),
            key=lambda m: (m.run_energy_j, m.machine))
        if candidates:
            owner = candidates[0]
            extra[owner.machine] = (extra.get(owner.machine, 0.0)
                                    + sub_bound.run_energy_j)

    def priced_cost(m: MonitorBound) -> float:
        return (m.run_energy_j + extra.get(m.machine, 0.0)) \
            / max(1, m.coverage)

    sheddable = [m for m in report.monitors if m.sheddable]
    ranked = sorted(sheddable,
                    key=lambda m: (-priced_cost(m), m.machine))
    return {m.machine: rank for rank, m in enumerate(ranked)}


def with_derived_priorities(props: PropertySet, app: Application,
                            power: PowerModel,
                            capacitor: Optional[Capacitor] = None,
                            force: bool = False) -> PropertySet:
    """Substitute analyzer-derived priorities for absent hand-written
    ones.

    When any sheddable property carries a non-zero authored ``priority``
    the spec author has made a call and the set is returned unchanged
    (pass ``force=True`` to overrule); otherwise every sheddable
    property gets its cost-per-coverage rank. The result flows through
    ``generate_machines`` into the Python ``PRIORITY`` attribute and the
    C ``#define`` exactly like authored modifiers.
    """
    if not force and any(p.priority for p in props
                         if type(p).SUPPORTS_PRIORITY):
        return props
    report = analyze(app, props, power, capacitor=capacitor)
    ranks = derive_priorities(report)
    derived = PropertySet()
    for prop in props:
        rank = ranks.get(prop.machine_name())
        if rank is not None and rank != prop.priority:
            prop = dataclasses.replace(prop, priority=rank)
        derived.add(prop)
    return derived
