"""Static predictive analyses over compiled monitors.

* :mod:`repro.analysis.energy` — worst-case energy/latency bounds per
  dispatched event, per-path budgets, and the closed-form
  non-termination predicate (plus cost-per-coverage auto-priorities);
* :mod:`repro.analysis.forecast` — windowed-EWMA / trace-replay harvest
  forecasting for the anticipatory degradation controller.
"""

from repro.analysis.energy import (
    EnergyReport,
    LivelockRisk,
    MonitorBound,
    PathBudget,
    TaskBound,
    analyze,
    derive_priorities,
    with_derived_priorities,
)
from repro.analysis.forecast import HarvestForecaster

__all__ = [
    "EnergyReport",
    "LivelockRisk",
    "MonitorBound",
    "PathBudget",
    "TaskBound",
    "analyze",
    "derive_priorities",
    "with_derived_priorities",
    "HarvestForecaster",
]
