"""Counterexample minimization.

A raw counterexample from the explorer can carry incidental crashes
(schedules found at depth k may fail because of a single crash) and can
point at a late payment when a much earlier one in the same commit
exposes the identical divergence. :class:`CounterexampleShrinker`
reduces a failing schedule to a short, readable :class:`Witness` in two
passes:

1. **Subset minimization** — repeatedly drop crash indices (latest
   first) while the reduced schedule still fails, to a fixpoint. The
   result is 1-minimal: removing any remaining crash makes the
   execution conform.
2. **Index minimization** — slide each remaining crash to the earliest
   representative payment (between its neighbours) that still fails,
   so the witness names the first payment of the offending durable
   state, typically the start of the guilty commit step.

Every candidate costs one simulated execution; ``max_runs`` bounds the
total and the witness records whether minimization was cut short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.verify.explorer import Counterexample, CrashScheduleExplorer
from repro.verify.schedule import Schedule


@dataclass
class Witness:
    """A minimized failing schedule with a step-by-step account."""

    scenario: str
    schedule: Schedule
    problems: List[str]
    #: Human-readable steps: one per crash, then one per divergence.
    steps: List[str] = field(default_factory=list)
    shrink_runs: int = 0
    exhausted_budget: bool = False
    #: Trailing trace events of the failing run (context for debugging).
    trace_excerpt: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"counterexample for {self.scenario} "
            f"({len(self.schedule)} crash(es), {len(self.steps)} steps"
            + (", shrink budget exhausted" if self.exhausted_budget else "")
            + "):"
        ]
        lines += [f"  {i + 1}. {step}" for i, step in enumerate(self.steps)]
        if self.trace_excerpt:
            lines.append("  trace tail:")
            lines += [f"    {line}" for line in self.trace_excerpt]
        return "\n".join(lines)


class CounterexampleShrinker:
    """Minimizes failing schedules for one explorer's scenario.

    Args:
        explorer: the explorer that produced the counterexample (its
            oracle and policy define "still fails").
        max_runs: ceiling on minimization executions.
    """

    def __init__(self, explorer: CrashScheduleExplorer, max_runs: int = 150):
        self.explorer = explorer
        self.max_runs = max_runs
        self._runs = 0

    def _fails(self, schedule: Schedule) -> Optional[List[str]]:
        """Problems if ``schedule`` still fails, else None; None too
        once the run budget is exhausted (conservative: keep current)."""
        if self._runs >= self.max_runs:
            return None
        self._runs += 1
        problems = self.explorer.check(schedule)
        return problems if problems else None

    def shrink(self, counterexample: Counterexample) -> Witness:
        """Minimize ``counterexample`` and render it as a witness."""
        self._runs = 0
        schedule: Tuple[int, ...] = tuple(counterexample.schedule)
        problems = list(counterexample.problems)

        # Pass 1: drop crashes, latest first, to a fixpoint.
        changed = True
        while changed and len(schedule) > 1:
            changed = False
            for i in reversed(range(len(schedule))):
                candidate = schedule[:i] + schedule[i + 1:]
                found = self._fails(candidate)
                if found is not None:
                    schedule, problems = candidate, found
                    changed = True
                    break

        # Pass 2: slide each crash to the earliest equivalent-state
        # payment that still fails. Candidates come from the failing
        # run's own recording, so they are real, distinct crash states.
        final = self.explorer.execute(schedule)
        for i in range(len(schedule)):
            low = schedule[i - 1] + 1 if i else 1
            for index in final.runner.representatives(low, schedule[i] - 1):
                candidate = schedule[:i] + (index,) + schedule[i + 1:]
                found = self._fails(candidate)
                if found is not None:
                    schedule, problems = candidate, found
                    final = self.explorer.execute(schedule)
                    break

        return self._witness(schedule, problems, final)

    def _witness(self, schedule: Schedule, problems: List[str],
                 final_run) -> Witness:
        runner = final_run.runner
        steps: List[str] = []
        for pos, index in enumerate(schedule):
            label = runner.label_at(index)
            cat = runner.category_at(index) if index <= runner.calls else "?"
            where = f" during commit step {label!r}" if label else ""
            steps.append(
                f"crash at payment #{index} [{cat}]{where}, then reboot "
                "and boot-time recovery")
        steps += [f"divergence: {p}" for p in problems]
        excerpt = [
            f"t={event.t:.6f} {event.kind} "
            + " ".join(f"{k}={v!r}" for k, v in sorted(event.detail.items()))
            for event in list(final_run.device.trace)[-8:]
        ]
        return Witness(
            scenario=self.explorer.name,
            schedule=schedule,
            problems=problems,
            steps=steps,
            shrink_runs=self._runs,
            exhausted_budget=self._runs >= self.max_runs,
            trace_excerpt=excerpt,
        )
