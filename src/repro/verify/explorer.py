"""Bounded exhaustive exploration of crash schedules.

:class:`CrashScheduleExplorer` is the conformance checker's engine. It
first executes the scenario *crash-free* — the continuous-power oracle —
then systematically re-executes it under every crash schedule up to a
``bound`` on the number of crashes, comparing each intermittent outcome
against the oracle with :func:`repro.verify.oracle.compare_outcomes`.

Two things keep the search tractable:

* **State-hash pruning.** The baseline (and every explored prefix)
  records the durable-state fingerprint *before* each energy payment
  (:class:`~repro.verify.schedule.CrashScheduleRunner`). A crash loses
  all volatile state, so two crash points with identical durable
  fingerprints reboot into identical futures — one representative per
  fingerprint run covers the whole class. Payments that merely burn
  time (sensing, task bodies between commits) collapse to a single
  crash point; every interior step of a journaled commit stays distinct
  because each journal write changes the fingerprint.
* **Frontier extension.** Schedules with k+1 crashes are generated from
  the *recorded execution* of a k-crash schedule, so the candidate
  indices for the extra crash are exactly the representative payments
  that execution actually performed after its last crash — never
  guessed.

The search is exhaustive up to ``bound`` when it completes within its
run ``budget``; otherwise the report says precisely what was truncated
(no silent caps).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.verify.oracle import (
    EquivalencePolicy,
    Outcome,
    compare_outcomes,
    extract_outcome,
)
from repro.verify.schedule import (
    CrashScheduleRunner,
    FingerprintPolicy,
    Schedule,
    validate_schedule,
)

#: Builds one fresh (device, runtime) pair. Every schedule gets its own
#: pair — determinism of the build is what makes schedules replayable.
ScenarioBuild = Callable[[], Tuple[object, object]]


@dataclass
class ScheduleRun:
    """One executed schedule: the run artefacts the explorer needs."""

    schedule: Schedule
    runner: CrashScheduleRunner
    outcome: Outcome
    device: object
    runtime: object


@dataclass
class Counterexample:
    """A crash schedule whose outcome diverges from the oracle."""

    schedule: Schedule
    problems: List[str]
    #: Commit-step label at each crash index (None = not inside a commit).
    crash_labels: Tuple[Optional[str], ...] = ()
    crash_categories: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [f"schedule {self.schedule}:"]
        for pos, index in enumerate(self.schedule):
            label = self.crash_labels[pos] if pos < len(self.crash_labels) else None
            cat = (self.crash_categories[pos]
                   if pos < len(self.crash_categories) else "?")
            where = f" during commit step {label!r}" if label else ""
            lines.append(f"  crash {pos + 1}: payment #{index} [{cat}]{where}")
        for problem in self.problems:
            lines.append(f"  divergence: {problem}")
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Result of one bounded exploration."""

    scenario: str
    bound: int
    strategy: str
    budget: int
    runs_executed: int = 0
    schedules_checked: int = 0
    baseline_payments: int = 0
    depth1_crash_points: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: True when the run budget cut the search short of the bound.
    truncated: bool = False
    #: True when partial-order reduction pruned the search.
    por: bool = False
    #: Subtrees skipped because their crash point's signature had
    #: already been expanded (POR only).
    pruned_subtrees: int = 0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        extent = ("exhaustive to bound" if not self.truncated
                  else "TRUNCATED by budget")
        reduction = (f", POR pruned {self.pruned_subtrees} subtrees"
                     if self.por else "")
        return (
            f"[{verdict}] {self.scenario}: {self.schedules_checked} schedules "
            f"(bound {self.bound}, {self.strategy}, {extent}{reduction}), "
            f"{self.baseline_payments} payments / "
            f"{self.depth1_crash_points} distinct crash states crash-free, "
            f"{len(self.counterexamples)} counterexample(s)"
        )


class CrashScheduleExplorer:
    """Enumerates crash schedules for one scenario and checks each
    against the scenario's continuous-power oracle.

    Args:
        build: zero-argument factory returning a fresh
            ``(device, runtime)`` pair. Must be deterministic.
        policy: how outcomes are compared (see
            :class:`~repro.verify.oracle.EquivalencePolicy`).
        extract_extra: optional ``(device, runtime) -> dict`` adding
            runtime-specific durable state (e.g. checkpoint snapshots)
            to the comparison.
        run_kwargs: forwarded to ``device.run`` (defaults keep a broken
            scenario from spinning: one application run, generous time
            and reboot ceilings).
        time_sensitive: fold simulation time into crash-state
            fingerprints (disables most pruning; see
            :class:`~repro.verify.schedule.CrashScheduleRunner`).
        name: label used in reports.
    """

    def __init__(
        self,
        build: ScenarioBuild,
        policy: Optional[EquivalencePolicy] = None,
        extract_extra=None,
        run_kwargs: Optional[dict] = None,
        time_sensitive: bool = False,
        name: str = "scenario",
    ):
        self.build = build
        self.policy = policy if policy is not None else EquivalencePolicy()
        self.extract_extra = extract_extra
        self.run_kwargs = dict(run_kwargs or {})
        self.run_kwargs.setdefault("runs", 1)
        self.run_kwargs.setdefault("max_time_s", 7200.0)
        self.run_kwargs.setdefault("max_reboots", 64)
        self.time_sensitive = time_sensitive
        self.name = name
        self._oracle_run: Optional[ScheduleRun] = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, schedule: Schedule = (),
                fingerprint_policy: Optional[FingerprintPolicy] = None,
                ) -> ScheduleRun:
        """Run the scenario once under ``schedule`` (fresh device)."""
        schedule = validate_schedule(schedule)
        device, runtime = self.build()
        runner = CrashScheduleRunner(
            schedule, time_sensitive=self.time_sensitive,
            fingerprint_policy=fingerprint_policy).bind(device)
        device.run(runtime, **self.run_kwargs)
        outcome = extract_outcome(device, runtime, self.policy,
                                  extract_extra=self.extract_extra)
        return ScheduleRun(schedule, runner, outcome, device, runtime)

    @property
    def oracle(self) -> Outcome:
        """The crash-free outcome (cached; computed on first use)."""
        return self.oracle_run.outcome

    @property
    def oracle_run(self) -> ScheduleRun:
        if self._oracle_run is None:
            run = self.execute(())
            if not run.outcome.completed:
                raise ReproError(
                    f"scenario {self.name!r}: the crash-free oracle run did "
                    "not complete — the scenario is misconfigured, not buggy")
            self._oracle_run = run
        return self._oracle_run

    def check(self, schedule: Schedule) -> List[str]:
        """Divergences of one schedule from the oracle ([] = conforms)."""
        run = self.execute(schedule)
        return compare_outcomes(self.oracle, run.outcome, self.policy)

    def _counterexample(self, run: ScheduleRun,
                        problems: List[str]) -> Counterexample:
        return Counterexample(
            schedule=run.schedule,
            problems=problems,
            crash_labels=tuple(run.runner.label_at(i) for i in run.schedule),
            crash_categories=tuple(
                run.runner.category_at(i) if i <= run.runner.calls else "?"
                for i in run.schedule),
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def explore(
        self,
        bound: int = 2,
        budget: int = 200,
        strategy: str = "bfs",
        stop_on_first: bool = True,
        por: bool = False,
    ) -> VerifyReport:
        """Check every schedule with up to ``bound`` crashes.

        ``budget`` caps the number of simulated executions (the oracle
        run included); hitting it marks the report ``truncated``.
        ``strategy`` orders the frontier: ``"bfs"`` exhausts all
        single-crash schedules before any two-crash schedule (best for
        shallow bugs and for meaningful truncation), ``"dfs"`` drills
        each branch to the bound first.

        ``por`` enables partial-order reduction (see
        :class:`~repro.verify.schedule.FingerprintPolicy` and
        ``docs/verification.md``): candidate crash points collapse into
        recovery-projected classes, and a subtree is skipped entirely
        when its root crash point carries a search signature —
        projected state plus observable-action prefix — that an
        already-expanded crash point at the same or shallower depth also
        carried (identical signature ⇒ identical verdicts for every
        continuation). Verdict-preserving, typically orders of
        magnitude fewer runs at bounds ≥ 3. Requires
        ``time_sensitive=False``.
        """
        if strategy not in ("bfs", "dfs"):
            raise ReproError(f"unknown strategy {strategy!r}")
        if bound < 0:
            raise ReproError("bound must be non-negative")
        if por and self.time_sensitive:
            raise ReproError(
                "partial-order reduction masks time from crash-state "
                "signatures and is unsound for time_sensitive scenarios")
        fp_policy = FingerprintPolicy() if por else None
        report = VerifyReport(scenario=self.name, bound=bound,
                              strategy=strategy, budget=budget, por=por)
        if por:
            base = self.execute((), fingerprint_policy=fp_policy)
            if not base.outcome.completed:
                raise ReproError(
                    f"scenario {self.name!r}: the crash-free oracle run did "
                    "not complete — the scenario is misconfigured, not buggy")
            if self._oracle_run is None:
                self._oracle_run = base
        else:
            base = self.oracle_run
        report.runs_executed = 1
        report.baseline_payments = base.runner.calls
        report.depth1_crash_points = len(
            base.runner.representatives(1, projected=por))

        #: POR sleep set: crash-point signature -> shallowest schedule
        #: length it was expanded at. A signature re-encountered at the
        #: same or greater depth roots a subtree whose every verdict is
        #: already covered.
        visited = {}
        frontier = deque([base])
        while frontier:
            parent = frontier.popleft() if strategy == "bfs" else frontier.pop()
            if len(parent.schedule) >= bound:
                continue
            start = parent.schedule[-1] + 1 if parent.schedule else 1
            for index in parent.runner.representatives(start, projected=por):
                if por:
                    signature = parent.runner.signature_at(index)
                    depth = len(parent.schedule)
                    seen = visited.get(signature)
                    if seen is not None and seen <= depth:
                        report.pruned_subtrees += 1
                        continue
                    visited[signature] = depth
                if report.runs_executed >= budget:
                    report.truncated = True
                    return report
                child_schedule = parent.schedule + (index,)
                child = self.execute(child_schedule,
                                     fingerprint_policy=fp_policy)
                report.runs_executed += 1
                report.schedules_checked += 1
                problems = compare_outcomes(self.oracle, child.outcome,
                                            self.policy)
                if problems:
                    report.counterexamples.append(
                        self._counterexample(child, problems))
                    if stop_on_first:
                        return report
                elif len(child_schedule) < bound:
                    frontier.append(child)
        return report
