"""Crash schedules and the device scheduler that executes them.

A *crash schedule* is a strictly increasing tuple of 1-based energy
payment indices: ``(12, 40)`` means "inject a brown-out at the 12th
payment, reboot, then inject another at the 40th payment counted from
the start of the run". Because every component of the simulation is
deterministic, a schedule identifies one intermittent execution
completely — the conformance checker (:mod:`repro.verify.explorer`)
enumerates schedules instead of executions.

:class:`CrashScheduleRunner` is the object plugged into
:attr:`~repro.sim.Device.scheduler`. Besides injecting the scheduled
failures it records, per payment index:

* the NVM :meth:`~repro.nvm.memory.NonVolatileMemory.state_fingerprint`
  *just before* the payment — the exact durable state a crash at that
  index would reboot from, which is what makes state-hash pruning
  possible;
* the payment's consumption category; and
* the semantic label of the commit step paying, when the runtime
  forwarded one via :meth:`annotate` (see
  :meth:`repro.nvm.transaction.Transaction.commit`).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.nvm.journal import (
    STATUS_COMMITTED,
    STATUS_IDLE,
    STATUS_PENDING,
    entries_checksum,
)
from repro.verify.oracle import (
    ACTION_KINDS,
    is_time_cell,
    mask_time_fields,
    normalized_action,
)

#: A crash schedule: strictly increasing 1-based payment indices.
Schedule = Tuple[int, ...]


def validate_schedule(schedule: Iterable[int]) -> Schedule:
    """Normalise and validate a crash schedule."""
    out = tuple(int(i) for i in schedule)
    if any(i < 1 for i in out):
        raise ReproError(f"crash schedule {out} has non-positive indices")
    if any(b <= a for a, b in zip(out, out[1:])):
        raise ReproError(f"crash schedule {out} is not strictly increasing")
    return out


def _crc(payload: object, acc: int = 0) -> int:
    return zlib.crc32(repr(payload).encode("utf-8", "backslashreplace"), acc)


class FingerprintPolicy:
    """Recovery-projected, time-masked crash-state fingerprints.

    The raw per-payment fingerprint hashes the durable state *as is* —
    including a mid-commit journal full of redo entries, and cells whose
    values are wall-clock timestamps. Both inflate the number of
    distinct crash states without changing what a crash actually leads
    to:

    * **Recovery projection.** A crash never resumes from the raw
      durable state; it resumes from what boot-time recovery makes of
      it. Projecting each journal through its own recovery rules — a
      *pending* journal's entries are dropped, a *committed* journal's
      entries are overlaid onto their cells, journal bookkeeping cells
      are normalised to idle — collapses every interior crash point of
      one commit into the two states that matter (before the seal /
      after the seal). The projection is exact, not heuristic: it is
      :meth:`repro.nvm.journal.CommitJournal.recover` evaluated
      symbolically.
    * **Time masking.** Cells holding bare timestamps
      (:func:`repro.verify.oracle.is_time_cell`) and timestamp-named
      dict fields (:func:`repro.verify.oracle.mask_time_fields`) are
      masked, matching the equivalence policy's own time-insensitivity:
      the outcome comparison never looks at them, so crash states
      differing only there have equal verdicts for every continuation.
      Only valid for ``time_sensitive=False`` scenarios — the explorer
      refuses the combination otherwise.

    Two payments with equal projected fingerprints reboot into the same
    post-recovery durable state, hence (deterministic simulation, time
    masked) the same future.
    """

    def __init__(self,
                 mask_cell: Callable[[str], bool] = is_time_cell,
                 normalize: Callable[[object], object] = mask_time_fields):
        self.mask_cell = mask_cell
        self.normalize = normalize

    # ------------------------------------------------------------------
    def _journal_bases(self, nvm) -> List[str]:
        bases = []
        for name, _ in nvm.raw_items():
            if name.endswith(".status"):
                base = name[: -len(".status")]
                if f"{base}.entries" in nvm and f"{base}.applied" in nvm:
                    bases.append(base)
        return sorted(bases)

    def project(self, nvm) -> Dict[str, object]:
        """The durable state a crash *now* would reboot into.

        Returns cell overrides relative to the raw state: journal cells
        normalised to their post-recovery (idle) values, plus the
        roll-forward overlay of any sealed-but-unapplied entries.
        """
        overrides: Dict[str, object] = {}
        for base in self._journal_bases(nvm):
            status = nvm.raw_get(f"{base}.status")
            entries = tuple(nvm.raw_get(f"{base}.entries", ()))
            if status == STATUS_IDLE:
                continue
            if status == STATUS_COMMITTED and (
                    entries_checksum(entries)
                    == nvm.raw_get(f"{base}.checksum", 0)):
                # Roll forward: recovery will apply every entry.
                for cell_name, value in entries:
                    overrides[cell_name] = value
            # Pending (roll back), corrupt (discard) and rolled-forward
            # journals all end recovery in the same idle bookkeeping.
            overrides[f"{base}.status"] = STATUS_IDLE
            overrides[f"{base}.entries"] = ()
            overrides[f"{base}.checksum"] = 0
            overrides[f"{base}.applied"] = 0
        return overrides

    def fingerprint(self, nvm) -> int:
        """CRC-32 of the projected, masked durable state."""
        overrides = self.project(nvm)
        acc = 0
        names = {name for name, _ in nvm.raw_items()}
        names.update(overrides)
        for name in sorted(names):
            if self.mask_cell(name):
                continue
            value = overrides[name] if name in overrides else nvm.raw_get(name)
            acc = _crc((name, self.normalize(value)), acc)
        return acc


class CrashScheduleRunner:
    """Injects brown-outs at scheduled payment indices and records
    crash-point metadata for the explorer.

    Args:
        schedule: payment indices to crash at (may be empty — then the
            runner only observes).
        record: capture per-index fingerprints/categories/labels. Turn
            off for plain replay runs where only the injection matters.
        time_sensitive: include the (rounded) simulation time in the
            recorded fingerprint. Costs pruning power — time advances
            monotonically — but is required for workloads whose
            behaviour genuinely depends on absolute time.
        fingerprint_policy: when given, additionally record
            *projected* fingerprints (see :class:`FingerprintPolicy`)
            and per-payment search signatures for the explorer's
            partial-order reduction.
    """

    def __init__(self, schedule: Iterable[int] = (), record: bool = True,
                 time_sensitive: bool = False,
                 fingerprint_policy: Optional[FingerprintPolicy] = None):
        self.schedule = validate_schedule(schedule)
        self._crash_at = frozenset(self.schedule)
        self.record = record
        self.time_sensitive = time_sensitive
        self.fingerprint_policy = fingerprint_policy
        self.calls = 0
        self.crashes = 0
        #: fingerprints[k-1] is the durable state a crash at payment k
        #: would reboot from.
        self.fingerprints: List[int] = []
        #: projected[k-1] is the *post-recovery* state a crash at
        #: payment k would lead to (only with a fingerprint_policy).
        self.projected: List[int] = []
        #: action_crcs[k-1] hashes the normalised corrective-action
        #: prefix emitted before payment k (only with a policy).
        self.action_crcs: List[int] = []
        #: runs_done[k-1] is the application-runs count at payment k.
        self.runs_done: List[int] = []
        self.categories: List[str] = []
        #: payment index -> commit-step label (only labelled steps).
        self.labels: Dict[int, str] = {}
        self._pending_label: Optional[str] = None
        self._device = None
        self._fp_cache_key: Optional[Tuple[int, int]] = None
        self._fp_cache_value: int = 0
        self._proj_cache_key: Optional[Tuple[int, int]] = None
        self._proj_cache_value: int = 0
        self._trace_pos = 0
        self._action_crc = 0

    # ------------------------------------------------------------------
    # Device-facing protocol
    # ------------------------------------------------------------------
    def bind(self, device) -> "CrashScheduleRunner":
        """Attach to ``device`` (sets ``device.scheduler``)."""
        self._device = device
        device.scheduler = self
        return self

    def annotate(self, label: str) -> None:
        """Label the *next* payment (called by commit protocols)."""
        self._pending_label = label

    def before_consume(self, duration_s: float, power_w: float,
                       category: str) -> bool:
        """Count one payment; True tells the device to brown out."""
        self.calls += 1
        if self.record:
            self.fingerprints.append(self._fingerprint())
            self.categories.append(category)
            if self.fingerprint_policy is not None:
                self.projected.append(self._projected_fingerprint())
                self.action_crcs.append(self._advance_action_crc())
                self.runs_done.append(self._device.result.runs_completed)
            if self._pending_label is not None:
                self.labels[self.calls] = self._pending_label
        self._pending_label = None
        if self.calls in self._crash_at:
            self.crashes += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _fingerprint(self) -> int:
        nvm = self._device.nvm
        key = (len(nvm), nvm.write_count)
        if key != self._fp_cache_key:
            self._fp_cache_key = key
            self._fp_cache_value = nvm.state_fingerprint()
        fp = self._fp_cache_value
        if self.time_sensitive:
            fp = hash((fp, round(self._device.sim_clock.now(), 9)))
        return fp

    def _projected_fingerprint(self) -> int:
        nvm = self._device.nvm
        key = (len(nvm), nvm.write_count)
        if key != self._proj_cache_key:
            self._proj_cache_key = key
            self._proj_cache_value = self.fingerprint_policy.fingerprint(nvm)
        return self._proj_cache_value

    def _advance_action_crc(self) -> int:
        """Running CRC of the normalised corrective-action prefix.

        Mirrors :func:`repro.verify.oracle._normalized_actions` event by
        event, but incrementally — each payment only hashes the trace
        events recorded since the previous payment.
        """
        events = self._device.trace.events
        crc = self._action_crc
        for event in events[self._trace_pos:]:
            if event.kind in ACTION_KINDS:
                crc = _crc(normalized_action(event), crc)
        self._trace_pos = len(events)
        self._action_crc = crc
        return crc

    # ------------------------------------------------------------------
    # Post-run queries used by the explorer
    # ------------------------------------------------------------------
    def fingerprint_at(self, index: int) -> int:
        """Durable-state fingerprint a crash at payment ``index`` sees."""
        return self.fingerprints[index - 1]

    def label_at(self, index: int) -> Optional[str]:
        return self.labels.get(index)

    def category_at(self, index: int) -> str:
        return self.categories[index - 1]

    def signature_at(self, index: int) -> Tuple[int, int, int]:
        """Search signature of the crash point at payment ``index``.

        ``(projected fingerprint, action-prefix CRC, runs completed)``:
        two crash points with equal signatures have (a) identical
        post-recovery durable state, hence identical futures, and (b)
        identical observable pasts — so crashing at either, with any
        continuation, yields the same verdict. The explorer's
        partial-order reduction prunes whole subtrees on this equality.
        Requires a ``fingerprint_policy``.
        """
        if self.fingerprint_policy is None:
            raise ReproError("signature_at needs a fingerprint_policy")
        return (self.projected[index - 1], self.action_crcs[index - 1],
                self.runs_done[index - 1])

    def representatives(self, start: int, stop: Optional[int] = None,
                        projected: bool = False) -> List[int]:
        """One payment index per distinct crash state in [start, stop].

        Scans the recorded fingerprints and keeps the *first* index of
        every run of equal fingerprints — crashing anywhere else in the
        run reboots from the identical durable state, so one
        representative covers the whole class. With ``projected=True``
        the scan uses the recovery-projected fingerprints instead
        (requires a ``fingerprint_policy``): interior crash points of a
        journaled commit then collapse into their post-recovery
        classes.
        """
        if projected and self.fingerprint_policy is None:
            raise ReproError("projected representatives need a "
                             "fingerprint_policy")
        stop = self.calls if stop is None else min(stop, self.calls)
        out: List[int] = []
        last_fp: Optional[Tuple] = None
        for index in range(max(start, 1), stop + 1):
            if projected:
                # Full signature, not just the state: an action emitted
                # between two durably-identical payments still makes
                # their crashes observably different.
                fp: Tuple = self.signature_at(index)
            else:
                fp = (self.fingerprints[index - 1],)
            if last_fp is None or fp != last_fp:
                out.append(index)
                last_fp = fp
        return out
