"""Crash schedules and the device scheduler that executes them.

A *crash schedule* is a strictly increasing tuple of 1-based energy
payment indices: ``(12, 40)`` means "inject a brown-out at the 12th
payment, reboot, then inject another at the 40th payment counted from
the start of the run". Because every component of the simulation is
deterministic, a schedule identifies one intermittent execution
completely — the conformance checker (:mod:`repro.verify.explorer`)
enumerates schedules instead of executions.

:class:`CrashScheduleRunner` is the object plugged into
:attr:`~repro.sim.Device.scheduler`. Besides injecting the scheduled
failures it records, per payment index:

* the NVM :meth:`~repro.nvm.memory.NonVolatileMemory.state_fingerprint`
  *just before* the payment — the exact durable state a crash at that
  index would reboot from, which is what makes state-hash pruning
  possible;
* the payment's consumption category; and
* the semantic label of the commit step paying, when the runtime
  forwarded one via :meth:`annotate` (see
  :meth:`repro.nvm.transaction.Transaction.commit`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

#: A crash schedule: strictly increasing 1-based payment indices.
Schedule = Tuple[int, ...]


def validate_schedule(schedule: Iterable[int]) -> Schedule:
    """Normalise and validate a crash schedule."""
    out = tuple(int(i) for i in schedule)
    if any(i < 1 for i in out):
        raise ReproError(f"crash schedule {out} has non-positive indices")
    if any(b <= a for a, b in zip(out, out[1:])):
        raise ReproError(f"crash schedule {out} is not strictly increasing")
    return out


class CrashScheduleRunner:
    """Injects brown-outs at scheduled payment indices and records
    crash-point metadata for the explorer.

    Args:
        schedule: payment indices to crash at (may be empty — then the
            runner only observes).
        record: capture per-index fingerprints/categories/labels. Turn
            off for plain replay runs where only the injection matters.
        time_sensitive: include the (rounded) simulation time in the
            recorded fingerprint. Costs pruning power — time advances
            monotonically — but is required for workloads whose
            behaviour genuinely depends on absolute time.
    """

    def __init__(self, schedule: Iterable[int] = (), record: bool = True,
                 time_sensitive: bool = False):
        self.schedule = validate_schedule(schedule)
        self._crash_at = frozenset(self.schedule)
        self.record = record
        self.time_sensitive = time_sensitive
        self.calls = 0
        self.crashes = 0
        #: fingerprints[k-1] is the durable state a crash at payment k
        #: would reboot from.
        self.fingerprints: List[int] = []
        self.categories: List[str] = []
        #: payment index -> commit-step label (only labelled steps).
        self.labels: Dict[int, str] = {}
        self._pending_label: Optional[str] = None
        self._device = None
        self._fp_cache_key: Optional[Tuple[int, int]] = None
        self._fp_cache_value: int = 0

    # ------------------------------------------------------------------
    # Device-facing protocol
    # ------------------------------------------------------------------
    def bind(self, device) -> "CrashScheduleRunner":
        """Attach to ``device`` (sets ``device.scheduler``)."""
        self._device = device
        device.scheduler = self
        return self

    def annotate(self, label: str) -> None:
        """Label the *next* payment (called by commit protocols)."""
        self._pending_label = label

    def before_consume(self, duration_s: float, power_w: float,
                       category: str) -> bool:
        """Count one payment; True tells the device to brown out."""
        self.calls += 1
        if self.record:
            self.fingerprints.append(self._fingerprint())
            self.categories.append(category)
            if self._pending_label is not None:
                self.labels[self.calls] = self._pending_label
        self._pending_label = None
        if self.calls in self._crash_at:
            self.crashes += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _fingerprint(self) -> int:
        nvm = self._device.nvm
        key = (len(nvm), nvm.write_count)
        if key != self._fp_cache_key:
            self._fp_cache_key = key
            self._fp_cache_value = nvm.state_fingerprint()
        fp = self._fp_cache_value
        if self.time_sensitive:
            fp = hash((fp, round(self._device.sim_clock.now(), 9)))
        return fp

    # ------------------------------------------------------------------
    # Post-run queries used by the explorer
    # ------------------------------------------------------------------
    def fingerprint_at(self, index: int) -> int:
        """Durable-state fingerprint a crash at payment ``index`` sees."""
        return self.fingerprints[index - 1]

    def label_at(self, index: int) -> Optional[str]:
        return self.labels.get(index)

    def category_at(self, index: int) -> str:
        return self.categories[index - 1]

    def representatives(self, start: int, stop: Optional[int] = None) -> List[int]:
        """One payment index per distinct crash state in [start, stop].

        Scans the recorded fingerprints and keeps the *first* index of
        every run of equal fingerprints — crashing anywhere else in the
        run reboots from the identical durable state, so one
        representative covers the whole class.
        """
        stop = self.calls if stop is None else min(stop, self.calls)
        out: List[int] = []
        last_fp: Optional[int] = None
        for index in range(max(start, 1), stop + 1):
            fp = self.fingerprints[index - 1]
            if last_fp is None or fp != last_fp:
                out.append(index)
                last_fp = fp
        return out
