"""Continuous-execution oracles and the equivalence judgement.

The correctness claim under test (paper §4.1.3/§4.2; Surbatovich et
al.'s formal criterion) is that every intermittent execution is
equivalent to the continuous-power execution of the same program. This
module pins down what *equivalent* means for the simulator and turns it
into a mechanical check:

* :func:`extract_outcome` reduces a finished run to an
  :class:`Outcome` — committed channel state, the corrective-action
  sequence, completion/integrity/quiescence facts;
* :class:`EquivalencePolicy` declares how a scenario wants the two
  outcomes compared (exact channels vs. monotone collector channels,
  action-sequence mode, time-field masking);
* :func:`compare_outcomes` returns the list of divergences (empty =
  conformant);
* :func:`machine_cross_check` is the single-machine oracle: every
  corrective action the intermittent run emitted must be provably
  reachable by bounded exploration
  (:func:`repro.statemachine.explore.explore`) of the generated
  machine — an intermittent run must not manufacture verdicts the
  machine cannot produce under *any* continuous event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.generator import generate_machines
from repro.nvm.journal import STATUS_IDLE
from repro.statemachine.explore import alphabet_for, explore
from repro.taskgraph.context import channel_cell_name

#: Channel-cell prefix (mirrors repro.taskgraph.context.CHANNEL_PREFIX).
_CHAN_PREFIX = channel_cell_name("")

#: Trace kinds that constitute the externally visible corrective-action
#: stream, across all four runtimes.
ACTION_KINDS = (
    "monitor_action",
    "path_restart",
    "path_skip",
    "task_skip",
    "watchdog_trip",
)

#: Dict keys treated as wall-clock timestamps and masked before channel
#: comparison: re-execution after a crash legitimately shifts them.
TIME_KEYS = ("t", "timestamp", "time")

#: Cells whose *values* are bare timestamps (not dicts with time-named
#: keys, which :func:`mask_time_fields` already handles). Re-execution
#: after a reboot legitimately produces different readings for these,
#: so value-sensitive comparisons (access-log signatures, projected
#: state fingerprints) mask them wholesale.
TIME_CELL_SUFFIXES = (".end_ts", ".end_times", ".last_reading")


def is_time_cell(name: str) -> bool:
    """True for cells whose value is wall-clock time by construction."""
    return name.endswith(TIME_CELL_SUFFIXES)


def mask_time_fields(value: Any, keys: Sequence[str] = TIME_KEYS) -> Any:
    """Recursively replace timestamp-named dict fields with a marker."""
    if isinstance(value, dict):
        return {
            k: ("<t>" if k in keys else mask_time_fields(v, keys))
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        out = [mask_time_fields(v, keys) for v in value]
        return out if isinstance(value, list) else tuple(out)
    return value


def _is_subsequence(needle: Sequence[Any], haystack: Sequence[Any]) -> bool:
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


@dataclass(frozen=True)
class EquivalencePolicy:
    """How a scenario's outcomes are compared against the oracle.

    Attributes:
        monotone_channels: channel keys (un-prefixed) holding collector
            lists that may legitimately grow by crash-induced
            re-collection — the oracle's value must remain a
            subsequence of the variant's. Everything else is exact.
        compare_actions: ``"sequence"`` (exact order), ``"multiset"``
            (same actions, order free), or ``"none"``.
        normalize: applied to every channel value before comparison;
            defaults to masking timestamp fields.
        ignore_channels: channel keys excluded from comparison entirely
            (e.g. diagnostics the workload publishes best-effort).
    """

    monotone_channels: Tuple[str, ...] = ()
    compare_actions: str = "sequence"
    normalize: Callable[[Any], Any] = mask_time_fields
    ignore_channels: Tuple[str, ...] = ()


@dataclass
class Outcome:
    """Everything equivalence is judged on, extracted from one run."""

    completed: bool
    runs_completed: int
    channels: Dict[str, Any]
    actions: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]
    control: Dict[str, Any] = field(default_factory=dict)
    quiescent: bool = True
    corrupt_cells: Tuple[str, ...] = ()
    journal_idle: bool = True


#: Detail keys stripped before action comparison (diagnostics that
#: legitimately differ between intermittent and continuous runs).
_ACTION_NOISE_KEYS = ("attempts", "sensor", "fault", "replayed")


def normalized_action(event) -> Tuple[str, Tuple]:
    """One trace event reduced to its comparison-relevant core."""
    detail = tuple(sorted(
        (k, v) for k, v in event.detail.items()
        if k not in _ACTION_NOISE_KEYS and k not in TIME_KEYS
    ))
    return (event.kind, detail)


def _normalized_actions(trace) -> Tuple:
    return tuple(normalized_action(event) for event in trace
                 if event.kind in ACTION_KINDS)


def extract_outcome(device, runtime, policy: EquivalencePolicy,
                    extract_extra=None) -> Outcome:
    """Reduce a finished run to the facts equivalence is judged on."""
    nvm = device.nvm
    channels: Dict[str, Any] = {}
    for name in nvm:
        if name.startswith(_CHAN_PREFIX):
            key = name[len(_CHAN_PREFIX):]
            if key in policy.ignore_channels:
                continue
            channels[key] = policy.normalize(nvm.cell(name).get())
    monitor = getattr(runtime, "monitor", None)
    quiescent = True
    if monitor is not None and getattr(monitor, "in_progress", False):
        quiescent = False
    journal_idle = True
    if "txnlog.status" in nvm:
        journal_idle = nvm.cell("txnlog.status").get() == STATUS_IDLE
    control: Dict[str, Any] = {}
    if extract_extra is not None:
        control = extract_extra(device, runtime)
    return Outcome(
        completed=device.result.completed,
        runs_completed=device.result.runs_completed,
        channels=channels,
        actions=_normalized_actions(device.trace),
        control=control,
        quiescent=quiescent,
        corrupt_cells=tuple(nvm.verify_all()),
        journal_idle=journal_idle,
    )


def compare_outcomes(oracle: Outcome, variant: Outcome,
                     policy: EquivalencePolicy) -> List[str]:
    """Divergences of ``variant`` from the continuous ``oracle``."""
    problems: List[str] = []
    if not variant.completed:
        problems.append("run did not complete (oracle did)")
    if variant.runs_completed != oracle.runs_completed:
        problems.append(
            f"runs_completed {variant.runs_completed} != "
            f"oracle {oracle.runs_completed}")
    if variant.corrupt_cells:
        problems.append(
            f"cells failed checksum after completion: "
            f"{list(variant.corrupt_cells)}")
    if not variant.quiescent:
        problems.append("monitor left in_progress after completion")
    if not variant.journal_idle:
        problems.append("commit journal not idle after completion")

    for key in sorted(set(oracle.channels) | set(variant.channels)):
        have = variant.channels.get(key, "<missing>")
        want = oracle.channels.get(key, "<missing>")
        if key in policy.monotone_channels:
            ok = (isinstance(have, (list, tuple))
                  and isinstance(want, (list, tuple))
                  and len(have) >= len(want)
                  and _is_subsequence(list(want), list(have)))
            if not ok:
                problems.append(
                    f"collector channel {key!r}: {have!r} lost oracle "
                    f"elements {want!r}")
        elif have != want:
            problems.append(f"channel {key!r}: {have!r} != oracle {want!r}")

    for key in sorted(set(oracle.control) | set(variant.control)):
        have = variant.control.get(key, "<missing>")
        want = oracle.control.get(key, "<missing>")
        if have != want:
            problems.append(f"state {key!r}: {have!r} != oracle {want!r}")

    if policy.compare_actions == "sequence":
        if variant.actions != oracle.actions:
            problems.append(
                f"action sequence diverged: {_action_diff(oracle.actions, variant.actions)}")
    elif policy.compare_actions == "multiset":
        if sorted(variant.actions) != sorted(oracle.actions):
            problems.append(
                f"action multiset diverged: {_action_diff(oracle.actions, variant.actions)}")
    return problems


def _action_diff(oracle_actions: Tuple, variant_actions: Tuple) -> str:
    """First point of divergence, for readable counterexamples."""
    for i, (a, b) in enumerate(zip(oracle_actions, variant_actions)):
        if a != b:
            return f"step {i}: oracle {a!r} vs variant {b!r}"
    if len(oracle_actions) != len(variant_actions):
        longer = ("variant" if len(variant_actions) > len(oracle_actions)
                  else "oracle")
        extra = (variant_actions[len(oracle_actions):]
                 if longer == "variant"
                 else oracle_actions[len(variant_actions):])
        return f"{longer} has {len(extra)} extra action(s): {extra[:3]!r}"
    return "reordered"


# ---------------------------------------------------------------------------
# Single-machine cross-check against bounded model checking
# ---------------------------------------------------------------------------

def machine_cross_check(
    props,
    observed_actions: Sequence[str],
    deltas: Sequence[float] = (1.0,),
    data_values: Optional[Dict[str, Sequence[float]]] = None,
    depth: int = 6,
) -> List[str]:
    """Check observed corrective actions against the explored machine.

    Only meaningful for property sets compiling to a *single* monitor
    machine (returns ``[]`` otherwise): the machine is explored
    exhaustively to ``depth`` and every action name the intermittent
    run emitted must have a continuous-execution witness — otherwise
    the runtime manufactured a verdict the property semantics cannot
    produce, which is exactly the §4.1.3 timestamp-consistency bug
    class. The converse (an action reachable but unobserved) is not an
    error; the workload simply never drove the machine there.
    """
    machines = generate_machines(props)
    if len(machines) != 1:
        return []
    machine = machines[0]
    alphabet = alphabet_for(machine, deltas=deltas,
                            data_values=data_values or {})
    exploration = explore(machine, alphabet, depth=depth)
    problems = []
    for action in sorted(set(observed_actions)):
        if action not in exploration.actions:
            problems.append(
                f"runtime applied action {action!r} that machine "
                f"{machine.name!r} cannot emit at all")
        elif not exploration.can_fail_with(action):
            problems.append(
                f"runtime applied action {action!r} with no continuous "
                f"witness within depth {depth} of machine {machine.name!r}")
    return problems
