"""Intermittence conformance checking (bounded model checking).

Exhaustively enumerates crash schedules up to a bound and checks every
resulting intermittent execution against a continuous-power oracle —
the mechanical form of the correctness claim task-based intermittent
runtimes make ("every intermittent execution is equivalent to some
continuous execution"). See ``docs/verification.md``.

Entry points:

* :class:`CrashScheduleExplorer` — the search engine;
* :func:`get_scenario` / :func:`iter_scenarios` — the workload ×
  runtime matrix;
* :class:`CounterexampleShrinker` — witness minimization;
* :class:`MemoryModelChecker` / :func:`run_memory_model` — WAR and
  idempotence oracles over NVM access logs, passing verdicts on single
  intermittent runs with no continuous-power twin;
* :func:`run_self_test` / :func:`run_war_self_test` — mutation
  self-tests proving the checkers catch deliberately injected recovery
  and privatization bugs;
* ``repro verify`` — the CLI front-end.
"""

from repro.verify.explorer import (
    Counterexample,
    CrashScheduleExplorer,
    ScheduleRun,
    VerifyReport,
)
from repro.verify.memmodel import (
    Finding,
    MemoryModelChecker,
    MemoryModelReport,
    run_memory_model,
)
from repro.verify.mutation import (
    broken_commit_ordering,
    broken_write_privatization,
    run_self_test,
    run_war_self_test,
)
from repro.verify.oracle import (
    EquivalencePolicy,
    Outcome,
    compare_outcomes,
    extract_outcome,
    is_time_cell,
    machine_cross_check,
    mask_time_fields,
)
from repro.verify.schedule import (
    CrashScheduleRunner,
    FingerprintPolicy,
    Schedule,
    validate_schedule,
)
from repro.verify.shrink import CounterexampleShrinker, Witness
from repro.verify.workloads import (
    EXTRA_SCENARIOS,
    RUNTIMES,
    WORKLOADS,
    Scenario,
    get_scenario,
    iter_scenarios,
)

__all__ = [
    "Counterexample",
    "CounterexampleShrinker",
    "CrashScheduleExplorer",
    "CrashScheduleRunner",
    "EXTRA_SCENARIOS",
    "EquivalencePolicy",
    "Finding",
    "FingerprintPolicy",
    "MemoryModelChecker",
    "MemoryModelReport",
    "Outcome",
    "RUNTIMES",
    "Scenario",
    "Schedule",
    "ScheduleRun",
    "VerifyReport",
    "WORKLOADS",
    "Witness",
    "broken_commit_ordering",
    "broken_write_privatization",
    "compare_outcomes",
    "extract_outcome",
    "get_scenario",
    "is_time_cell",
    "iter_scenarios",
    "machine_cross_check",
    "mask_time_fields",
    "run_memory_model",
    "run_self_test",
    "run_war_self_test",
    "validate_schedule",
]
