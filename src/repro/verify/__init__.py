"""Intermittence conformance checking (bounded model checking).

Exhaustively enumerates crash schedules up to a bound and checks every
resulting intermittent execution against a continuous-power oracle —
the mechanical form of the correctness claim task-based intermittent
runtimes make ("every intermittent execution is equivalent to some
continuous execution"). See ``docs/verification.md``.

Entry points:

* :class:`CrashScheduleExplorer` — the search engine;
* :func:`get_scenario` / :func:`iter_scenarios` — the workload ×
  runtime matrix;
* :class:`CounterexampleShrinker` — witness minimization;
* :func:`run_self_test` — the mutation self-test proving the checker
  catches a deliberately injected recovery bug;
* ``repro verify`` — the CLI front-end.
"""

from repro.verify.explorer import (
    Counterexample,
    CrashScheduleExplorer,
    ScheduleRun,
    VerifyReport,
)
from repro.verify.mutation import broken_commit_ordering, run_self_test
from repro.verify.oracle import (
    EquivalencePolicy,
    Outcome,
    compare_outcomes,
    extract_outcome,
    machine_cross_check,
    mask_time_fields,
)
from repro.verify.schedule import CrashScheduleRunner, Schedule, validate_schedule
from repro.verify.shrink import CounterexampleShrinker, Witness
from repro.verify.workloads import (
    EXTRA_SCENARIOS,
    RUNTIMES,
    WORKLOADS,
    Scenario,
    get_scenario,
    iter_scenarios,
)

__all__ = [
    "Counterexample",
    "CounterexampleShrinker",
    "CrashScheduleExplorer",
    "CrashScheduleRunner",
    "EXTRA_SCENARIOS",
    "EquivalencePolicy",
    "Outcome",
    "RUNTIMES",
    "Scenario",
    "Schedule",
    "ScheduleRun",
    "VerifyReport",
    "WORKLOADS",
    "Witness",
    "broken_commit_ordering",
    "compare_outcomes",
    "extract_outcome",
    "get_scenario",
    "iter_scenarios",
    "machine_cross_check",
    "mask_time_fields",
    "run_self_test",
    "validate_schedule",
]
