"""Verification scenarios: workload × runtime pairs the checker runs.

Each :class:`Scenario` builds a *deterministic* deployment on a
continuously-powered device — the only power failures in a verification
run are the ones the crash schedule injects, so a schedule identifies an
execution exactly and the crash-free run doubles as the continuous
oracle.

Determinism requires two deliberate deviations from the benchmark
configs:

* **Frozen sensors.** The stock workloads model sensors as functions of
  time; re-execution after a crash would then legitimately read
  different values, and the oracle comparison could not distinguish
  that from a lost write. Verification scenarios freeze every sensor at
  its t=0 value (timestamps written *into* channels are masked by the
  policy instead — see :data:`repro.verify.oracle.TIME_KEYS`).
* **Scaled specs.** Collection counts are reduced (e.g. ``collect: 10``
  → ``collect: 2``) so a full application run stays a few hundred
  energy payments and bounded exploration is exhaustive in seconds.

The matrix covers three workloads (health wearable, trap camera,
synthetic task graph) on all four runtimes (ARTEMIS, Mayfly, Chain,
checkpoint). Chain scenarios hand-roll inline checks, checkpoint
scenarios re-express the pipeline as block programs — both per their
runtime's programming model; their oracles compare the runtime's own
durable outputs.

:data:`EXTRA_SCENARIOS` extends the matrix beyond the cross product:
the ``ota`` scenario wraps ARTEMIS in the fleet update pipeline
(:mod:`repro.fleet`) and receives + installs a monitor update
*mid-flight*, so bounded exploration covers crashes inside chunk
receipt, the journaled A/B activation, and migration roll-forward —
the update must land atomically under every crash schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.baselines.chain import ChainRuntime
from repro.baselines.mayfly import (
    Collection,
    Expiration,
    MayflyConfig,
    MayflyRuntime,
)
from repro.checkpoint.program import Block, CheckpointProgram
from repro.checkpoint.runtime import CheckpointRuntime
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment
from repro.energy.power import MCU_ACTIVE_POWER_W, PowerModel, TaskCost
from repro.errors import ReproError
from repro.fleet.bundle import build_bundle
from repro.fleet.device import UpdatableRuntime
from repro.fleet.install import BundleInstaller
from repro.fleet.transport import OtaTransport
from repro.sim.device import Device
from repro.taskgraph.app import Application
from repro.taskgraph.builder import AppBuilder
from repro.verify.explorer import CrashScheduleExplorer
from repro.verify.oracle import EquivalencePolicy, mask_time_fields
from repro.workloads.camera import (
    build_camera_app,
    build_camera_runtime,
    camera_power_model,
)
from repro.workloads.health import (
    build_artemis,
    build_health_app,
    health_power_model,
)
from repro.workloads.synthetic import synthetic_app, synthetic_properties

WORKLOADS = ("health", "camera", "synthetic")
RUNTIMES = ("artemis", "mayfly", "chain", "checkpoint")

#: Scenarios outside the workload × runtime cross product. The ``ota``
#: workloads exist only for ARTEMIS: they verify the fleet OTA pipeline
#: (receive → stage → journaled activate → migrate), which the baseline
#: runtimes do not implement. ``ota`` ships a full bundle; ``ota-delta``
#: ships a delta against the installed version, covering the end-to-end
#: server-side encode → transport → on-device reconstruct → install →
#: swap path (bundle → transport → install → swap). ``temporal`` runs
#: past-time temporal-logic properties (shared sub-monitors, a firing
#: root) through bounded crash exploration and additionally compares
#: the sub-monitors' durable state against the continuous oracle.
EXTRA_SCENARIOS = (("ota", "artemis"), ("ota-delta", "artemis"),
                   ("temporal", "artemis"))

#: Health benchmark spec scaled for exhaustive exploration: collect 2
#: instead of 10 (one path restart in the oracle run), generous retry
#: ceilings so a bounded number of injected crashes cannot exhaust them.
VERIFY_HEALTH_SPEC = """
micSense: {
    maxTries: 10 onFail: skipPath Path: 3;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 2 dpTask: bodyTemp onFail: restartPath;
}

accel {
    maxTries: 10 onFail: skipPath Path: 2;
}
"""


@dataclass
class Scenario:
    """One verifiable deployment: how to build it and how to judge it."""

    name: str
    workload: str
    runtime: str
    build: Callable[[], Tuple[Device, Any]]
    policy: EquivalencePolicy = field(default_factory=EquivalencePolicy)
    extract_extra: Optional[Callable[[Any, Any], Dict[str, Any]]] = None
    run_kwargs: Dict[str, Any] = field(default_factory=dict)
    time_sensitive: bool = False

    def explorer(self) -> CrashScheduleExplorer:
        return CrashScheduleExplorer(
            build=self.build,
            policy=self.policy,
            extract_extra=self.extract_extra,
            run_kwargs=self.run_kwargs,
            time_sensitive=self.time_sensitive,
            name=self.name,
        )


def _device() -> Device:
    return Device(EnergyEnvironment.continuous())


def _freeze_sensors(app: Application) -> Application:
    """Replace every sensor with its (deterministic) t=0 constant."""
    for name, fn in list(app.sensors.items()):
        value = fn(0.0)
        app.sensors[name] = (lambda v: (lambda t: v))(value)
    return app


# ---------------------------------------------------------------------------
# Health wearable
# ---------------------------------------------------------------------------

def _health_app() -> Application:
    return _freeze_sensors(build_health_app())


def _health_artemis() -> Tuple[Device, Any]:
    device = _device()
    return device, build_artemis(device, app=_health_app(),
                                 spec=VERIFY_HEALTH_SPEC)


def _health_mayfly_config() -> MayflyConfig:
    return MayflyConfig(
        expirations=[Expiration("send", "accel", 300.0, path=2)],
        collections=[
            Collection("calcAvg", "bodyTemp", 2, path=1),
            Collection("send", "micSense", 1, path=3),
        ],
    )


def _health_mayfly() -> Tuple[Device, Any]:
    device = _device()
    return device, MayflyRuntime(_health_app(), _health_mayfly_config(),
                                 device, health_power_model())


def _health_chain() -> Tuple[Device, Any]:
    def need_two_temps(ctx):
        # Hand-rolled collect: 2 — the Figure 2(a) anti-pattern.
        if len(ctx.read("temps", [])) < 2:
            return "restart_path"
        return None

    device = _device()
    return device, ChainRuntime(_health_app(), {"calcAvg": need_two_temps},
                                device, health_power_model())


def _health_checkpoint() -> Tuple[Device, Any]:
    def sense(state):
        state.setdefault("temps", []).append(36.6)

    def avg(state):
        temps = state["temps"]
        state["avgTemp"] = sum(temps) / len(temps)

    def send(state):
        state.setdefault("sent", []).append({"avgTemp": state["avgTemp"]})

    program = CheckpointProgram(
        "health",
        blocks=[
            Block("sense1", 0.05, body=sense),
            Block("sense2", 0.05, body=sense),
            Block("avg", 0.08, body=avg),
            Block("send", 0.30, 1.0e-3, body=send),
        ],
        # No checkpoint after sense2: a crash inside `avg` re-executes
        # sense2 from the sense1 snapshot — re-execution idempotence is
        # exactly what the oracle comparison checks.
        checkpoint_after=["sense1", "avg", "send"],
    )
    device = _device()
    return device, CheckpointRuntime(program, device)


# ---------------------------------------------------------------------------
# Trap camera
# ---------------------------------------------------------------------------

def _camera_app() -> Application:
    return _freeze_sensors(build_camera_app())


def _camera_artemis() -> Tuple[Device, Any]:
    device = _device()
    return device, build_camera_runtime(device, app=_camera_app())


def _camera_mayfly() -> Tuple[Device, Any]:
    config = MayflyConfig(
        expirations=[Expiration("uplinkMeta", "infer", 120.0, path=2)],
        collections=[Collection("infer", "capture", 1, path=2)],
    )
    device = _device()
    return device, MayflyRuntime(_camera_app(), config, device,
                                 camera_power_model())


def _camera_chain() -> Tuple[Device, Any]:
    def recheck_once(ctx):
        # Restart the detection path once: exercises a check-driven
        # restart whose marker write shares a commit with control state.
        if ctx.read("recheck", 0) < 1:
            ctx.write("recheck", 1)
            return "restart_path"
        return None

    def need_confidence(ctx):
        if ctx.read("confidence", None) is None:
            return "restart_path"
        return None

    device = _device()
    checks = {"compress": recheck_once, "uplinkMeta": need_confidence}
    return device, ChainRuntime(_camera_app(), checks, device,
                                camera_power_model())


def _camera_checkpoint() -> Tuple[Device, Any]:
    def capture(state):
        state["frame"] = {"luma": 0.4}

    def compress(state):
        state["jpeg"] = {"kb": 12.0}

    def infer(state):
        state["confidence"] = 0.3 + 0.6 * state["frame"]["luma"]

    def uplink(state):
        state.setdefault("uplinked", []).append(
            {"kind": "meta", "confidence": state["confidence"]})

    program = CheckpointProgram(
        "camera",
        blocks=[
            Block("capture", 1.2, 15.0e-3, body=capture),
            Block("compress", 2.0, 0.8e-3, body=compress),
            Block("infer", 3.0, 1.0e-3, body=infer),
            Block("uplink", 2.5, 8.0e-3, body=uplink),
        ],
        checkpoint_after=["capture", "infer", "uplink"],
    )
    device = _device()
    return device, CheckpointRuntime(program, device)


# ---------------------------------------------------------------------------
# Synthetic task graph
# ---------------------------------------------------------------------------

_SYNTH_SEED = 7


def _synthetic() -> Tuple[Application, Any]:
    return synthetic_app(n_paths=2, tasks_per_path=(2, 3), seed=_SYNTH_SEED)


def _synthetic_artemis() -> Tuple[Device, Any]:
    app, power = _synthetic()
    props = synthetic_properties(app, density=0.6, seed=_SYNTH_SEED)
    device = _device()
    return device, ArtemisRuntime(app, props, device, power)


def _synthetic_mayfly() -> Tuple[Device, Any]:
    app, power = _synthetic()
    collections: List[Collection] = []
    for path in app.paths:
        if len(path.task_names) >= 2:
            collections.append(Collection(path.task_names[1],
                                          path.task_names[0], 2,
                                          path=path.number))
            break
    device = _device()
    return device, MayflyRuntime(app, MayflyConfig(collections=collections),
                                 device, power)


def _synthetic_chain() -> Tuple[Device, Any]:
    app, power = _synthetic()
    target = app.paths[0].task_names[-1]

    def restart_once(ctx):
        if ctx.read("lap", 0) < 1:
            ctx.write("lap", 1)
            return "restart_path"
        return None

    device = _device()
    return device, ChainRuntime(app, {target: restart_once}, device, power)


def _synthetic_checkpoint() -> Tuple[Device, Any]:
    def step(i):
        def body(state):
            state["acc"] = state.get("acc", 0) + i + 1
        return body

    program = CheckpointProgram(
        "synthetic",
        blocks=[Block(f"b{i}", 0.1 + 0.05 * i, body=step(i))
                for i in range(4)],
        checkpoint_after=["b0", "b2", "b3"],
    )
    device = _device()
    return device, CheckpointRuntime(program, device)


# ---------------------------------------------------------------------------
# OTA update mid-flight (fleet pipeline on ARTEMIS)
# ---------------------------------------------------------------------------

#: Installed spec: one retry guard on the sensing task. Neither version
#: ever *fires* (no sensor faults, collect threshold always met), so the
#: corrective-action stream is empty under both monitor sets and the
#: oracle comparison isolates update atomicity from monitor semantics.
OTA_SPEC_V1 = """
sense: {
    maxTries: 10 onFail: skipPath Path: 1;
}
"""

#: The update: the ``sense`` machine changes semantics (retry ceiling),
#: and a ``collect`` machine is *added* on ``send`` — so activation
#: exercises both legs of the migration log (reset changed machine,
#: attach added machine) while staying non-firing.
OTA_SPEC_V2 = """
sense: {
    maxTries: 12 onFail: skipPath Path: 1;
}

send: {
    collect: 1 dpTask: sense onFail: restartPath Path: 1;
}
"""

#: The v2 bundle is ~650 wire bytes; 3 chunks keeps several radio
#: payments (= crash points) inside the transfer without bloating the
#: exploration frontier.
_OTA_CHUNK_SIZE = 256


def _ota_app() -> Application:
    def sense(ctx):
        ctx.write("reading", ctx.sample("adc"))

    def send(ctx):
        ctx.append("sent", {"reading": ctx.read("reading")})

    return (
        AppBuilder("ota_demo")
        .task("sense", body=sense)
        .task("send", body=send)
        .path(1, ["sense", "send"])
        .sensor("adc", lambda t: 21.5)
        .build()
    )


def _ota_artemis() -> Tuple[Device, Any]:
    device = _device()
    app = _ota_app()
    power = PowerModel({
        "sense": TaskCost(0.05, MCU_ACTIVE_POWER_W),
        "send": TaskCost(0.30, MCU_ACTIVE_POWER_W, 1.0e-3),
    })
    runtime = build_artemis(device, app=app, spec=OTA_SPEC_V1, power=power)
    installer = BundleInstaller(device.nvm, journal=runtime.journal)
    installer.install_initial(build_bundle(OTA_SPEC_V1, app, version=1))
    # Lossless link: ChunkLoss draws from an RNG per delivery attempt,
    # which would make crash schedules perturb later deliveries and
    # break replayability. Crashes themselves still interrupt the
    # transfer; resumption is what is under test, not retry backoff.
    transport = OtaTransport(device.nvm, chunk_size=_OTA_CHUNK_SIZE)
    updatable = UpdatableRuntime(runtime, installer, transport)
    updatable.push(build_bundle(OTA_SPEC_V2, app, version=2).to_wire(), 2)
    return device, updatable


def _ota_delta_artemis() -> Tuple[Device, Any]:
    """The full fleet path: server delta-encodes v2 against the installed
    v1 bundle, the wire crosses the (chunked) transport, and the device
    reconstructs, stages, journal-activates and migrates — so bounded
    exploration covers crashes inside every stage of bundle → transport
    → install → swap, including the hash-guarded delta reconstruction."""
    device = _device()
    app = _ota_app()
    power = PowerModel({
        "sense": TaskCost(0.05, MCU_ACTIVE_POWER_W),
        "send": TaskCost(0.30, MCU_ACTIVE_POWER_W, 1.0e-3),
    })
    runtime = build_artemis(device, app=app, spec=OTA_SPEC_V1, power=power)
    installer = BundleInstaller(device.nvm, journal=runtime.journal)
    v1 = build_bundle(OTA_SPEC_V1, app, version=1)
    installer.install_initial(v1)
    transport = OtaTransport(device.nvm, chunk_size=_OTA_CHUNK_SIZE)
    updatable = UpdatableRuntime(runtime, installer, transport)
    delta = v1.delta_to(build_bundle(OTA_SPEC_V2, app, version=2))
    updatable.push(delta.to_wire(), 2)
    return device, updatable


def _ota_extract(device, runtime) -> Dict[str, Any]:
    """Durable update state every crash schedule must agree on: the v2
    set fully active, migration drained, probation ended by the post-
    update run — i.e. never a half-installed device."""
    installer = runtime.installer
    return {
        "active_version": installer.active_version,
        "monitor_version": runtime.monitor_version,
        "probation": installer.probation,
        "migration_pending": installer.migration_pending,
        "transfer_failed": runtime.transport.failed,
        "update_outcome": runtime.update_outcome,
    }


# ---------------------------------------------------------------------------
# Temporal-logic properties under crashes (ARTEMIS only)
# ---------------------------------------------------------------------------

#: Past-time temporal properties over a three-task pipeline. The three
#: ``once ended(sense)`` occurrences hash-cons into ONE shared
#: sub-monitor with three owning roots, and the ``since`` property adds
#: a wildcard-dispatch sub-monitor — the sharing and dependency-order
#: machinery the crash search must keep crash-consistent. Every formula
#: is time-insensitive (no bounded operators): a crash legitimately
#: shifts timestamps, which must not change any verdict. The labelled
#: ``fires`` property is deliberately false at every ``send`` end
#: (``not ended(send)`` evaluated on the end event), so each run emits
#: exactly one skipPath — the oracle comparison covers a *firing*
#: temporal root, not just vacuous ones.
VERIFY_TEMPORAL_SPEC = """
send: {
    temporal: started(send) -> once ended(sense) onFail: restartPath Path: 1;
    temporal: once ended(sense) at: end onFail: skipPath Path: 1;
    temporal: not ended(send) since ended(sense) at: start onFail: skipPath Path: 1;
    temporal: not ended(send) at: end label: fires onFail: skipPath Path: 1;
}

process: {
    temporal: once ended(sense) at: start label: saw_sense onFail: restartPath Path: 1;
}
"""


def _temporal_app() -> Application:
    def sense(ctx):
        ctx.write("reading", ctx.sample("adc"))

    def process(ctx):
        ctx.write("scaled", ctx.read("reading") * 2.0)

    def send(ctx):
        ctx.append("sent", {"scaled": ctx.read("scaled")})

    return (
        AppBuilder("temporal_demo")
        .task("sense", body=sense, monitored_vars=("reading",))
        .task("process", body=process)
        .task("send", body=send)
        .path(1, ["sense", "process", "send"])
        .sensor("adc", lambda t: 21.5)
        .build()
    )


def _temporal_artemis() -> Tuple[Device, Any]:
    device = _device()
    app = _temporal_app()
    power = PowerModel({
        "sense": TaskCost(0.05, MCU_ACTIVE_POWER_W),
        "process": TaskCost(0.10, MCU_ACTIVE_POWER_W),
        "send": TaskCost(0.30, MCU_ACTIVE_POWER_W, 1.0e-3),
    })
    return device, build_artemis(device, app=app,
                                 spec=VERIFY_TEMPORAL_SPEC, power=power)


def _temporal_extract(device, runtime) -> Dict[str, Any]:
    """Durable temporal-monitor state every crash schedule must agree
    on: shared sub-monitor variables (the ``once``/``since`` facts) and
    the root machines' states. Timestamp-valued variables (a bounded
    once's ``last`` witness) are excluded — re-execution legitimately
    shifts them."""
    out: Dict[str, Any] = {}
    for name in device.nvm:
        if not name.startswith("monitor."):
            continue
        if ".tl_" not in name and ".temporal_" not in name:
            continue
        if name.endswith("var.last"):
            continue
        out[name] = device.nvm.cell(name).get()
    return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _checkpoint_extract(program_name: str):
    """Checkpoint outcomes live in the snapshot slots, not channels."""
    def extract(device, runtime) -> Dict[str, Any]:
        nvm = device.nvm
        slot = nvm.cell(f"ckpt.{program_name}.current").get()
        if slot not in (0, 1):
            return {"snapshot": None}
        snapshot = nvm.cell(f"ckpt.{program_name}.slot{slot}").get()
        return {"pc": snapshot["pc"],
                "state": mask_time_fields(snapshot["state"])}
    return extract


_BUILDS: Dict[Tuple[str, str], Callable[[], Tuple[Device, Any]]] = {
    ("health", "artemis"): _health_artemis,
    ("health", "mayfly"): _health_mayfly,
    ("health", "chain"): _health_chain,
    ("health", "checkpoint"): _health_checkpoint,
    ("camera", "artemis"): _camera_artemis,
    ("camera", "mayfly"): _camera_mayfly,
    ("camera", "chain"): _camera_chain,
    ("camera", "checkpoint"): _camera_checkpoint,
    ("synthetic", "artemis"): _synthetic_artemis,
    ("synthetic", "mayfly"): _synthetic_mayfly,
    ("synthetic", "chain"): _synthetic_chain,
    ("synthetic", "checkpoint"): _synthetic_checkpoint,
    ("ota", "artemis"): _ota_artemis,
    ("ota-delta", "artemis"): _ota_delta_artemis,
    ("temporal", "artemis"): _temporal_artemis,
}

_CHECKPOINT_PROGRAMS = {"health": "health", "camera": "camera",
                        "synthetic": "synthetic"}


def get_scenario(workload: str, runtime: str) -> Scenario:
    """The scenario for one workload × runtime pair."""
    key = (workload, runtime)
    if key not in _BUILDS:
        raise ReproError(
            f"unknown scenario {workload!r} × {runtime!r}; workloads: "
            f"{WORKLOADS} (+ extras {EXTRA_SCENARIOS}), "
            f"runtimes: {RUNTIMES}")
    extract: Optional[Callable[[Any, Any], Dict[str, Any]]] = None
    run_kwargs: Dict[str, Any] = {}
    if runtime == "checkpoint":
        extract = _checkpoint_extract(_CHECKPOINT_PROGRAMS[workload])
    elif workload == "temporal":
        extract = _temporal_extract
        # Two runs: the shared once/since facts survive the run
        # boundary, so the second run checks warm-state verdicts too.
        run_kwargs = {"runs": 2}
    elif workload in ("ota", "ota-delta"):
        extract = _ota_extract
        # Enough application runs that the crash-free oracle finishes
        # fully installed: the transfer delivers one chunk per loop
        # iteration, and the queued swap lands at the next path
        # boundary. The delta wire (~1.5 KB: full spec + changed
        # machines + guard hashes) spans 6 chunks vs. the full bundle's
        # 3, so it needs one more run to drain.
        run_kwargs = {"runs": 2 if workload == "ota" else 3}
    return Scenario(
        name=f"{workload}-{runtime}",
        workload=workload,
        runtime=runtime,
        build=_BUILDS[key],
        policy=EquivalencePolicy(),
        extract_extra=extract,
        run_kwargs=run_kwargs,
    )


def iter_scenarios(
    workloads: Optional[Iterable[str]] = None,
    runtimes: Optional[Iterable[str]] = None,
) -> List[Scenario]:
    """Scenarios for the given selections (defaults: the full matrix).

    The default matrix is the workload × runtime cross product plus
    :data:`EXTRA_SCENARIOS`. Selections are validated by *name* (an
    unknown workload or runtime raises), but pairs a selection spans
    that have no build — e.g. ``ota`` on a baseline runtime — are
    silently skipped; an empty result raises.
    """
    ws = tuple(workloads) if workloads is not None else None
    rs = tuple(runtimes) if runtimes is not None else None
    known_w = set(WORKLOADS) | {w for w, _ in EXTRA_SCENARIOS}
    known_r = set(RUNTIMES) | {r for _, r in EXTRA_SCENARIOS}
    for name in (ws or ()):
        if name not in known_w:
            raise ReproError(
                f"unknown workload {name!r}; known: {sorted(known_w)}")
    for name in (rs or ()):
        if name not in known_r:
            raise ReproError(
                f"unknown runtime {name!r}; known: {sorted(known_r)}")
    keys = [(w, r) for w in (ws or WORKLOADS) for r in (rs or RUNTIMES)]
    for extra in EXTRA_SCENARIOS:
        if extra in keys:
            continue
        if (ws is None or extra[0] in ws) and (rs is None or extra[1] in rs):
            keys.append(extra)
    out = [get_scenario(w, r) for w, r in keys if (w, r) in _BUILDS]
    if not out:
        raise ReproError(
            f"no scenarios match workloads={ws} runtimes={rs}")
    return out
