"""Mutation self-test: prove the checker can actually find bugs.

A conformance checker that has never caught a bug is unfalsifiable. This
module injects a known commit-ordering bug —
:attr:`repro.nvm.journal.CommitJournal.TEST_SKIP_RECOVERY_APPLY` makes
boot-time roll-forward recovery silently skip re-applying the first
journal entry — and asserts the checker finds it and shrinks it to a
short witness.

The injected bug is invisible to crash-free execution (commits that are
never interrupted apply every entry), so plain tests cannot catch it;
only an execution that crashes *between the journal's seal and its
first apply step* exposes the lost write. That is exactly the class of
bug the explorer's per-commit-step crash points exist for.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.nvm.journal import CommitJournal
from repro.nvm.transaction import Transaction
from repro.verify.explorer import VerifyReport
from repro.verify.memmodel import MemoryModelReport, run_memory_model
from repro.verify.shrink import CounterexampleShrinker, Witness
from repro.verify.workloads import Scenario, get_scenario


@contextmanager
def broken_commit_ordering():
    """Enable the injected recovery bug for the duration of the block."""
    previous = CommitJournal.TEST_SKIP_RECOVERY_APPLY
    CommitJournal.TEST_SKIP_RECOVERY_APPLY = True
    try:
        yield
    finally:
        CommitJournal.TEST_SKIP_RECOVERY_APPLY = previous


@contextmanager
def broken_write_privatization():
    """Enable the injected WAR-hazard bug for the duration of the block.

    :attr:`repro.nvm.transaction.Transaction.TEST_WRITE_THROUGH_STAGE`
    makes every staged write also land durably at stage time — the
    unprivatized write Alpaca-style privatization exists to prevent.
    """
    previous = Transaction.TEST_WRITE_THROUGH_STAGE
    Transaction.TEST_WRITE_THROUGH_STAGE = True
    try:
        yield
    finally:
        Transaction.TEST_WRITE_THROUGH_STAGE = previous


def run_self_test(
    scenario: Optional[Scenario] = None,
    bound: int = 1,
    budget: int = 200,
    shrink_runs: int = 100,
) -> Tuple[VerifyReport, Witness]:
    """Inject the bug, explore, and shrink the counterexample.

    Returns the (failing) report and the minimized witness. Raises
    :class:`~repro.errors.ReproError` if the checker does *not* catch
    the injected bug — the self-test's whole point.
    """
    scenario = scenario if scenario is not None else get_scenario(
        "health", "artemis")
    with broken_commit_ordering():
        explorer = scenario.explorer()
        report = explorer.explore(bound=bound, budget=budget)
        if report.ok:
            raise ReproError(
                f"mutation self-test: checker missed the injected "
                f"commit-ordering bug on {scenario.name} "
                f"({report.schedules_checked} schedules, "
                f"truncated={report.truncated})")
        shrinker = CounterexampleShrinker(explorer, max_runs=shrink_runs)
        witness = shrinker.shrink(report.counterexamples[0])
    return report, witness


def run_war_self_test(
    scenario: Optional[Scenario] = None,
    max_crash_index: int = 40,
) -> Tuple[Tuple[int, ...], MemoryModelReport]:
    """Prove the memory-model oracles catch an unprivatized write.

    Injects :func:`broken_write_privatization` and memory-model-checks
    single-crash runs until one yields a manifest WAR or idempotence
    finding. No continuous-power twin is ever run — the verdict comes
    from one intermittent run's own access log, which is the
    :class:`~repro.verify.memmodel.MemoryModelChecker`'s whole claim.

    Returns the catching schedule and its report; raises
    :class:`~repro.errors.ReproError` if no crash index up to
    ``max_crash_index`` exposes the bug.
    """
    scenario = scenario if scenario is not None else get_scenario(
        "ota", "artemis")
    with broken_write_privatization():
        for index in range(1, max_crash_index + 1):
            schedule = (index,)
            report = run_memory_model(
                scenario.build, schedule, scenario.run_kwargs)
            if not report.ok:
                return schedule, report
    raise ReproError(
        f"WAR mutation self-test: memory-model checker missed the "
        f"injected unprivatized write on {scenario.name} in "
        f"{max_crash_index} single-crash runs")
