"""Mutation self-test: prove the checker can actually find bugs.

A conformance checker that has never caught a bug is unfalsifiable. This
module injects a known commit-ordering bug —
:attr:`repro.nvm.journal.CommitJournal.TEST_SKIP_RECOVERY_APPLY` makes
boot-time roll-forward recovery silently skip re-applying the first
journal entry — and asserts the checker finds it and shrinks it to a
short witness.

The injected bug is invisible to crash-free execution (commits that are
never interrupted apply every entry), so plain tests cannot catch it;
only an execution that crashes *between the journal's seal and its
first apply step* exposes the lost write. That is exactly the class of
bug the explorer's per-commit-step crash points exist for.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.nvm.journal import CommitJournal
from repro.verify.explorer import VerifyReport
from repro.verify.shrink import CounterexampleShrinker, Witness
from repro.verify.workloads import Scenario, get_scenario


@contextmanager
def broken_commit_ordering():
    """Enable the injected recovery bug for the duration of the block."""
    previous = CommitJournal.TEST_SKIP_RECOVERY_APPLY
    CommitJournal.TEST_SKIP_RECOVERY_APPLY = True
    try:
        yield
    finally:
        CommitJournal.TEST_SKIP_RECOVERY_APPLY = previous


def run_self_test(
    scenario: Optional[Scenario] = None,
    bound: int = 1,
    budget: int = 200,
    shrink_runs: int = 100,
) -> Tuple[VerifyReport, Witness]:
    """Inject the bug, explore, and shrink the counterexample.

    Returns the (failing) report and the minimized witness. Raises
    :class:`~repro.errors.ReproError` if the checker does *not* catch
    the injected bug — the self-test's whole point.
    """
    scenario = scenario if scenario is not None else get_scenario(
        "health", "artemis")
    with broken_commit_ordering():
        explorer = scenario.explorer()
        report = explorer.explore(bound=bound, budget=budget)
        if report.ok:
            raise ReproError(
                f"mutation self-test: checker missed the injected "
                f"commit-ordering bug on {scenario.name} "
                f"({report.schedules_checked} schedules, "
                f"truncated={report.truncated})")
        shrinker = CounterexampleShrinker(explorer, max_runs=shrink_runs)
        witness = shrinker.shrink(report.counterexamples[0])
    return report, witness
