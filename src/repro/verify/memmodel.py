"""Formal memory-model oracles over NVM access logs.

"Towards a Formal Foundation of Intermittent Computing" (Surbatovich et
al., OOPSLA '20) proves that an intermittent execution is equivalent to
some continuous execution exactly when (a) no re-executed code observes
its own earlier non-volatile writes — the *write-after-read* (WAR)
hazard — and (b) every re-execution repeats the first attempt's writes
— *idempotence*. Both properties are decidable from the memory access
log of a single intermittent run, which is what
:class:`MemoryModelChecker` does: it reads an
:class:`~repro.nvm.accesslog.AccessLog` and passes a verdict without
ever running a continuous-power twin.

**WAR oracle.** Within one failure-atomic region (the work between two
commit points), a cell whose first direct (``via == "task"``) access is
a read and which is later written directly is a WAR hazard: if a crash
lands after the write, the region re-executes and its read now observes
the post-write value, diverging from every continuous execution. The
hazard is *latent* wherever the pattern occurs and *manifest* when the
region actually was interrupted and recovery rolled back (or found the
journal clean/corrupt) — i.e. the region really does re-execute against
its own residue. Three cell classes are exempt:

* journal cells (the commit protocol's own state — prefix-matched
  against the journals observed in the log);
* writes applied ``via`` the journal's roll-forward or boot recovery
  (they *are* the commit, not the program); and
* cells allocated with ``progress=True`` — declared crash-progress
  linearization points (task PCs, cursors, retry counters, A/B
  switches) in the DINO/Alpaca tradition of manual WAR exemptions:
  their whole job is to be read, advanced, and re-read differently
  after a crash.

**Idempotence oracle.** A region interrupted before its commit point
re-executes from the top. Deterministic re-execution must *stage* the
same write intents, in the same order, with the same (normalized)
values: the interrupted attempt's stage sequence must be a prefix of
the re-execution's. Direct writes are excluded here — progress cells
legitimately differ between attempts — so the oracle compares
``OP_STAGE`` events only. A re-execution cut short by the next crash
before reaching the first attempt's length is *inconclusive*, not a
violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.nvm.accesslog import (
    OP_CLEAR,
    OP_READ,
    OP_RECOVER,
    OP_STAGE,
    OP_WRITE,
    VIA_TASK,
    AccessEvent,
    AccessLog,
)

#: Recovery outcomes after which the interrupted region re-executes.
#: ``rolled_forward`` means the commit linearized — the region is done
#: and nothing re-executes, so hazards in it cannot manifest.
_REEXEC_OUTCOMES = frozenset({"clean", "rolled_back", "corrupt"})


@dataclass
class Finding:
    """One memory-model verdict element."""

    #: ``"war"`` or ``"idempotence"``.
    kind: str
    #: The offending cell (WAR) or first diverging cell (idempotence).
    cell: Optional[str]
    #: Where the offending region ran.
    epoch: int
    region: int
    #: True when the log proves the hazard was exercised (the region was
    #: interrupted and re-executed); False for latent WAR patterns.
    manifest: bool
    detail: str = ""

    def describe(self) -> str:
        state = "manifest" if self.manifest else "latent"
        where = f"epoch {self.epoch}, region {self.region}"
        head = f"{self.kind.upper()} [{state}] cell {self.cell!r} ({where})"
        return f"{head}: {self.detail}" if self.detail else head


@dataclass
class MemoryModelReport:
    """Verdict of one :meth:`MemoryModelChecker.check` pass."""

    findings: List[Finding] = field(default_factory=list)
    #: power failures observed in the log.
    crashes: int = 0
    #: failure-atomic regions the oracles examined.
    checked_regions: int = 0
    #: comparisons the log could not finish (e.g. re-execution itself
    #: interrupted). Inconclusive is not a pass — rerun with a schedule
    #: that lets the re-execution complete.
    inconclusive: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *manifest* finding was recorded."""
        return not any(f.manifest for f in self.findings)

    @property
    def manifest_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.manifest]

    @property
    def latent_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.manifest]

    def describe(self) -> str:
        lines = [
            f"memory model: {'OK' if self.ok else 'VIOLATION'} "
            f"({self.crashes} crashes, {self.checked_regions} regions, "
            f"{len(self.findings)} findings, "
            f"{len(self.inconclusive)} inconclusive)"
        ]
        lines.extend("  " + f.describe() for f in self.findings)
        lines.extend(f"  INCONCLUSIVE: {msg}" for msg in self.inconclusive)
        return "\n".join(lines)


class MemoryModelChecker:
    """WAR / idempotence oracle over a recorded access log.

    Args:
        progress_cells: names exempt from the WAR oracle (pass
            :attr:`NonVolatileMemory.progress_cells`; the convenience
            helpers below wire this automatically).
        extra_journal_prefixes: additional cell-name prefixes to treat
            as commit-protocol infrastructure, on top of the journals
            the log saw markers for.
        latent: also report WAR patterns in regions that were *not*
            interrupted. Latent findings never fail :attr:`ok`, but a
            single crash-free run with ``latent=True`` surveys every
            region for hazards a crash could expose.
    """

    def __init__(self, progress_cells: Iterable[str] = (),
                 extra_journal_prefixes: Iterable[str] = (),
                 latent: bool = False):
        self.progress_cells: FrozenSet[str] = frozenset(progress_cells)
        self.extra_journal_prefixes = tuple(extra_journal_prefixes)
        self.latent = latent

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self, log: AccessLog) -> MemoryModelReport:
        report = MemoryModelReport()
        journal_prefixes = log.journal_prefixes() + self.extra_journal_prefixes
        epochs = self._split_epochs(log.events)
        report.crashes = max(0, len(epochs) - 1)

        for epoch_idx, events in enumerate(epochs):
            interrupted = epoch_idx < len(epochs) - 1
            regions = self._split_regions(events)
            if not regions:
                continue
            last_region = max(regions)
            reexecutes = False
            if interrupted:
                outcomes = self._boot_outcomes(epochs[epoch_idx + 1])
                reexecutes = not any(o == "rolled_forward" for o in outcomes)
            for region_id in sorted(regions):
                report.checked_regions += 1
                manifest = (interrupted and reexecutes
                            and region_id == last_region)
                if manifest or self.latent:
                    self._check_war(regions[region_id], journal_prefixes,
                                    manifest, report)
            if interrupted and reexecutes:
                self._check_idempotence(
                    regions[last_region],
                    epochs[epoch_idx + 1],
                    report,
                )
        return report

    # ------------------------------------------------------------------
    # Log slicing
    # ------------------------------------------------------------------
    @staticmethod
    def _split_epochs(events: Sequence[AccessEvent]) -> List[List[AccessEvent]]:
        epochs: List[List[AccessEvent]] = []
        for event in events:
            while event.epoch >= len(epochs):
                epochs.append([])
            epochs[event.epoch].append(event)
        return epochs

    @staticmethod
    def _split_regions(
        events: Sequence[AccessEvent],
    ) -> Dict[int, List[AccessEvent]]:
        regions: Dict[int, List[AccessEvent]] = {}
        for event in events:
            regions.setdefault(event.region, []).append(event)
        return regions

    @staticmethod
    def _boot_outcomes(next_epoch: Sequence[AccessEvent]) -> List[str]:
        """Recovery outcomes of the boot that follows a crash.

        The boot block ends when task execution resumes — at the first
        staged write or journal ``begin``; recover markers after that
        belong to later commits, not to this crash.
        """
        outcomes: List[str] = []
        for event in next_epoch:
            if event.op == OP_STAGE or event.op == "begin":
                break
            if event.op == OP_RECOVER and event.detail is not None:
                outcomes.append(event.detail)
        return outcomes

    # ------------------------------------------------------------------
    # WAR oracle
    # ------------------------------------------------------------------
    def _exempt(self, cell: str, journal_prefixes: Tuple[str, ...]) -> bool:
        if cell in self.progress_cells:
            return True
        return any(cell.startswith(p) for p in journal_prefixes)

    def _check_war(self, region: Sequence[AccessEvent],
                   journal_prefixes: Tuple[str, ...], manifest: bool,
                   report: MemoryModelReport) -> None:
        first_access: Dict[str, str] = {}
        flagged: set = set()
        for event in region:
            if event.via != VIA_TASK:
                continue
            if event.op == OP_READ:
                first_access.setdefault(event.cell, OP_READ)
            elif event.op == OP_WRITE:
                prior = first_access.setdefault(event.cell, OP_WRITE)
                if (prior == OP_READ and event.cell not in flagged
                        and not self._exempt(event.cell, journal_prefixes)):
                    flagged.add(event.cell)
                    report.findings.append(Finding(
                        kind="war",
                        cell=event.cell,
                        epoch=event.epoch,
                        region=event.region,
                        manifest=manifest,
                        detail=(
                            "read before direct write in one region; "
                            + ("crash landed after the write and the "
                               "region re-executed against its own "
                               "residue" if manifest else
                               "a crash after the write would replay "
                               "the region against its own residue")
                        ),
                    ))

    # ------------------------------------------------------------------
    # Idempotence oracle
    # ------------------------------------------------------------------
    @staticmethod
    def _stages(region: Sequence[AccessEvent]) -> List[Tuple[str, Optional[int]]]:
        return [(e.cell, e.value_sig) for e in region if e.op == OP_STAGE]

    def _check_idempotence(self, attempt1: Sequence[AccessEvent],
                           next_epoch: Sequence[AccessEvent],
                           report: MemoryModelReport) -> None:
        a1 = self._stages(attempt1)
        if not a1:
            return  # nothing was staged before the crash: vacuously idempotent
        epoch = attempt1[0].epoch if attempt1 else 0
        region_id = attempt1[0].region if attempt1 else 0

        # The re-execution is the first region of the next epoch that
        # stages anything (boot bookkeeping uses direct writes only) —
        # *and* whose staged cells overlap the interrupted attempt's.
        # The overlap test matters: an unrelated commit queued before
        # the crash may linearize at the boot path boundary ahead of
        # the re-execution (e.g. a pending OTA activation staging
        # ``slots.*``), and comparing the attempt against that
        # interleaved commit would report a phantom divergence. If no
        # staging region overlaps, fall back to the first one — a
        # re-execution that stages a completely different footprint is
        # exactly the divergence the oracle exists to flag.
        attempt_cells = {c for c, _ in a1}
        regions = self._split_regions(next_epoch)
        reexec_id: Optional[int] = None
        fallback_id: Optional[int] = None
        for rid in sorted(regions):
            staged = {e.cell for e in regions[rid] if e.op == OP_STAGE}
            if not staged:
                continue
            if fallback_id is None:
                fallback_id = rid
            if staged & attempt_cells:
                reexec_id = rid
                break
        if reexec_id is None:
            reexec_id = fallback_id
        if reexec_id is None:
            report.inconclusive.append(
                f"region {region_id} (epoch {epoch}): re-execution staged "
                "nothing before the next crash"
            )
            return
        reexec = regions[reexec_id]
        a2 = self._stages(reexec)
        completed = any(e.op == OP_CLEAR for e in reexec)

        for i, ((c1, s1), (c2, s2)) in enumerate(zip(a1, a2)):
            if c1 != c2 or s1 != s2:
                report.findings.append(Finding(
                    kind="idempotence",
                    cell=c2,
                    epoch=epoch,
                    region=region_id,
                    manifest=True,
                    detail=(
                        f"re-execution diverged at staged write {i}: "
                        f"first attempt staged {c1!r} (sig "
                        f"{s1 if s1 is None else format(s1, '08x')}), "
                        f"re-execution staged {c2!r} (sig "
                        f"{s2 if s2 is None else format(s2, '08x')})"
                    ),
                ))
                return
        if len(a2) < len(a1):
            if completed:
                report.findings.append(Finding(
                    kind="idempotence",
                    cell=a1[len(a2)][0],
                    epoch=epoch,
                    region=region_id,
                    manifest=True,
                    detail=(
                        f"re-execution committed after {len(a2)} staged "
                        f"writes but the first attempt had already staged "
                        f"{len(a1)} before crashing"
                    ),
                ))
            else:
                report.inconclusive.append(
                    f"region {region_id} (epoch {epoch}): re-execution "
                    f"interrupted after {len(a2)}/{len(a1)} staged writes"
                )


# ---------------------------------------------------------------------------
# Convenience: run a scenario under the checker
# ---------------------------------------------------------------------------

def run_memory_model(build, schedule: Tuple[int, ...] = (),
                     run_kwargs: Optional[dict] = None,
                     latent: bool = False) -> MemoryModelReport:
    """Build, run under ``schedule``, and memory-model-check one scenario.

    ``build`` is a ``() -> (device, runtime)`` factory as used by
    :class:`~repro.verify.explorer.CrashScheduleExplorer`. The access
    log normalizes values with
    :func:`~repro.verify.oracle.mask_time_fields` so re-execution
    timestamp drift does not register as divergence.
    """
    from repro.verify.oracle import is_time_cell, mask_time_fields
    from repro.verify.schedule import CrashScheduleRunner

    device, runtime = build()
    log = AccessLog(normalize=mask_time_fields, mask_cells=is_time_cell)
    device.nvm.attach_access_log(log)
    CrashScheduleRunner(schedule, record=False).bind(device)
    device.run(runtime, **(run_kwargs or {}))
    checker = MemoryModelChecker(
        progress_cells=device.nvm.progress_cells, latent=latent)
    return checker.check(log)
