"""Command-line interface to the ARTEMIS toolchain.

Three subcommands mirror the paper's development flow (Figure 3):

``artemis-repro check``
    Parse a property specification against an application description,
    run semantic validation and the static consistency checker.

``artemis-repro compile``
    Run the full generation pipeline: specification → intermediate
    state machines (textual form) → Python monitor source and MSP430 C
    translation unit. Writes one file per artifact.

``artemis-repro simulate``
    Execute the application under the ARTEMIS runtime on a simulated
    intermittent device and report the run summary, monitor actions,
    and an ASCII timeline. ``--predictive-degradation`` swaps the
    reactive shedding controller for the forecast-driven anticipatory
    one (see ``docs/robustness.md``).

``artemis-repro analyze energy``
    Static worst-case energy/latency analysis of the compiled monitors
    (no simulation): per-monitor bounds per dispatched event, per-path
    energy budgets, and the predicted non-termination charging-delay
    threshold per path. Exits 3 when a path is statically
    non-terminating under the given power model.

``artemis-repro verify``
    Run the intermittence conformance checker: enumerate crash
    schedules up to a bound over the built-in workload × runtime
    scenario matrix and check every intermittent execution against its
    continuous-power oracle (see ``docs/verification.md``). Partial-
    order reduction is on by default (``--no-por`` disables);
    ``--memmodel`` adds the WAR/idempotence single-run oracles. Exits 3
    when a counterexample is found, 4 when the run budget cut a search
    short of the bound; ``--self-test`` instead proves the checkers
    catch deliberately injected recovery and privatization bugs.

``artemis-repro fleet``
    Drive the fleet OTA subsystem (see ``docs/fleet.md``): ``status``
    describes the update a rollout would ship (versions, hashes, wire
    sizes, spec-compatibility diff), ``rollout`` pushes it to N
    simulated devices in staged waves with halt-on-regression (exits 3
    when the rollout halts), ``telemetry`` dumps the per-device
    reports of a single-wave rollout, and ``serve`` runs the always-on
    control plane (staged rollout, then ``--cycles`` monitoring passes
    with windowed percentile rollups); ``--stream`` emits live NDJSON
    control-plane events for any of the rollout-driving actions.

Applications are described in JSON (general Python task bodies require
the library API)::

    {
      "name": "demo",
      "tasks": [{"name": "sense", "sense": "adc"}, {"name": "send"}],
      "paths": {"1": ["sense", "send"]},
      "costs": {"sense": {"duration_s": 0.05, "power_w": 0.001},
                "send":  {"duration_s": 0.5,  "power_w": 0.006}},
      "sensors": {"adc": 21.5}
    }

``sensors`` maps names to constant readings. A task with a ``"sense"``
field reads that sensor and commits the value to a channel named after
the task — the access goes through any ``--sensor-faults`` fault models,
so retries and watchdog trips are reproducible from the CLI alone;
tasks without one are cost-model-only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.core.generator import build_monitor_plan
from repro.core.runtime import ArtemisRuntime
from repro.energy.environment import EnergyEnvironment, default_capacitor
from repro.energy.power import MCU_ACTIVE_POWER_W, PowerModel, TaskCost
from repro.errors import ReproError, RuntimeConfigError, SpecError
from repro.fleet import FleetServer, RolloutPlan, build_bundle, compat_diff
from repro.fleet.control import ControlConfig, ControlPlane
from repro.fleet.server import (
    FLEET_SPEC_REGRESSING,
    FLEET_SPEC_V1,
    FLEET_SPEC_V2,
)
from repro.peripherals import PeripheralSet, parse_fault_spec
from repro.sim.analysis import action_summary, render_timeline
from repro.sim.device import Device
from repro.sim.experiments import (
    Sweep,
    format_rows,
    metric_completed,
    metric_reboots,
    metric_total_energy_mj,
    metric_total_time,
)
from repro.sim.pool import ResultCache
from repro.spec.consistency import check as consistency_check
from repro.spec.mayfly_frontend import load_mayfly_properties
from repro.spec.validator import load_properties
from repro.statemachine.codegen_c import generate_c_bundle, generate_c_header
from repro.verify import (
    EXTRA_SCENARIOS,
    RUNTIMES,
    WORKLOADS,
    CounterexampleShrinker,
    iter_scenarios,
    run_memory_model,
    run_self_test,
    run_war_self_test,
)
from repro.statemachine.codegen_python import generate_python_source
from repro.workloads.health import build_health_app
from repro.statemachine.textual import print_machine
from repro.taskgraph.app import Application
from repro.taskgraph.path import Path as TaskPath
from repro.taskgraph.task import Task


def load_app(path: str) -> Application:
    """Build an :class:`Application` from a JSON description file."""
    with open(path) as handle:
        desc = json.load(handle)
    declared_sensors = desc.get("sensors", {})

    def _sensing_body(sensor, channel):
        return lambda ctx: ctx.write(channel, ctx.sample(sensor))

    tasks = []
    for t in desc["tasks"]:
        body = None
        if "sense" in t:
            if t["sense"] not in declared_sensors:
                raise RuntimeConfigError(
                    f"task {t['name']!r} senses unknown sensor "
                    f"{t['sense']!r} (declare it in the \"sensors\" table)"
                )
            body = _sensing_body(t["sense"], t["name"])
        tasks.append(Task(t["name"], body=body,
                          monitored_vars=t.get("monitored_vars", ())))
    paths = [
        TaskPath(int(number), names) for number, names in desc["paths"].items()
    ]
    sensors = {
        name: (lambda t, _v=value: _v)
        for name, value in desc.get("sensors", {}).items()
    }
    return Application(desc.get("name", Path(path).stem), tasks, paths,
                       sensors=sensors)


def load_power(path: str) -> PowerModel:
    """Per-task costs from the app JSON's ``costs`` table."""
    with open(path) as handle:
        desc = json.load(handle)
    costs = {
        name: TaskCost(
            entry["duration_s"],
            entry.get("power_w", MCU_ACTIVE_POWER_W),
            entry.get("fixed_energy_j", 0.0),
        )
        for name, entry in desc.get("costs", {}).items()
    }
    return PowerModel(costs, default_cost=TaskCost(0.05, MCU_ACTIVE_POWER_W))


def _read_spec(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load_props(args: argparse.Namespace, app: Application):
    """Load properties through the selected language frontend."""
    source = _read_spec(args.spec)
    if getattr(args, "frontend", "artemis") == "mayfly":
        return load_mayfly_properties(source, app)
    return load_properties(source, app)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def spec_diagnostic(source: str, path: str, exc: SpecError) -> str:
    """Render a sourced compiler-style diagnostic for a spec error.

    When the exception carries a position (``line``/``column``, both
    1-based), the offending source line is echoed with a caret span of
    ``width`` columns underneath; a ``hint`` attribute becomes a
    trailing ``= hint:`` note. Errors without a position degrade to the
    bare message.
    """
    lines = [f"error: {exc}"]
    line = getattr(exc, "line", None)
    column = getattr(exc, "column", None)
    if line is not None and column is not None:
        source_lines = source.splitlines()
        if 1 <= line <= len(source_lines):
            text = source_lines[line - 1]
            width = max(1, int(getattr(exc, "width", None) or 1))
            gutter = len(str(line))
            lines.append(f"{'':>{gutter}}--> {path}:{line}:{column}")
            lines.append(f"{'':>{gutter}} |")
            lines.append(f"{line} | {text}")
            lines.append(f"{'':>{gutter}} | {'':>{column - 1}}{'^' * width}")
    hint = getattr(exc, "hint", None)
    if hint:
        lines.append(f"  = hint: {hint}")
    return "\n".join(lines)


def cmd_check(args: argparse.Namespace) -> int:
    """Run the ``check`` subcommand; returns the process exit code."""
    app = load_app(args.app)
    try:
        props = _load_props(args, app)
    except SpecError as exc:
        print(spec_diagnostic(_read_spec(args.spec), args.spec, exc),
              file=sys.stderr)
        return 1
    print(f"specification OK: {len(props)} properties on "
          f"{len(props.tasks())} tasks")
    power = load_power(args.app) if args.with_power else None
    capacitor = default_capacitor() if args.with_power else None
    report = consistency_check(props, app, power=power, capacitor=capacitor)
    print(report)
    return 0 if report.consistent else 1


def cmd_compile(args: argparse.Namespace) -> int:
    """Run the ``compile`` subcommand; returns the process exit code."""
    app = load_app(args.app)
    props = _load_props(args, app)
    if args.auto_priorities:
        from repro.analysis import with_derived_priorities

        ranked = with_derived_priorities(props, app, load_power(args.app))
        if ranked is props:
            print("auto-priorities: spec has hand-written priorities; "
                  "keeping them")
        else:
            for prop in ranked:
                if type(prop).SUPPORTS_PRIORITY:
                    print(f"auto-priority {prop.priority}: "
                          f"{prop.machine_name()}")
        props = ranked
    plan = build_monitor_plan(props, share_subformulas=args.share_subformulas)
    machines = plan.machines
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    sm_path = out_dir / "monitors.sm"
    sm_path.write_text("".join(print_machine(m) + "\n" for m in machines))
    py_path = out_dir / "monitors.py"
    py_source = (
        '"""Generated ARTEMIS monitors. DO NOT EDIT."""\n\n'
        "from repro.statemachine.interpreter import Verdict\n"
        "from repro.errors import StateMachineError\n\n\n"
        + "\n\n".join(generate_python_source(m) for m in machines)
    )
    py_path.write_text(py_source)
    c_path = out_dir / "monitors.c"
    c_path.write_text(generate_c_bundle(machines))
    h_path = out_dir / "monitor.h"
    h_path.write_text(generate_c_header())

    if plan.naive_monitors != plan.shared_monitors:
        ratio = plan.shared_monitors / plan.naive_monitors
        print(f"{len(props)} properties -> {plan.shared_monitors} monitors "
              f"(naive {plan.naive_monitors}, sharing ratio {ratio:.2f})")
    else:
        print(f"{len(props)} properties -> {len(machines)} monitors")
    for path in (sm_path, py_path, c_path, h_path):
        print(f"  wrote {path}")
    return 0


def _build_peripherals(app: Application, specs) -> Optional[PeripheralSet]:
    """PeripheralSet from repeated ``--sensor-faults`` values, or None."""
    if not specs:
        return None
    peripherals = PeripheralSet(app.sensors)
    for text in specs:
        sensor, fault = parse_fault_spec(text)
        if sensor not in peripherals:
            raise RuntimeConfigError(
                f"--sensor-faults names unknown sensor {sensor!r} "
                f"(declare it in the app JSON's \"sensors\" table)"
            )
        peripherals.attach(sensor, fault)
    return peripherals


def _parse_degradation(text: Optional[str]):
    """``LOW:HIGH`` watermark fractions of one capacitor charge cycle."""
    if text is None:
        return None
    try:
        low_s, high_s = text.split(":", 1)
        low, high = float(low_s), float(high_s)
    except ValueError:
        raise RuntimeConfigError(
            f"--degradation must be LOW:HIGH fractions, got {text!r}"
        ) from None
    usable = default_capacitor().usable_energy_per_cycle
    return (low * usable, high * usable)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the ``analyze`` subcommand; returns the process exit code.

    Exit codes: 0 = every path statically terminates, 1 = usage error,
    3 = at least one path is statically non-terminating under the given
    power model — at ``--charging-delay`` when one is given, at *some*
    finite charging delay otherwise.
    """
    from repro.analysis import analyze, derive_priorities

    app = load_app(args.app)
    props = _load_props(args, app)
    power = load_power(args.app)
    report = analyze(app, props, power)
    delay = args.charging_delay
    flagged = (report.nonterminating_paths(delay) if delay is not None
               else [p.number for p in report.paths
                     if p.threshold_s is not None])
    if args.json:
        payload = report.to_dict()
        payload["auto_priorities"] = derive_priorities(report)
        if delay is not None:
            payload["charging_delay_s"] = delay
            payload["nonterminating_paths"] = flagged
        print(json.dumps(payload, indent=2))
    else:
        print(report.describe())
        ranks = derive_priorities(report)
        if ranks:
            print()
            print("auto-derived degradation priorities (0 sheds first):")
            for name, rank in sorted(ranks.items(), key=lambda kv: kv[1]):
                print(f"  {rank}: {name}")
        if delay is not None:
            print()
            verdict = (f"non-terminating paths: {flagged}" if flagged
                       else "all paths terminate")
            print(f"at charging delay {delay:g}s: {verdict}")
    return 3 if flagged else 0


def _predictive_factory(app, props, power, watermarks, env):
    """Degradation factory wiring the predictive controller to the
    runtime's own monitor/audit (the callable form ArtemisRuntime
    accepts)."""
    from repro.analysis import HarvestForecaster, analyze
    from repro.core.degradation import PredictiveDegradationController

    report = analyze(app, props, power)
    low_j, high_j = watermarks

    def build(monitor, audit):
        # The CLI simulation knows its own harvester, so the forecaster
        # gets exact trace lookahead; a blind deployment would pass
        # trace=None and rely on the windowed EWMA.
        forecaster = HarvestForecaster(trace=env.harvester)
        return PredictiveDegradationController(
            monitor, low_j, high_j, report,
            forecaster=forecaster, audit=audit)

    return build


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the ``simulate`` subcommand; returns the process exit code."""
    app = load_app(args.app)
    props = _load_props(args, app)
    power = load_power(args.app)
    if args.charging_delay > 0:
        env = EnergyEnvironment.for_charging_delay(
            args.charging_delay, default_capacitor())
    else:
        env = EnergyEnvironment.continuous()
    device = Device(env, clock_error=args.clock_error, seed=args.seed)
    degradation = _parse_degradation(args.degradation)
    if args.predictive_degradation:
        if degradation is None:
            # Default watermarks for the reactive fallback leg.
            degradation = _parse_degradation("0.35:0.85")
        degradation = _predictive_factory(app, props, power, degradation,
                                          env)
    runtime = ArtemisRuntime(app, props, device, power,
                             audit_capacity=args.audit,
                             peripherals=_build_peripherals(
                                 app, args.sensor_faults),
                             degradation=degradation)
    result = device.run(runtime, runs=args.runs, max_time_s=args.max_time)

    print(result.summary())
    actions = action_summary(device.trace)
    if actions:
        print("monitor actions:",
              ", ".join(f"{k}x{v}" for k, v in sorted(actions.items())))
    if args.timeline:
        print()
        print(render_timeline(device.trace))
    if runtime.audit is not None:
        print()
        print("audit log (persistent ring buffer):")
        print(runtime.audit.dump())
    return 0 if result.completed else 2


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the ``sweep`` subcommand; returns the process exit code.

    Executes the application over a charging-delay × seed grid —
    the Figure 12/14-style experiment — optionally sharded across
    ``--jobs`` worker processes and served from a result cache.
    """
    delays = [float(x) for x in args.delays.split(",") if x.strip()]
    seeds = [int(x) for x in args.seeds.split(",") if x.strip()]
    if not delays or not seeds:
        raise RuntimeConfigError("--delays and --seeds need at least one value")
    app_path, spec_path = args.app, args.spec
    frontend = args.frontend

    def build(point):
        # Everything is rebuilt from the input files per point, so a
        # worker process shares no mutable state with its siblings.
        app = load_app(app_path)
        source = _read_spec(spec_path)
        if frontend == "mayfly":
            props = load_mayfly_properties(source, app)
        else:
            props = load_properties(source, app)
        power = load_power(app_path)
        if point["delay_s"] > 0:
            env = EnergyEnvironment.for_charging_delay(
                point["delay_s"], default_capacitor())
        else:
            env = EnergyEnvironment.continuous()
        device = Device(env, seed=point["seed"])
        runtime = ArtemisRuntime(app, props, device, power)
        return device, runtime

    sweep = Sweep(
        factors={"delay_s": delays, "seed": seeds},
        build=build,
        metrics={
            "completed": metric_completed,
            "time_s": metric_total_time,
            "energy_mJ": metric_total_energy_mj,
            "reboots": metric_reboots,
        },
        runs=args.runs,
        max_time_s=args.max_time,
    )
    cache = ResultCache(args.cache) if args.cache else None
    rows = sweep.run(parallel=args.jobs, cache=cache)
    print(format_rows(rows))
    if cache is not None:
        print(f"cache: {cache.hits} hits / {cache.misses} misses "
              f"({cache.hit_rate:.0%} hit rate) in {cache.root}")
    return 0 if all(row["completed"] for row in rows) else 2


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the ``verify`` subcommand; returns the process exit code.

    Exit codes: 0 = every checked schedule conforms and every search
    was exhaustive to its bound, 1 = usage or scenario error, 3 = at
    least one counterexample found, 4 = no counterexample but at least
    one search was cut short of the bound by the run budget (the result
    is NOT an exhaustiveness proof — raise ``--budget``).
    """
    if args.self_test:
        report, witness = run_self_test(bound=max(args.bound, 1),
                                        budget=args.budget,
                                        shrink_runs=args.shrink_runs)
        print("mutation self-test: injected commit-ordering bug caught")
        print(report.summary())
        print(witness.describe())
        schedule, mm_report = run_war_self_test()
        print("mutation self-test: injected write-privatization bug "
              f"caught from the single run {schedule}")
        print(mm_report.describe())
        return 0

    workloads = None if args.workload == "all" else (args.workload,)
    runtimes = None if args.runtime == "all" else (args.runtime,)
    failed = 0
    truncated = 0
    for scenario in iter_scenarios(workloads, runtimes):
        explorer = scenario.explorer()
        # POR is verdict-preserving but keyed on time-masked state, so
        # time-sensitive scenarios fall back to the unpruned search.
        por = args.por and not scenario.time_sensitive
        report = explorer.explore(bound=args.bound, budget=args.budget,
                                  strategy=args.strategy, por=por)
        print(report.summary())
        if report.truncated:
            truncated += 1
            print(f"  WARNING: search cut short of bound {args.bound} by "
                  f"the run budget ({args.budget}); schedules beyond the "
                  f"first {report.schedules_checked} are UNCHECKED — "
                  f"raise --budget for an exhaustive result")
        if not report.ok:
            failed += 1
            shrinker = CounterexampleShrinker(explorer,
                                              max_runs=args.shrink_runs)
            witness = shrinker.shrink(report.counterexamples[0])
            print(witness.describe())
            if args.memmodel:
                mm = run_memory_model(scenario.build,
                                      schedule=witness.schedule,
                                      run_kwargs=scenario.run_kwargs)
                print(mm.describe())
        elif args.memmodel:
            mm = run_memory_model(scenario.build, schedule=(),
                                  run_kwargs=scenario.run_kwargs,
                                  latent=True)
            print(f"  {mm.describe()}")
    if failed:
        return 3
    return 4 if truncated else 0


#: Named update specs a fleet rollout can ship from the CLI. ``v2`` is
#: the benign benchmark update; ``regressing`` carries an unsatisfiable
#: range check, so a staged rollout must halt at the canary wave.
_FLEET_UPDATES = {
    "v2": FLEET_SPEC_V2,
    "regressing": FLEET_SPEC_REGRESSING,
}


def _fleet_plan(args: argparse.Namespace) -> RolloutPlan:
    try:
        waves = tuple(float(x) for x in args.waves.split(",") if x.strip())
    except ValueError:
        raise RuntimeConfigError(
            f"--waves must be comma-separated fractions, got {args.waves!r}"
        ) from None
    return RolloutPlan(
        waves=waves,
        runs=args.runs,
        halt_threshold=args.halt_threshold,
        loss_rate=args.loss,
        use_delta=not args.full_bundle,
        seed=args.seed,
        lockstep=getattr(args, "lockstep", False),
        seed_mode=getattr(args, "seed_mode", "per_device"),
        expand_limit=getattr(args, "expand_limit", 100_000),
    )


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run the ``fleet`` subcommand; returns the process exit code.

    Exit codes: 0 = success, 1 = usage error, 3 = rollout halted by the
    regression gate.
    """
    new_spec = (_read_spec(args.spec_file) if args.spec_file
                else _FLEET_UPDATES[args.update])
    server = FleetServer()

    if args.action == "status":
        app = build_health_app()
        base = build_bundle(FLEET_SPEC_V1, app, version=1)
        target = build_bundle(new_spec, app, version=2)
        diff = compat_diff(base, target)
        status = {
            "base": {"version": base.version, "hash": base.content_hash,
                     "machines": [name for name, _ in base.machines]},
            "update": {"version": target.version,
                       "hash": target.content_hash,
                       "machines": [name for name, _ in target.machines],
                       "wire_bytes_full": len(target.to_wire()),
                       "wire_bytes_delta": len(base.delta_to(target).to_wire())},
            "compat_diff": {"kept": list(diff.kept),
                            "changed": list(diff.changed),
                            "added": list(diff.added),
                            "removed": list(diff.removed)},
        }
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            base_i, update_i = status["base"], status["update"]
            print(f"base v{base_i['version']} ({base_i['hash'][:12]}): "
                  + ", ".join(base_i["machines"]))
            print(f"update v{update_i['version']} ({update_i['hash'][:12]}): "
                  + ", ".join(update_i["machines"]))
            print(f"wire: {update_i['wire_bytes_full']} B full, "
                  f"{update_i['wire_bytes_delta']} B delta")
            print("migration: "
                  + "; ".join(f"{k}={v}" for k, v
                              in status["compat_diff"].items()))
        return 0

    plan = _fleet_plan(args)
    on_event = None
    if getattr(args, "stream", False):
        def on_event(event: dict) -> None:
            # NDJSON event stream: one JSON object per line, flushed so
            # a piped consumer sees telemetry live, not at exit.
            print(json.dumps(event, default=str), flush=True)
    config = ControlConfig(
        queue_capacity=getattr(args, "queue_capacity", 256),
        policy=getattr(args, "policy", "block"),
    )

    if args.action == "serve":
        cache = ResultCache(args.cache) if args.cache else None
        plane = ControlPlane(server, plan=plan, jobs=args.jobs, cache=cache,
                             config=config, on_event=on_event)
        serve_report = plane.serve(args.devices, new_spec=new_spec,
                                   cycles=getattr(args, "cycles", 1))
        if args.json:
            print(json.dumps(serve_report.to_dict(), indent=2))
        elif not getattr(args, "stream", False):
            print(serve_report.describe())
        rollout = serve_report.rollout
        return 3 if rollout is not None and rollout.halted else 0

    if args.action == "telemetry":
        # One wave over the whole fleet: telemetry is about the reports,
        # not the staging policy.
        plan = RolloutPlan(
            waves=(1.0,), runs=plan.runs, halt_threshold=plan.halt_threshold,
            loss_rate=plan.loss_rate, use_delta=plan.use_delta,
            seed=plan.seed, lockstep=plan.lockstep, seed_mode=plan.seed_mode,
            expand_limit=plan.expand_limit,
        )
    cache = ResultCache(args.cache) if args.cache else None
    report = server.rollout(new_spec, args.devices, plan=plan,
                            jobs=args.jobs, cache=cache, config=config,
                            on_event=on_event)
    if args.action == "telemetry":
        rows = [t.to_row() for t in report.all_telemetry()]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_rows(rows))
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return 3 if report.halted else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="artemis-repro",
        description="ARTEMIS toolchain: check, compile, and simulate "
                    "property-monitored intermittent applications.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="validate a specification")
    p_check.add_argument("spec", help="property specification file")
    p_check.add_argument("--app", required=True, help="application JSON")
    p_check.add_argument("--frontend", choices=["artemis", "mayfly"],
                         default="artemis",
                         help="specification language of the input file")
    p_check.add_argument("--with-power", action="store_true",
                         help="also run timing/energy consistency checks")
    p_check.set_defaults(fn=cmd_check)

    p_compile = sub.add_parser("compile", help="generate monitor code")
    p_compile.add_argument("spec", help="property specification file")
    p_compile.add_argument("--app", required=True, help="application JSON")
    p_compile.add_argument("--frontend", choices=["artemis", "mayfly"],
                           default="artemis",
                           help="specification language of the input file")
    p_compile.add_argument("-o", "--out", default="generated",
                           help="output directory (default: ./generated)")
    p_compile.add_argument("--share-subformulas", dest="share_subformulas",
                           action="store_true", default=True,
                           help="hash-cons structurally equal temporal "
                                "subformulas into shared sub-monitors "
                                "(default)")
    p_compile.add_argument("--no-share-subformulas", dest="share_subformulas",
                           action="store_false",
                           help="compile every temporal property to its own "
                                "private sub-monitors (measures the sharing "
                                "win)")
    p_compile.add_argument("--auto-priorities", action="store_true",
                           help="derive degradation priorities from the "
                                "static cost-per-coverage ranking when the "
                                "spec carries no hand-written priority "
                                "modifiers")
    p_compile.set_defaults(fn=cmd_compile)

    p_sim = sub.add_parser("simulate", help="run on the simulated device")
    p_sim.add_argument("spec", help="property specification file")
    p_sim.add_argument("--app", required=True, help="application JSON")
    p_sim.add_argument("--frontend", choices=["artemis", "mayfly"],
                       default="artemis",
                       help="specification language of the input file")
    p_sim.add_argument("--charging-delay", type=float, default=0.0,
                       help="seconds of charging per brown-out "
                            "(0 = continuous power)")
    p_sim.add_argument("--runs", type=int, default=1)
    p_sim.add_argument("--max-time", type=float, default=4 * 3600.0,
                       help="simulated-time cap (non-termination cutoff)")
    p_sim.add_argument("--clock-error", type=float, default=0.0,
                       help="persistent-timekeeper relative error bound")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--timeline", action="store_true",
                       help="print an ASCII path timeline")
    p_sim.add_argument("--audit", type=int, default=0, metavar="N",
                       help="keep and print the last N corrective actions "
                            "from the persistent audit log")
    p_sim.add_argument("--sensor-faults", action="append", default=[],
                       metavar="SPEC",
                       help="inject a sensor fault: "
                            "SENSOR:KIND[:RATE][:opt=val...], e.g. "
                            "ppg:dropout:0.1:seed=7 (repeatable; kinds: "
                            "timeout, stuck, glitch, dropout)")
    p_sim.add_argument("--degradation", metavar="LOW:HIGH", default=None,
                       help="shed/restore monitors at these stored-energy "
                            "watermarks, as fractions of one capacitor "
                            "charge cycle (e.g. 0.35:0.85)")
    p_sim.add_argument("--predictive-degradation", action="store_true",
                       help="anticipatory shedding: consult the static "
                            "energy analysis and a harvest forecast at "
                            "each path boundary and shed the "
                            "unaffordable monitor set before the "
                            "brownout (falls back to the --degradation "
                            "watermarks reactively; default watermarks "
                            "0.35:0.85 when none are given)")
    p_sim.set_defaults(fn=cmd_simulate)

    p_analyze = sub.add_parser(
        "analyze", help="static worst-case energy/latency analysis")
    p_analyze.add_argument("what", choices=("energy",),
                           help="analysis to run (currently: energy)")
    p_analyze.add_argument("spec", help="property specification file")
    p_analyze.add_argument("--app", required=True, help="application JSON")
    p_analyze.add_argument("--frontend", choices=["artemis", "mayfly"],
                           default="artemis",
                           help="specification language of the input file")
    p_analyze.add_argument("--charging-delay", type=float, default=None,
                           help="evaluate the non-termination predicate at "
                                "this charging delay (seconds); without it, "
                                "exit 3 when any path is non-terminating at "
                                "some finite delay")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_sweep = sub.add_parser(
        "sweep", help="run a charging-delay x seed experiment grid")
    p_sweep.add_argument("spec", help="property specification file")
    p_sweep.add_argument("--app", required=True, help="application JSON")
    p_sweep.add_argument("--frontend", choices=["artemis", "mayfly"],
                         default="artemis",
                         help="specification language of the input file")
    p_sweep.add_argument("--delays", default="0",
                         help="comma-separated charging delays in seconds "
                              "(0 = continuous power)")
    p_sweep.add_argument("--seeds", default="0",
                         help="comma-separated device seeds (replications)")
    p_sweep.add_argument("--runs", type=int, default=1)
    p_sweep.add_argument("--max-time", type=float, default=4 * 3600.0,
                         help="simulated-time cap per grid point")
    p_sweep.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes to shard the grid across")
    p_sweep.add_argument("--cache", nargs="?", const=".repro_cache",
                         default=None, metavar="DIR",
                         help="serve unchanged points from a result cache "
                              "(default dir: .repro_cache)")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_verify = sub.add_parser(
        "verify", help="crash-schedule conformance checking")
    p_verify.add_argument("--workload", default="all",
                          choices=("all",) + WORKLOADS + tuple(sorted(
                              {w for w, _ in EXTRA_SCENARIOS})),
                          help="workload to check (default: all; 'ota' "
                               "checks the fleet update pipeline)")
    p_verify.add_argument("--runtime", default="all",
                          choices=("all",) + RUNTIMES,
                          help="runtime to check (default: all)")
    p_verify.add_argument("--bound", type=int, default=2,
                          help="maximum crashes per schedule (default: 2)")
    p_verify.add_argument("--budget", type=int, default=400,
                          help="simulated executions per scenario "
                               "(default: 400). A search that hits the "
                               "budget before reaching --bound is reported "
                               "truncated, warned about, and exits 4 — it "
                               "is not an exhaustiveness proof")
    p_verify.add_argument("--strategy", choices=("bfs", "dfs"),
                          default="bfs",
                          help="frontier order: bfs exhausts k crashes "
                               "before k+1 (default), dfs drills deep first")
    p_verify.add_argument("--no-por", dest="por", action="store_false",
                          help="disable partial-order reduction (POR "
                               "collapses crash points with identical "
                               "recovery-projected signatures; on by "
                               "default, auto-skipped for time-sensitive "
                               "scenarios)")
    p_verify.add_argument("--memmodel", action="store_true",
                          help="also run the WAR/idempotence memory-model "
                               "oracles: a latent-hazard survey on passing "
                               "scenarios, a single-run diagnosis on each "
                               "shrunk counterexample")
    p_verify.add_argument("--shrink-runs", type=int, default=150,
                          help="execution budget for counterexample "
                               "minimization (default: 150)")
    p_verify.add_argument("--self-test", action="store_true",
                          help="inject known recovery and privatization "
                               "bugs and prove the checkers find them")
    p_verify.set_defaults(fn=cmd_verify)

    p_fleet = sub.add_parser(
        "fleet", help="fleet OTA: staged rollouts, status, telemetry")
    p_fleet.add_argument("action",
                         choices=("rollout", "status", "telemetry", "serve"),
                         help="rollout = staged waves with "
                              "halt-on-regression (exit 3 on halt); "
                              "status = describe the update bundle; "
                              "telemetry = per-device reports; "
                              "serve = always-on control plane (rollout "
                              "then --cycles monitoring passes)")
    p_fleet.add_argument("--update", default="v2",
                         choices=tuple(sorted(_FLEET_UPDATES)),
                         help="named update spec to ship (default: v2)")
    p_fleet.add_argument("--spec-file", default=None, metavar="FILE",
                         help="ship this spec file instead of --update")
    p_fleet.add_argument("--devices", type=int, default=20,
                         help="fleet size (default: 20)")
    p_fleet.add_argument("--waves", default="0.1,0.5,1.0",
                         help="cumulative wave fractions "
                              "(default: 0.1,0.5,1.0)")
    p_fleet.add_argument("--runs", type=int, default=3,
                         help="application runs each device simulates")
    p_fleet.add_argument("--halt-threshold", type=float, default=0.5,
                         help="halt when the paired-control violation "
                              "delta per run exceeds this (default: 0.5)")
    p_fleet.add_argument("--loss", type=float, default=0.05,
                         help="chunk-loss probability of the OTA link "
                              "(default: 0.05)")
    p_fleet.add_argument("--full-bundle", action="store_true",
                         help="ship a full bundle instead of a delta")
    p_fleet.add_argument("--seed", type=int, default=0,
                         help="perturbs per-device chunk-loss streams")
    p_fleet.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes per wave sweep")
    p_fleet.add_argument("--lockstep", action="store_true",
                         help="run waves through the batched "
                              "struct-of-arrays core (repro.sim.batch)")
    p_fleet.add_argument("--seed-mode", dest="seed_mode",
                         choices=("per_device", "per_cohort"),
                         default="per_device",
                         help="per_cohort seeds RF/loss streams by energy "
                              "class (homogeneous cohorts, what --lockstep "
                              "amortizes over)")
    p_fleet.add_argument("--expand-limit", dest="expand_limit", type=int,
                         default=100_000,
                         help="largest lockstep wave expanded to per-device "
                              "telemetry; bigger waves use the compact "
                              "per-cohort rollup (default: 100000)")
    p_fleet.add_argument("--cache", nargs="?", const=".repro_cache",
                         default=None, metavar="DIR",
                         help="serve unchanged devices from a result "
                              "cache (default dir: .repro_cache)")
    p_fleet.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_fleet.add_argument("--stream", action="store_true",
                         help="emit control-plane events as NDJSON "
                              "(wave_start, telemetry, wave_decision, "
                              "cycle) while the rollout/serve runs")
    p_fleet.add_argument("--cycles", type=int, default=1,
                         help="monitoring passes after the rollout in "
                              "serve mode (default: 1)")
    p_fleet.add_argument("--policy", choices=("block", "shed_oldest"),
                         default="block",
                         help="ingestion backpressure policy: block = "
                              "lossless (producers wait), shed_oldest = "
                              "bounded latency (oldest report dropped "
                              "and counted)")
    p_fleet.add_argument("--queue-capacity", dest="queue_capacity",
                         type=int, default=256,
                         help="bounded telemetry queue depth "
                              "(default: 256)")
    p_fleet.set_defaults(fn=cmd_fleet)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
